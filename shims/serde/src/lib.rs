//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! The real serde is a zero-cost visitor framework; this shim replaces it
//! with a much simpler contract that is sufficient for the workspace's needs
//! (JSON reports and round-trip tests): serializable types convert to an
//! owned [`Value`] tree, deserializable types convert back from one. The
//! derive macros from the vendored `serde_derive` generate exactly these
//! conversions, following serde's externally-tagged representation for
//! enums, so the JSON produced is byte-compatible with what real
//! serde+serde_json would emit for the types in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::time::Duration;

/// An owned JSON-like document tree. Object keys keep insertion order
/// (serialization order = field declaration order, as with real serde_json
/// without `preserve_order` sorting concerns for structs).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for this workspace's counters).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error, mirroring the role of `serde::de::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }

    pub fn unknown_variant(got: &str, enum_name: &str) -> Self {
        DeError(format!("unknown variant `{got}` for enum {enum_name}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => {
            let field = v
                .get(name)
                .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
            T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}")))
        }
        other => Err(DeError(format!("expected object, found {}", other.kind()))),
    }
}

/// [`__field`] for fields annotated `#[serde(default)]`: a missing key
/// (or an explicit `null` for non-Option targets, matching how real serde
/// treats defaulted fields that fail as absent) yields `T::default()`
/// instead of an error — how v3 report readers accept v2 documents.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(name) {
            None | Some(Value::Null) => Ok(T::default()),
            Some(field) => {
                T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}")))
            }
        },
        other => Err(DeError(format!("expected object, found {}", other.kind()))),
    }
}

#[doc(hidden)]
pub fn __tuple_payload<'v>(
    v: &'v Value,
    arity: usize,
    what: &str,
) -> Result<&'v [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == arity => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "{what}: expected {arity} elements, found {}",
            items.len()
        ))),
        other => Err(DeError(format!("{what}: expected array, found {}", other.kind()))),
    }
}

// ---------------------------------------------------------------------------
// Primitive / container impls.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer"))?;
                <$t>::try_from(i).map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = __tuple_payload(v, ARITY, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Matches real serde's map representation: a JSON object keyed by the
/// map's string keys, in the map's (sorted) iteration order.
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    V::from_value(v)
                        .map(|v| (k.clone(), v))
                        .map_err(|e| DeError(format!("key `{k}`: {e}")))
                })
                .collect(),
            other => Err(DeError(format!("expected object, found {}", other.kind()))),
        }
    }
}

/// Matches real serde's representation: `{"secs": u64, "nanos": u32}`.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = __field(v, "secs")?;
        let nanos: u32 = __field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Option::<f64>::from_value(&Some(0.5f64).to_value()).unwrap(),
            Some(0.5)
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u64), (3, 4)];
        assert_eq!(Vec::<(u32, u64)>::from_value(&v.to_value()).unwrap(), v);
        let d = Duration::new(3, 141_592_653);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }
}
