//! Offline stand-in for `serde_derive`.
//!
//! Derives the simplified `Serialize` / `Deserialize` traits defined by the
//! vendored `serde` shim (`to_value` / `from_value` over a JSON-like
//! [`Value`] tree). The item is parsed directly from the raw token stream —
//! no `syn`/`quote`, since the build environment has no network access.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields,
//! * enums whose variants are unit, tuple, or struct-like,
//! * no generic parameters; of `#[serde(...)]` attributes only the
//!   per-field `#[serde(default)]` (missing key → `Default::default()`
//!   on deserialize, serialization unchanged).
//!
//! Unsupported shapes fail loudly at compile time rather than silently
//! producing wrong serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: deserialize a missing key as `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility qualifiers (`pub`, `pub(crate)`, ...) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // [ ... ]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // (crate) / (super) / ...
                    }
                }
            }
            _ => return i,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Like [`skip_attrs_and_vis`], but inspects each skipped attribute for
/// `#[serde(...)]`. Returns the new cursor plus whether `#[serde(default)]`
/// was present. Any serde argument other than `default` fails the build
/// loudly instead of being silently dropped.
fn skip_field_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if serde_attr_is_default(g.stream()) {
                        default = true;
                    }
                    i += 1; // [ ... ]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // (crate) / (super) / ...
                    }
                }
            }
            _ => return (i, default),
        }
    }
}

/// True iff the attribute body (the stream inside `#[...]`) is exactly
/// `serde(default)`. Non-serde attributes (doc comments etc.) return false;
/// serde attributes with any other argument panic.
fn serde_attr_is_default(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => panic!("serde shim derive: malformed #[serde(...)] attribute"),
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    match (args.len(), args.first()) {
        (1, Some(TokenTree::Ident(id))) if id.to_string() == "default" => true,
        _ => panic!(
            "serde shim derive: unsupported serde attribute `{}` (only `default` is supported)",
            args.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
        ),
    }
}

/// Parses `name: Type, name: Type, ...` returning the fields (name plus
/// `#[serde(default)]` flag). Splits on commas at angle-bracket depth zero;
/// commas nested in `(...)` or `[...]` are invisible because those arrive
/// as single `Group` tokens.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, default) = skip_field_attrs_and_vis(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("serde shim derive: expected field name, got {:?}", tokens[i].to_string()));
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected ':' after field `{name}`, got {other:?}"),
        }
        fields.push(Field { name, default });
        // Skip the type: consume until a ',' at angle depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a tuple variant: top-level comma count + 1 (tolerating a
/// trailing comma); 0 for empty parens.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut arity = 1usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i)
            .unwrap_or_else(|| panic!("serde shim derive: expected variant name, got {:?}", tokens[i].to_string()));
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim derive: explicit discriminants are not supported")
            }
            other => panic!("serde shim derive: expected ',' after variant `{name}`, got {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kw = ident_at(&tokens, i).unwrap_or_else(|| panic!("serde shim derive: expected item"));
    i += 1;
    let name = ident_at(&tokens, i)
        .unwrap_or_else(|| panic!("serde shim derive: expected a name after `{kw}`"));
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (deriving `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, fields: parse_named_fields(g.stream()) }
            }
            _ => panic!(
                "serde shim derive: only structs with named fields are supported (deriving `{name}`)"
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            _ => panic!("serde shim derive: malformed enum body (deriving `{name}`)"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn fields_to_object(prefix: &str, fields: &[Field]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({prefix}{f}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

/// The deserializer for one named field: `__field_or_default` when the
/// field carries `#[serde(default)]`, plain `__field` otherwise.
fn field_init(f: &Field, source: &str) -> String {
    let name = &f.name;
    let getter = if f.default { "__field_or_default" } else { "__field" };
    format!("{name}: ::serde::{getter}({source}, \"{name}\")?,")
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let obj = fields_to_object("&self.", fields);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {obj} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let obj = fields_to_object("", fields);
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {obj})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}\n",
                arms.join("\n")
            )
        }
    }
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "__v")).collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}\n",
                inits.join(" ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Shape::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __arr = ::serde::__tuple_payload(__payload, {arity}, \"{name}::{vname}\")?; ::std::result::Result::Ok({name}::{vname}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        Shape::Struct(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, "__payload")).collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            let str_arm = format!(
                "::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n_ => ::std::result::Result::Err(::serde::DeError::unknown_variant(__s, \"{name}\")),\n}},",
                unit_arms.join("\n")
            );
            let obj_arm = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __payload) = &__pairs[0];\n\
                         match __tag.as_str() {{\n{}\n_ => ::std::result::Result::Err(::serde::DeError::unknown_variant(__tag, \"{name}\")),\n}}\n\
                     }},",
                    payload_arms.join("\n")
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n{str_arm}\n{obj_arm}\n_ => ::std::result::Result::Err(::serde::DeError::expected(\"externally tagged variant of {name}\")),\n}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item).parse().expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
