//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `Strategy` with `prop_map` / `prop_flat_map`,
//! integer-range and tuple strategies, `Just`, `any::<T>()`, and
//! `proptest::collection::vec`. Cases are generated from a deterministic
//! per-case RNG (stable across runs and machines), failures are reported
//! with the case number, and there is **no shrinking** — a failing case
//! prints its inputs via the panic message of the assertion that failed.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives an independent stream per `(test, case)` pair. The seed mixes
    /// a fixed constant so case 0 is not the all-zero state.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xB5AD_4ECE_DA1C_E2A9 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A generator of random values. Unlike real proptest there is no value
/// tree / shrinking: `generate` directly produces a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice among boxed strategies producing the same value type —
/// the runtime behind [`prop_oneof!`]. (Real proptest supports per-arm
/// weights; this stand-in picks arms uniformly.)
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty union strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// `prop_oneof!` — one of several strategies with a common value type,
/// chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Strategy for "any value of `T`", mirroring `proptest::arbitrary::any`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}
impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = if span <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below(span) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `body` for `config.cases` deterministic random
/// cases. `#[test]` (and any other attributes) are written inside the macro
/// invocation exactly as with real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..(__config.cases as u64) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    let ( $($pat),* ) =
                        $crate::Strategy::generate(&( $($strat),* ), &mut __rng);
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(__msg) = __run() {
                        panic!("property failed on case {}: {}", __case, __msg);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!` — like `assert!` but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert_eq!` — like `assert_eq!` but reports through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
            ));
        }
    }};
}

/// `prop_assert_ne!` — like `assert_ne!` but reports through the runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", __l, __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..20).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..(n as u32), 0..2 * n))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4, "y was {}", y);
        }

        #[test]
        fn flat_map_respects_dependency((n, elems) in pair()) {
            prop_assert!(n >= 1 && n < 20);
            for &e in &elems {
                prop_assert!((e as usize) < n);
            }
        }

        #[test]
        fn any_generates(x in any::<u64>(), b in any::<bool>()) {
            // Not a real property — just exercises generation.
            let _ = (x, b);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = 0u64..1000;
        let mut r1 = TestRng::for_case(5);
        let mut r2 = TestRng::for_case(5);
        assert_eq!(s.generate(&mut r1), (0u64..1000).generate(&mut r2));
    }

    #[test]
    fn exact_size_vec() {
        let s = collection::vec(0u32..10, 7usize);
        let mut rng = TestRng::for_case(0);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }
}
