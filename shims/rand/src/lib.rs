//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Implements the surface this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` over integer ranges, and
//! `rand::seq::index::sample`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the workspace's
//! determinism tests require (they compare same-seed runs against each other,
//! never against golden values from the real crate).

/// Low-level generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker used by [`Rng::gen`], mirroring `rand::distributions::Standard`.
pub trait FromRandom: Sized {
    fn from_random(bits: u64) -> Self;
}

impl FromRandom for u64 {
    fn from_random(bits: u64) -> Self {
        bits
    }
}
impl FromRandom for u32 {
    fn from_random(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}
impl FromRandom for usize {
    fn from_random(bits: u64) -> Self {
        bits as usize
    }
}
impl FromRandom for bool {
    fn from_random(bits: u64) -> Self {
        bits >> 63 != 0
    }
}
impl FromRandom for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn from_random(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl FromRandom for f32 {
    fn from_random(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection on the modulus.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u32, u64, usize);

// Signed ranges used by tests (`rng.gen_range(0..40)` infers i32/i64).
macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i32, i64);

/// User-facing RNG methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (public domain construction by Blackman & Vigna),
    /// seeded via SplitMix64. Statistically strong and deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::Rng;

        /// Result of [`sample`]; mirrors `rand::seq::index::IndexVec`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly at
        /// random (partial Fisher–Yates; order of the result is arbitrary,
        /// as with the real crate).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a population of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use crate::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let picked = crate::seq::index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(picked.len(), 30);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn full_population_sample_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut all = crate::seq::index::sample(&mut rng, 50, 50).into_vec();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
