//! Offline stand-in for [serde_json](https://crates.io/crates/serde_json).
//!
//! Provides `to_string`, `to_string_pretty`, `from_str`, the [`json!`] macro
//! and a [`Value`] re-export, all built on the vendored `serde` shim's value
//! tree. Output is plain standards-compliant JSON; the parser is a strict
//! recursive-descent implementation with a depth limit.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> Result<String> {
    if !f.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    // `{:?}` always includes a decimal point or exponent, so the value
    // round-trips as a float (e.g. `1.0`, not `1`).
    Ok(format!("{f:?}"))
}

fn write_value(v: &Value, out: &mut String, pretty: bool, depth: usize) -> Result<()> {
    let pad = |out: &mut String, level: usize| {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&float_repr(*f)?),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    pad(out, depth + 1);
                }
                write_value(item, out, pretty, depth + 1)?;
            }
            if pretty {
                pad(out, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    pad(out, depth + 1);
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, depth + 1)?;
            }
            if pretty {
                pad(out, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0)?;
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Deserializes a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
                Ok(Value::Object(pairs))
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; BMP only.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("invalid \\u codepoint"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 scalar starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|u| i64::try_from(u).ok())
                .map(|i| Value::Int(-i))
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| self.err("invalid number"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Conversion used by [`json!`] for interpolated expressions.
pub trait IntoJson {
    fn into_json(self) -> Value;
}

impl<T: Serialize> IntoJson for T {
    fn into_json(self) -> Value {
        self.to_value()
    }
}

/// Builds a [`Value`] from a JSON-like literal. Supports objects with string
/// keys, arrays, `null`, and arbitrary interpolated expressions whose types
/// implement `Serialize` (or are already `Value`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json_internal_value!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::json_internal_value!($other) };
}

/// Internal: converts one interpolated expression. Split out so `json!` can
/// recurse through `tt` for literal arrays while treating everything else as
/// an expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_value {
    ($e:expr) => {{
        #[allow(unused_imports)]
        use $crate::IntoJson as _;
        ($e).into_json()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shapes() {
        let v = json!({
            "name": "brics",
            "n": 42u32,
            "ratio": 0.5f64,
            "flag": true,
            "missing": Value::Null,
            "list": vec![1u32, 2, 3],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"brics","n":42,"ratio":0.5,"flag":true,"missing":null,"list":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": 1u64, "b": vec![true, false] });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_numbers_strings_nesting() {
        let v: Value = from_str(r#"{"x": -3, "y": 2.5e1, "s": "a\"b\n", "inner": {"k": []}}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("y").unwrap().as_f64(), Some(25.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\n"));
        assert!(v.get("inner").unwrap().get("k").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn float_always_floats() {
        assert_eq!(to_string(&Value::Float(1.0)).unwrap(), "1.0");
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
    }

    #[test]
    fn escapes_control_chars() {
        let s = Value::Str("tab\there \u{1}".to_string());
        let text = to_string(&s).unwrap();
        assert_eq!(text, "\"tab\\there \\u0001\"");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
