//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of rayon's data-parallel API the workspace actually uses — eager
//! parallel iterators with `map` / `map_init` / `for_each` / `for_each_init` /
//! `collect` / `sum` — on top of `std::thread::scope`.
//!
//! Semantics preserved from real rayon:
//! * work is executed on multiple OS threads (`available_parallelism`),
//! * `map_init` / `for_each_init` run the init closure once per worker thread
//!   and reuse the state across that worker's items (the workspace relies on
//!   this for per-thread BFS scratch buffers),
//! * `map(...).collect::<Vec<_>>()` preserves input order,
//! * a panicking closure propagates a panic to the caller instead of being
//!   swallowed.
//!
//! Deliberately *not* implemented: lazy adaptor chaining (every adaptor here
//! evaluates eagerly), work stealing (a shared queue hands out items), and the
//! broader rayon API. The thread count can be bounded with the standard
//! `RAYON_NUM_THREADS` environment variable.

use std::collections::VecDeque;
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

thread_local! {
    /// Set while inside `ThreadPool::install`, overriding the thread count.
    static POOL_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let cap = POOL_THREADS
        .with(|t| t.get())
        .or_else(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&t| t > 0)
        })
        .unwrap_or(hw);
    cap.min(n).max(1)
}

/// Mirrors `rayon::ThreadPoolBuilder`; only `num_threads` is honoured.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// In the shim a "pool" is just a thread-count override applied for the
/// duration of [`ThreadPool::install`]; the actual threads are created per
/// parallel call by `std::thread::scope`.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Core engine: run `f(state, item)` over all items on a small thread pool,
/// returning results in input order. `init` runs once per worker thread.
fn run_pool<T, R, S, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count(n);
    if threads == 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }

    // Shared queue of (index, item); each worker drains it, keeping results
    // tagged with their original index so output order matches input order.
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = queue.lock().unwrap().pop_front();
                    match next {
                        Some((i, x)) => local.push((i, f(&mut state, x))),
                        None => break,
                    }
                }
                done.lock().unwrap().extend(local);
            });
        }
    });
    let mut tagged = done.into_inner().unwrap();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// An eagerly-evaluated "parallel iterator": adaptors run the parallel work
/// immediately and hand back a materialised vector of results.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        ParIter { items: run_pool(self.items, || (), |_, x| f(x)) }
    }

    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParIter<R>
    where
        R: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) -> R + Sync + Send,
    {
        ParIter { items: run_pool(self.items, init, f) }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        run_pool(self.items, || (), |_, x| f(x));
    }

    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) + Sync + Send,
    {
        run_pool(self.items, init, f);
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        ParIter { items: self.items.into_iter().filter(|x| f(x)).collect() }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + Send,
    {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Alias so `use rayon::prelude::*` brings the adaptor methods into scope the
/// way real rayon's `ParallelIterator` trait does. The methods here are
/// inherent on [`ParIter`]; this empty trait exists only so the glob import
/// stays source-compatible.
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<T> {}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par_iter!(u32, u64, usize, i32, i64);

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

/// Returns the number of threads the pool would use for a large workload,
/// mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    thread_count(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_per_thread() {
        // Each worker's state counts items it processed; totals must add up.
        let total = AtomicUsize::new(0);
        let v: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || 0usize,
                |count, &x| {
                    *count += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                    x
                },
            )
            .collect();
        assert_eq!(out.len(), 257);
        assert_eq!(total.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        (0u32..100).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u64; 64];
        let out: Vec<u64> = v
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert!(v.iter().all(|&x| x == 2));
        assert_eq!(out, vec![2u64; 64]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        (0usize..16).into_par_iter().for_each(|i| {
            if i == 7 {
                panic!("boom");
            }
        });
    }
}
