//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Keeps the bench-definition API (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) source-compatible so `cargo bench` runs, but replaces the
//! statistical machinery with a simple best-of-N wall-clock measurement
//! printed to stdout. Set `CRITERION_SHIM_ITERS` to change the measurement
//! count (default 3; `0` still runs each closure once so benches remain
//! smoke tests).

use std::fmt::Display;
use std::time::{Duration, Instant};

fn measure_iters() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1)
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Runs one benchmark closure and reports the fastest observed iteration.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..measure_iters() {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed();
            drop(out);
            if self.best.map_or(true, |b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

/// Identifier for a parameterised benchmark, e.g. `BenchmarkId::new("bfs", n)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    fn run_one(&mut self, label: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { best: None };
        run(&mut b);
        let time = b.best.map(human).unwrap_or_else(|| "not measured".to_string());
        println!("bench: {}/{label}: {time}", self.name);
        self.criterion.benchmarks_run += 1;
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // Sampling counts are meaningless for the shim's best-of-N timing.
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchLabel>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        self.run_one(&label, |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run_one(&label, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and `BenchmarkId`s for `bench_function`.
pub struct BenchLabel(String);

impl From<&str> for BenchLabel {
    fn from(s: &str) -> Self {
        BenchLabel(s.to_string())
    }
}

impl From<String> for BenchLabel {
    fn from(s: String) -> Self {
        BenchLabel(s)
    }
}

impl From<BenchmarkId> for BenchLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchLabel(id.label)
    }
}

/// Throughput declaration — accepted and ignored.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, &mut f);
        group.finish();
        self
    }
}

/// Re-export for benches that import it from criterion rather than std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut hits = 0usize;
        group.bench_function("inc", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(hits >= 1);
        assert_eq!(c.benchmarks_run, 2);
    }
}
