//! Find the most central members of a social network — the workload the
//! paper's introduction motivates (social network analysis, §I).
//!
//! Closeness centrality ranks members by how quickly they can reach the
//! whole network; the top-k are the "influencers". Exact computation needs
//! one BFS per member; this example shows the BRICS estimate recovering
//! (almost) the same top-k at a fraction of the BFS budget.
//!
//! ```text
//! cargo run --release -p brics --example social_influencers
//! ```

use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_graph::generators::{social_like, ClassParams};
use std::collections::HashSet;
use std::time::Instant;

const K: usize = 25;

fn main() {
    let g = social_like(ClassParams::new(20_000, 7));
    println!(
        "social network: {} members, {} friendships",
        g.num_nodes(),
        g.num_edges()
    );

    // Ground truth (expensive: n BFS runs).
    let t0 = Instant::now();
    let exact = exact_farness(&g).expect("connected");
    let exact_time = t0.elapsed();
    let mut truth: Vec<u32> = (0..g.num_nodes() as u32).collect();
    truth.sort_by_key(|&v| (exact[v as usize], v));
    let truth_set: HashSet<u32> = truth[..K].iter().copied().collect();

    // BRICS estimate at a 20 % sampling rate.
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.2))
        .seed(1)
        .run(&g)
        .unwrap();
    let est_top = est.top_k_central(K);
    let hits = est_top.iter().filter(|v| truth_set.contains(v)).count();

    println!(
        "exact:    {:.2}s for {} BFS traversals",
        exact_time.as_secs_f64(),
        g.num_nodes()
    );
    println!(
        "estimate: {:.2}s for {} BFS traversals ({:.0}% of the budget)",
        est.elapsed().as_secs_f64(),
        est.num_sources(),
        100.0 * est.num_sources() as f64 / g.num_nodes() as f64
    );
    println!("top-{K} overlap with ground truth: {hits}/{K}");

    println!("\nrank  member  est.farness  exact.farness");
    for (i, &v) in est_top.iter().take(10).enumerate() {
        println!(
            "{:>4}  {v:>6}  {:>11}  {:>13}",
            i + 1,
            est.raw()[v as usize],
            exact[v as usize]
        );
    }
    assert!(
        hits as f64 >= K as f64 * 0.5,
        "estimate should recover most of the true top-{K} (got {hits})"
    );
}
