//! Facility location on a road network: the *1-median* — the junction with
//! minimum total travel distance to everywhere — is exactly the vertex with
//! minimum farness (a use-case the paper cites via Thorup's k-median work).
//!
//! Road networks are the chain-reduction showcase: most vertices lie on
//! degree-2 road segments, so contraction shrinks the graph dramatically
//! before any BFS runs.
//!
//! ```text
//! cargo run --release -p brics --example road_facility
//! ```

use brics::{exact_farness, BricsEstimator, Method, ReductionConfig, SampleSize};
use brics_graph::generators::{road_like, ClassParams};
use brics_reduce::reduce;
use std::time::Instant;

fn main() {
    let g = road_like(ClassParams::new(30_000, 5));
    println!("road network: {} junctions/segments, {} road links", g.num_nodes(), g.num_edges());

    // How much does the chain machinery shrink this network?
    let red = reduce(&g, &ReductionConfig::chains_only());
    println!(
        "after chain removal + contraction: {} vertices remain ({:.1}%), {} contracted",
        red.stats.surviving_nodes,
        100.0 * red.stats.surviving_nodes as f64 / g.num_nodes() as f64,
        red.stats.contracted_chain_nodes,
    );

    // Estimate with the road configuration the paper recommends (§IV-C2(d)):
    // chains only, no biconnected decomposition.
    let method = Method::Custom { reductions: ReductionConfig::chains_only(), use_bcc: false };
    let t0 = Instant::now();
    let est = BricsEstimator::new(method)
        .sample(SampleSize::Fraction(0.4))
        .seed(9)
        .run(&g)
        .unwrap();
    let est_time = t0.elapsed();

    let t1 = Instant::now();
    let exact = exact_farness(&g).unwrap();
    let exact_time = t1.elapsed();

    let est_median = est.top_k_central(1)[0];
    let true_median = (0..g.num_nodes() as u32)
        .min_by_key(|&v| (exact[v as usize], v))
        .unwrap();

    println!(
        "\nestimated 1-median: junction {est_median} (true total distance {})",
        exact[est_median as usize]
    );
    println!(
        "true 1-median:      junction {true_median} (true total distance {})",
        exact[true_median as usize]
    );
    let ratio =
        exact[est_median as usize] as f64 / exact[true_median as usize] as f64;
    println!("estimated median is within {:.2}% of optimal total distance", (ratio - 1.0) * 100.0);
    println!(
        "\ntime: estimate {:.2}s vs exact {:.2}s ({:.1}x faster)",
        est_time.as_secs_f64(),
        exact_time.as_secs_f64(),
        exact_time.as_secs_f64() / est_time.as_secs_f64()
    );
    assert!(ratio < 1.10, "estimated median should be near-optimal (ratio {ratio})");
}
