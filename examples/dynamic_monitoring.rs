//! Monitoring centrality in a *growing* network — the paper's stated future
//! work ("Extension of this problem to dynamic setting", §V), served by the
//! `brics::dynamic` extension.
//!
//! A social platform adds friendships continuously; the analyst wants the
//! current most-central members without re-estimating from scratch after
//! every batch. `DynamicFarness` keeps the sampled BFS rows and repairs
//! them incrementally on each insertion (insertions only shrink
//! distances), so an update costs time proportional to what actually
//! changed.
//!
//! ```text
//! cargo run --release -p brics --example dynamic_monitoring
//! ```

use brics::dynamic::DynamicFarness;
use brics::sampling::random_sampling;
use brics::SampleSize;
use brics_graph::generators::{social_like, ClassParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let g = social_like(ClassParams::new(15_000, 21));
    let n = g.num_nodes() as u32;
    println!("initial network: {} members, {} friendships", g.num_nodes(), g.num_edges());

    let t0 = Instant::now();
    let mut dynf = DynamicFarness::new(&g, SampleSize::Fraction(0.3), 4).expect("connected");
    println!(
        "built dynamic structure with {} retained BFS rows in {:.2}s",
        dynf.sources().len(),
        t0.elapsed().as_secs_f64()
    );

    // Stream 10 batches of 50 random new friendships each.
    let mut rng = StdRng::seed_from_u64(99);
    let mut total_update = 0.0f64;
    for batch in 1..=10 {
        let t = Instant::now();
        let mut improved = 0usize;
        for _ in 0..50 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            improved += dynf.insert_edge(u, v);
        }
        let dt = t.elapsed().as_secs_f64();
        total_update += dt;
        let top = dynf.estimate().top_k_central(3);
        println!(
            "batch {batch:>2}: 50 insertions repaired {improved:>6} distance entries \
             in {dt:.3}s; top-3 now {top:?}"
        );
    }

    // Sanity: incremental result equals re-estimating from scratch with the
    // same sources on the final graph.
    let final_graph = dynf.graph();
    let mut clone = dynf.clone();
    let t1 = Instant::now();
    clone.rebuild();
    let scratch_time = t1.elapsed().as_secs_f64();
    let scratch = clone.estimate();
    assert_eq!(dynf.estimate().raw(), scratch.raw());
    println!(
        "\nfinal network: {} friendships", final_graph.num_edges()
    );
    println!(
        "10 incremental batches took {total_update:.3}s total vs {scratch_time:.3}s for one \
         from-scratch re-estimation — and produced identical estimates."
    );

    // Random sampling from scratch at the same rate, for reference.
    let t2 = Instant::now();
    let _ = random_sampling(&final_graph, SampleSize::Fraction(0.3), 4).unwrap();
    println!("(reference: a fresh Algorithm-1 run costs {:.3}s)", t2.elapsed().as_secs_f64());
}
