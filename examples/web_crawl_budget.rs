//! Prioritising a web-crawl budget: pages with high closeness reach the
//! rest of the web graph in few hops, so they make good crawl seeds.
//!
//! Web graphs are the identical-node showcase (paper Table I: ~half of the
//! vertices share a neighbourhood with another page — boilerplate links,
//! mirrored pages). This example shows the reductions' per-technique
//! contribution on a web-like graph and uses the estimate to pick seeds.
//!
//! ```text
//! cargo run --release -p brics --example web_crawl_budget
//! ```

use brics::{BricsEstimator, Method, ReductionConfig, SampleSize};
use brics_graph::generators::{web_like, ClassParams};
use brics_reduce::reduce;

fn main() {
    let g = web_like(ClassParams::new(50_000, 11));
    println!("web graph: {} pages, {} links", g.num_nodes(), g.num_edges());

    // Per-technique reduction ledger (the paper's I / C / R accounting).
    let r = reduce(&g, &ReductionConfig::all());
    let n = g.num_nodes() as f64;
    println!("\nreduction ledger:");
    println!(
        "  identical pages        {:>7}  ({:.1}%)",
        r.stats.identical_nodes,
        100.0 * r.stats.identical_nodes as f64 / n
    );
    println!(
        "  identical chain pages  {:>7}  ({:.1}%)",
        r.stats.identical_chain_nodes,
        100.0 * r.stats.identical_chain_nodes as f64 / n
    );
    println!(
        "  redundant chain pages  {:>7}  ({:.1}%)",
        r.stats.removed_chain_nodes,
        100.0 * r.stats.removed_chain_nodes as f64 / n
    );
    println!(
        "  contracted chain pages {:>7}  ({:.1}%)",
        r.stats.contracted_chain_nodes,
        100.0 * r.stats.contracted_chain_nodes as f64 / n
    );
    println!(
        "  redundant 3/4-deg      {:>7}  ({:.1}%)",
        r.stats.redundant_nodes,
        100.0 * r.stats.redundant_nodes as f64 / n
    );
    println!(
        "  surviving              {:>7}  ({:.1}%)",
        r.stats.surviving_nodes,
        100.0 * r.stats.surviving_nodes as f64 / n
    );

    // Estimate closeness with the full pipeline at 20%.
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.2))
        .seed(3)
        .run(&g)
        .unwrap();
    println!(
        "\nestimated closeness with {} BFS sources in {:.2}s",
        est.num_sources(),
        est.elapsed().as_secs_f64()
    );

    let seeds = est.top_k_central(10);
    println!("\ncrawl seeds (highest estimated closeness):");
    let closeness = est.closeness();
    for (i, &v) in seeds.iter().enumerate() {
        println!("  {:>2}. page {v:>6}  closeness {:.3e}", i + 1, closeness[v as usize]);
    }
    assert!(r.stats.surviving_nodes * 2 < g.num_nodes(), "web graphs should reduce by >50%");
}
