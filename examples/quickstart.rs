//! Quickstart: estimate farness centrality on a small graph and compare
//! against the exact values.
//!
//! ```text
//! cargo run --release -p brics --example quickstart
//! ```

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id

use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_graph::GraphBuilder;

fn main() {
    // A hand-built graph: two communities bridged by a corridor, plus a
    // few pendant members — the structures BRICS exploits.
    //
    //      0───1          8───9
    //      │ ╳ │  4─5─6─7 │ ╳ │        (╳ = diagonals: both communities
    //      2───3          10──11        are 4-cliques)
    //        │                │
    //       12               13───14   (pendants)
    let mut b = GraphBuilder::new(15);
    for &(u, v) in &[
        // clique A
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        // corridor
        (3, 4), (4, 5), (5, 6), (6, 7), (7, 8),
        // clique B
        (8, 9), (8, 10), (8, 11), (9, 10), (9, 11), (10, 11),
        // pendants
        (3, 12), (11, 13), (13, 14),
    ] {
        b.add_edge(u, v);
    }
    let g = b.build();

    // Exact farness: one BFS per vertex (fine at this size).
    let exact = exact_farness(&g).expect("connected");

    // The BRICS estimate with every remaining vertex sampled. The corridor
    // and the pendants are *removed* by the chain reductions and carry
    // reconstructed partial sums (the paper's semantics for removed
    // vertices); every surviving vertex is exact.
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(1.0))
        .seed(42)
        .run(&g)
        .expect("connected");

    println!("vertex  exact  estimate  sampled  closeness");
    for v in 0..g.num_nodes() {
        println!(
            "{v:>6}  {:>5}  {:>8}  {:>7}  {:.4}",
            exact[v],
            est.raw()[v],
            est.is_sampled(v as u32),
            1.0 / exact[v] as f64
        );
    }

    // Surviving (sampled) vertices are exact at a 100 % sampling rate.
    for v in 0..g.num_nodes() as u32 {
        if est.is_sampled(v) {
            assert_eq!(est.raw()[v as usize], exact[v as usize], "vertex {v}");
        }
    }

    // Vertex 6 is the true 1-median: the corridor's centre of mass, pulled
    // one step towards the (heavier) right community.
    let true_center = (0..g.num_nodes() as u32)
        .min_by_key(|&v| (exact[v as usize], v))
        .unwrap();
    println!("\nmost central vertex (exact): {true_center}");
    assert_eq!(true_center, 6);

    // The estimate agrees the centre lies on the corridor.
    let est_center = est.top_k_central(1)[0];
    println!("most central vertex (estimated): {est_center}");
    assert!((4..=7).contains(&est_center), "estimated centre should be on the corridor");

    // At partial sampling rates the estimator is faster; sampled vertices
    // stay exact.
    let partial = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.4))
        .seed(42)
        .run(&g)
        .unwrap();
    println!(
        "at 40% sampling: {} of {} vertices served as BFS sources",
        partial.num_sources(),
        g.num_nodes()
    );
}
