//! `brics` — estimate farness/closeness centrality from the command line.
//!
//! ```text
//! brics stats <graph>                         structural statistics
//! brics farness <graph> [options]             estimate (or compute) farness
//! brics generate <class> <nodes> [options]    write a synthetic graph
//! brics help
//! ```
//!
//! Graph files are SNAP-style edge lists (`*.txt`, `*.el`) or MatrixMarket
//! (`*.mtx`), auto-detected by extension. Disconnected inputs are made
//! connected the way the paper's preprocessing does (§IV-B).

mod args;
mod commands;
mod error;
mod report;

use std::process::ExitCode;

/// Every `brics` invocation runs under the thread-sharded tracking
/// allocator, so run reports carry real live/peak byte figures and
/// `--max-mem-mb` can police *live* growth, not just the up-front plan.
/// The tracker is a pair of relaxed atomic adjustments around the system
/// allocator — the telemetry-invariance suite pins that results are
/// bit-identical with and without it installed.
#[global_allocator]
static ALLOC: brics_graph::telemetry::TrackingAllocator =
    brics_graph::telemetry::TrackingAllocator;

fn main() -> ExitCode {
    // Piping into `head`/`less` closes stdout early; Rust's print macros
    // then panic with a backtrace. Treat a broken pipe as the normal
    // end-of-consumer signal (grep/cat semantics) and exit quietly.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).or_else(|| {
            info.payload().downcast_ref::<&str>().copied()
        });
        if msg.is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Stable per-kind exit codes (see `brics help`): usage 2,
            // input/data 3, timeout-partial 4, internal 5.
            ExitCode::from(e.exit_code())
        }
    }
}
