//! Subcommand implementations.

use crate::args::{parse, Parsed};
use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_bicc::biconnected_components;
use brics_graph::connectivity::{is_connected, make_connected};
use brics_graph::degree::degree_stats;
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::io::{read_edge_list, read_metis, read_mtx, write_edge_list, write_metis, write_mtx};
use brics_graph::CsrGraph;
use brics_reduce::{reduce, ReductionConfig};

const HELP: &str = "\
brics — farness/closeness centrality estimation (BRICS reproduction)

USAGE:
  brics stats <graph>
      Structural statistics: degrees, reductions, biconnected components.

  brics farness <graph> [--method random|cr|icr|cumulative|exact]
                        [--rate 0.2] [--seed 0] [--top K] [--json]
      Estimate (default: cumulative @ 20%) or compute exact farness.
      Prints `vertex farness closeness` per line, or the --top K most
      central vertices; --json emits a machine-readable document.

  brics topk <graph> <k> [--rate 0.3] [--seed 0] [--json]
      EXACT top-k closeness ranking, pruned by BRICS lower bounds —
      far cheaper than computing all-pairs farness.

  brics betweenness <graph> [--rate 0.3] [--seed 0] [--top K] [--exact]
      Betweenness centrality via Brandes pivots (--exact for all sources).

  brics generate <web|social|community|road> <nodes> [--seed 0]
                 [--out FILE]
      Write a synthetic class graph (.el edge list, .mtx MatrixMarket or
      .graph/.metis METIS, by extension; stdout edge list when --out is
      omitted).

Graph files: SNAP edge lists (default), MatrixMarket (.mtx), or METIS
(.graph/.metis). Disconnected inputs are connected by linking components
(paper §IV-B); pass --giant to `farness` to keep only the largest
component instead.
";

/// Entry point used by `main` (and by the CLI's integration tests).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let parsed = parse(argv)?;
    match parsed.positional.first().map(String::as_str) {
        Some("stats") => stats(&parsed),
        Some("farness") => farness(&parsed),
        Some("topk") => topk(&parsed),
        Some("betweenness") => betweenness(&parsed),
        Some("generate") => generate(&parsed),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try `brics help`)")),
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    load_graph_with(path, false)
}

fn load_graph_with(path: &str, giant: bool) -> Result<CsrGraph, String> {
    let g = if path.ends_with(".mtx") {
        read_mtx(path).map_err(|e| format!("{path}: {e}"))?
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        read_metis(path).map_err(|e| format!("{path}: {e}"))?
    } else {
        read_edge_list(path).map_err(|e| format!("{path}: {e}"))?
    };
    if g.num_nodes() == 0 {
        return Err(format!("{path}: empty graph"));
    }
    if is_connected(&g) {
        Ok(g)
    } else if giant {
        let sub = brics_graph::connectivity::largest_component(&g);
        eprintln!(
            "note: input was disconnected; kept the largest component ({} of {} \
             vertices; ids remapped)",
            sub.len(),
            g.num_nodes()
        );
        Ok(sub.graph)
    } else {
        let (g2, added) = make_connected(&g);
        eprintln!(
            "note: input was disconnected; added {added} linking edges (paper §IV-B); \
             pass --giant to keep only the largest component instead"
        );
        Ok(g2)
    }
}

fn stats(p: &Parsed) -> Result<(), String> {
    let path = p.positional.get(1).ok_or("usage: brics stats <graph>")?;
    let g = load_graph(path)?;
    let d = degree_stats(&g);
    let red = reduce(&g, &ReductionConfig::all());
    let bi = biconnected_components(&g);
    println!("graph            {path}");
    println!("vertices         {}", d.num_nodes);
    println!("edges            {}", d.num_edges);
    println!("degree           min {} max {} mean {:.2}", d.min, d.max, d.mean);
    println!(
        "deg<=2 fraction  {:.1}% (deg1 {}, deg2 {})",
        100.0 * d.low_degree_fraction(),
        d.deg1,
        d.deg2
    );
    println!("identical nodes  {}", red.stats.identical_nodes);
    println!("identical chains {}", red.stats.identical_chain_nodes);
    println!("chain nodes      {}", red.stats.chain_nodes);
    println!("redundant nodes  {}", red.stats.redundant_nodes);
    println!("contracted nodes {}", red.stats.contracted_chain_nodes);
    println!(
        "reduced graph    {} vertices, {} edges ({:.1}% of original vertices)",
        red.stats.surviving_nodes,
        red.stats.surviving_edges,
        100.0 * red.stats.surviving_nodes as f64 / d.num_nodes as f64
    );
    println!(
        "biconnected      {} blocks, largest {}, avg {:.1}",
        bi.blocks.len(),
        bi.max_block_len(),
        bi.avg_block_len()
    );
    let db = brics_graph::eccentricity::diameter_bounds(&g, 0, 16);
    if db.lower == db.upper {
        println!("diameter         {} ({} BFS runs)", db.lower, db.bfs_runs);
    } else {
        println!(
            "diameter         in [{}, {}] ({} BFS runs)",
            db.lower, db.upper, db.bfs_runs
        );
    }
    Ok(())
}

fn method_of(name: &str) -> Result<Method, String> {
    match name {
        "random" => Ok(Method::RandomSampling),
        "cr" => Ok(Method::CR),
        "icr" => Ok(Method::ICR),
        "cumulative" => Ok(Method::Cumulative),
        other => Err(format!("unknown method '{other}'")),
    }
}

fn farness(p: &Parsed) -> Result<(), String> {
    let path = p.positional.get(1).ok_or("usage: brics farness <graph> [options]")?;
    let g = load_graph_with(path, p.has("giant"))?;
    let rate: f64 = p.get_parse("rate", 0.2)?;
    let seed: u64 = p.get_parse("seed", 0)?;
    let top: usize = p.get_parse("top", 0)?;
    let method_name = p.get("method").unwrap_or("cumulative");

    let (values, sampled, label): (Vec<u64>, Vec<bool>, String) = if method_name == "exact" {
        let f = exact_farness(&g).map_err(|e| e.to_string())?;
        let n = f.len();
        (f, vec![true; n], "exact".into())
    } else {
        let method = method_of(method_name)?;
        let est = BricsEstimator::new(method)
            .sample(SampleSize::Fraction(rate))
            .seed(seed)
            .run(&g)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "note: {} sources, {:.3}s",
            est.num_sources(),
            est.elapsed().as_secs_f64()
        );
        let sampled = est.sampled_mask().to_vec();
        (est.raw().to_vec(), sampled, method_name.into())
    };

    let order: Vec<u32> = {
        let mut idx: Vec<u32> = (0..values.len() as u32).collect();
        if top > 0 {
            idx.sort_by_key(|&v| (values[v as usize], v));
            idx.truncate(top);
        }
        idx
    };
    if p.has("json") {
        let doc = serde_json::json!({
            "graph": path,
            "method": label,
            "vertices": order.iter().map(|&v| serde_json::json!({
                "id": v,
                "farness": values[v as usize],
                "closeness": if values[v as usize] == 0 { 0.0 } else { 1.0 / values[v as usize] as f64 },
                "exact": sampled[v as usize],
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        println!("# vertex  farness  closeness  exact");
        for &v in &order {
            let f = values[v as usize];
            let c = if f == 0 { 0.0 } else { 1.0 / f as f64 };
            println!("{v} {f} {c:.3e} {}", sampled[v as usize]);
        }
    }
    Ok(())
}

fn topk(p: &Parsed) -> Result<(), String> {
    let path = p.positional.get(1).ok_or("usage: brics topk <graph> <k>")?;
    let k: usize = p
        .positional
        .get(2)
        .ok_or("usage: brics topk <graph> <k>")?
        .parse()
        .map_err(|e| format!("bad k: {e}"))?;
    let g = load_graph(path)?;
    let rate: f64 = p.get_parse("rate", 0.3)?;
    let seed: u64 = p.get_parse("seed", 0)?;
    let estimator = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(rate))
        .seed(seed);
    let t = brics::topk::top_k_closeness(&g, k, &estimator).map_err(|e| e.to_string())?;
    eprintln!(
        "note: {} pruned, {} verified by BFS, {} for free (of {})",
        t.pruned,
        t.verified_with_bfs,
        t.verified_for_free,
        g.num_nodes()
    );
    if p.has("json") {
        let doc = serde_json::json!({
            "graph": path,
            "k": k,
            "pruned": t.pruned,
            "ranked": t.ranked.iter().map(|&(v, f)| serde_json::json!({
                "id": v, "farness": f,
                "closeness": if f == 0 { 0.0 } else { 1.0 / f as f64 },
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        println!("# rank vertex farness closeness (exact)");
        for (i, &(v, f)) in t.ranked.iter().enumerate() {
            let c = if f == 0 { 0.0 } else { 1.0 / f as f64 };
            println!("{} {v} {f} {c:.3e}", i + 1);
        }
    }
    Ok(())
}

fn betweenness(p: &Parsed) -> Result<(), String> {
    let path = p.positional.get(1).ok_or("usage: brics betweenness <graph> [options]")?;
    let g = load_graph_with(path, p.has("giant"))?;
    let top: usize = p.get_parse("top", 10)?;
    let values = if p.has("exact") {
        brics::betweenness::exact_betweenness(&g)
    } else {
        let rate: f64 = p.get_parse("rate", 0.3)?;
        let seed: u64 = p.get_parse("seed", 0)?;
        brics::betweenness::sampled_betweenness(&g, SampleSize::Fraction(rate), seed)
            .map_err(|e| e.to_string())?
    };
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .partial_cmp(&values[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(top.max(1));
    println!("# rank vertex betweenness");
    for (i, &v) in idx.iter().enumerate() {
        println!("{} {v} {:.3}", i + 1, values[v as usize]);
    }
    Ok(())
}

fn generate(p: &Parsed) -> Result<(), String> {
    let class: GraphClass = p
        .positional
        .get(1)
        .ok_or("usage: brics generate <class> <nodes>")?
        .parse()?;
    let nodes: usize = p
        .positional
        .get(2)
        .ok_or("usage: brics generate <class> <nodes>")?
        .parse()
        .map_err(|e| format!("bad node count: {e}"))?;
    let seed: u64 = p.get_parse("seed", 0)?;
    let g = class.generate(ClassParams::new(nodes, seed));
    eprintln!(
        "generated {} graph: {} vertices, {} edges (seed {seed})",
        class.name(),
        g.num_nodes(),
        g.num_edges()
    );
    match p.get("out") {
        Some(path) if path.ends_with(".mtx") => {
            write_mtx(&g, path).map_err(|e| e.to_string())?;
        }
        Some(path) if path.ends_with(".graph") || path.ends_with(".metis") => {
            write_metis(&g, path).map_err(|e| e.to_string())?;
        }
        Some(path) => {
            write_edge_list(&g, path).map_err(|e| e.to_string())?;
        }
        None => {
            brics_graph::io::write_edge_list_to(&g, std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("brics-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).is_ok());
        assert!(run(&[]).is_ok());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn generate_stats_farness_roundtrip() {
        let path = tmp("road.el");
        run(&["generate", "road", "500", "--seed", "3", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["stats", path.to_str().unwrap()]).unwrap();
        run(&["farness", path.to_str().unwrap(), "--method", "cumulative", "--rate", "0.5",
              "--top", "5"])
            .unwrap();
        run(&["farness", path.to_str().unwrap(), "--method", "exact", "--top", "3", "--json"])
            .unwrap();
    }

    #[test]
    fn betweenness_subcommand() {
        let path = tmp("betw.el");
        run(&["generate", "social", "300", "--seed", "4", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["betweenness", path.to_str().unwrap(), "--top", "5"]).unwrap();
        run(&["betweenness", path.to_str().unwrap(), "--exact", "--top", "3"]).unwrap();
        assert!(run(&["betweenness"]).is_err());
    }

    #[test]
    fn topk_subcommand() {
        let path = tmp("comm.el");
        run(&["generate", "community", "400", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["topk", path.to_str().unwrap(), "5"]).unwrap();
        run(&["topk", path.to_str().unwrap(), "3", "--rate", "0.5", "--json"]).unwrap();
        assert!(run(&["topk", path.to_str().unwrap()]).is_err()); // missing k
        assert!(run(&["topk", path.to_str().unwrap(), "x"]).is_err());
    }

    #[test]
    fn mtx_output_supported() {
        let path = tmp("web.mtx");
        run(&["generate", "web", "300", "--out", path.to_str().unwrap()]).unwrap();
        run(&["stats", path.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn rejects_bad_method_and_class() {
        let path = tmp("sock.el");
        run(&["generate", "social", "200", "--out", path.to_str().unwrap()]).unwrap();
        assert!(run(&["farness", path.to_str().unwrap(), "--method", "magic"]).is_err());
        assert!(run(&["generate", "metro", "100"]).is_err());
        assert!(run(&["stats"]).is_err());
        assert!(run(&["stats", "/nonexistent/file"]).is_err());
    }
}
