//! Subcommand implementations.

use crate::args::{parse, Parsed};
use crate::error::CliError;
use brics::{
    run_degraded, ArtifactInfo, CentralityError, DegradationPolicy, DegradedRequest,
    ExecutionContext, Kernel, KernelConfig, MemoryPlan, Method, PrepareConfig,
    PreparedGraph, ProgressConfig, ProgressMeter, RunControl, RunOutcome, RunRecorder,
    SampleSize,
};
use brics_bicc::biconnected_components;
use brics_graph::telemetry::{timed, ArtifactProvenance, Counter, FaultSiteRecord, Recorder};
use brics_graph::{FaultKind, FaultPlan, FaultSite};
use brics_graph::connectivity::{is_connected, make_connected};
use brics_graph::degree::degree_stats;
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::io::{read_edge_list, read_metis, read_mtx, write_edge_list, write_metis, write_mtx};
use brics_graph::CsrGraph;
use brics_reduce::{reduce_ctl_rec, ReductionConfig};
use std::path::Path;

const HELP: &str = "\
brics — farness/closeness centrality estimation (BRICS reproduction)

USAGE:
  brics stats <graph>
      Structural statistics: degrees, reductions, biconnected components.

  brics prepare <graph> <artifact> [--method random|cr|icr|cumulative|exact]
                                   [--reorder] [--giant]
      Run the prepare stage once (reductions + Block-Cut Tree per
      --method; default `cumulative` = the full pipeline) and persist it
      as a checksummed binary artifact (`brics.artifact/v1`). Later runs
      pass --artifact FILE to farness/compare/topk and start from the
      file — no re-read, no re-reduction, bit-identical answers.

  brics farness <graph> [--method random|cr|icr|cumulative|exact]
                        [--rate 0.2] [--seed 0] [--top K] [--json]
                        [--kernel auto|topdown|hybrid|msbfs] [--reorder]
                        [--artifact FILE]
      Estimate (default: cumulative @ 20%) or compute exact farness.
      Prints `vertex farness closeness` per line, or the --top K most
      central vertices; --json emits a machine-readable document.

  brics compare <graph> [--methods random,reduced,cumulative]
                        [--rates 0.1,0.2,0.3] [--seed 0] [--exact] [--json]
                        [--kernel auto|topdown|hybrid|msbfs] [--reorder]
                        [--artifact FILE]
      Method × rate comparison against ONE prepared artifact: the
      reduction pipeline and Block-Cut Tree are built once, and every
      method at every sampling rate queries the same structure — no
      re-reduction, no re-decomposition. --exact additionally computes
      the exact farness and reports each estimate's quality
      (symmetric accuracy in [0, 1]; 1.0 = perfect).

  brics topk <graph> <k> [--rate 0.3] [--seed 0] [--json]
                         [--kernel auto|topdown|hybrid|msbfs] [--reorder]
                         [--topk-prune on|off] [--artifact FILE]
      EXACT top-k closeness ranking, pruned by BRICS lower bounds —
      far cheaper than computing all-pairs farness. Verification BFS
      are cut against the running k-th best (--topk-prune on, the
      default); `off` runs every sweep to completion — same ranking,
      more edge scans.

  brics betweenness <graph> [--rate 0.3] [--seed 0] [--top K] [--exact]
      Betweenness centrality via Brandes pivots (--exact for all sources).

  brics generate <web|social|community|road|rmat> <nodes> [--seed 0]
                 [--out FILE]
      Write a synthetic class graph (.el edge list, .mtx MatrixMarket or
      .graph/.metis METIS, by extension; stdout edge list when --out is
      omitted). `rmat` is a Graph500-parameter stress generator.

  brics report check <report.json> [--schema v3] [--assert SPEC[,SPEC...]]
      Validate a --metrics run report: schema name, counter/phase/memory
      block shape, histogram quantile ordering. Each SPEC is a dotted-path
      comparison against a numeric or string leaf, e.g.
      `counters.bfs_sources>=1` or `memory.plan_accuracy<=1.0`
      (operators <=, >=, ==, !=, <, >). A failed assertion exits 3.
      `--schema v2` accepts pre-memory reports; `--schema none` skips
      structural validation so assertions can gate any JSON document
      (bench output, trace-event arrays); `--absent PATH[,PATH...]`
      requires the listed paths to NOT resolve. Dotted paths address
      array elements by index, by `length`/`last`, or by name-like field
      value (`phases.estimate.count`, `faults_injected.bfs.source.fired`).

  brics report diff <old.json> <new.json> [--fail-on SPEC[,SPEC...]]
      Compare two run reports (or any JSON documents). Each SPEC is
      `PATH:PCT`: fail (exit 3) when the numeric leaf at dotted PATH
      drifts more than PCT percent between old and new (PCT 0 = must be
      bit-equal; strings always compare exactly). The regression gate CI
      runs instead of ad-hoc jq assertions.

ARTIFACTS (prepare → farness, compare, topk):
  --artifact FILE    Start from a prepared-graph artifact written by
                     `brics prepare` instead of a graph file. FILE
                     replaces the <graph> argument (`brics farness
                     --artifact g.brics`, `brics topk --artifact
                     g.brics 10`); answers are bit-identical to a fresh
                     prepare of the recorded source. CSR sections are
                     memory-mapped and served in place (no
                     deserialization); header, section table and
                     per-section checksums are verified up front, so a
                     corrupt or truncated file is an input error
                     (exit 3). The run report names the loaded file's
                     version/checksum/source under `artifact`.

PERFORMANCE (farness, compare, topk):
  --kernel K         BFS kernel: `auto` (default; direction-optimizing
                     with stock heuristics, batching 64+ sources through
                     the bit-parallel engine), `hybrid` (direction-
                     optimizing, never batched), `topdown` (classic
                     frontier expansion) or `msbfs` (force bit-parallel
                     multi-source batches). Distances — and hence every
                     estimate — are identical across kernels; only wall
                     time differs.
  --reorder          Relabel vertices by descending degree before the
                     run (farness, compare and topk). Improves locality
                     on scale-free graphs; output is translated back to
                     original ids.
  --topk-prune MODE  `on` (default) cuts each topk verification BFS as
                     soon as a per-level lower bound on its farness
                     exceeds the current k-th best; `off` is the full-
                     sweep fallback. The ranking is identical either
                     way (cut sweeps land in `topk_pruned_bfs` /
                     `topk_cut_levels` and the `cut_depth` histogram).

EXECUTION LIMITS (farness, compare, topk, betweenness):
  --timeout SECS     Wall-clock budget. When it expires mid-run, already
                     completed BFS sources are kept: `farness` and
                     `betweenness` print the sound partial estimate and
                     exit 4; `topk` and `--method exact` refuse (they
                     promise exact answers) and exit 4 with no output.
  --max-mem-mb N     Refuse up-front (exit 3) if the run's dominant
                     allocations would exceed N MiB. Once a run is
                     admitted, the tracking allocator keeps policing it:
                     live heap growing more than N MiB past the admission
                     baseline stops the run cooperatively at the next
                     per-level/per-batch checkpoint — partial results are
                     kept and the run exits 4 (`memory-limit`), with a
                     `memory_limit` event in the report.

ROBUSTNESS (farness, compare):
  --degrade [RATE]   Arm the graceful-degradation ladder. When the run
                     trips mid-query (worker panic, memory denial,
                     deadline on an all-or-nothing computation) the
                     command answers anyway, walking: the requested
                     estimate (with panicked BFS sources quarantined and
                     retried) → sampling at RATE (default 0.1) on the
                     same prepared artifact → the already-accumulated
                     partial lower bounds. A degraded answer exits 6 and
                     the run report names the answering rung; a fully
                     recovered run is bit-identical to a fault-free one
                     and exits 0.
  --fault SPECS      Deterministic fault injection for testing:
                     comma-separated `site=kind[@trigger]` arms. Sites:
                     reduce.rule, bct.build, bfs.source, bfs.level,
                     estimate.phase_b, io.read, io.artifact,
                     alloc.admit. Kinds:
                     panic, slow, deadline-expire, mem-deny, io-error.
                     Triggers: nth:N (default nth:1), every:K,
                     prob:PERMILLE[:SEED], on:ARG. Hit/fired counts per
                     site land in the run report's `faults_injected`.

TELEMETRY (every command):
  --metrics PATH     Write a machine-readable run report — JSON with the
                     stable schema `brics.run_report/v3`: per-phase
                     wall-time spans with per-span heap footprints,
                     kernel/reduction counters (BFS sources, edges
                     scanned/MTEPS, per-rule removals, BCT shape),
                     p50/p90/p99/max latency histograms (per-source BFS
                     time, frontier sizes, per-level and per-query time),
                     a `memory` block (live/peak bytes from the tracking
                     allocator, planned vs observed-peak plan accuracy)
                     and execution events (deadline hits, cancellations,
                     memory overruns, isolated panics). PATH `-` prints
                     the report to stdout. Interrupted runs still report.
                     (v2 reports had no `memory` block or per-span heap
                     fields; v1 additionally lacked `histograms` and
                     rated `mteps` against whole-run time — now reported
                     as `whole_run_mteps`. v3 readers accept both.)
  --metrics-summary  Print a human-readable phase/counter table to stderr.
  --trace PATH       Write a Chrome trace-event JSON timeline — open it in
                     Perfetto (ui.perfetto.dev) or chrome://tracing. Spans
                     nest prepare → reduce and estimate → per-batch →
                     per-source → per-level, with thread ids.
  --progress [SECS]  Live heartbeat to stderr every SECS (default 1):
                     sources done/planned, current MTEPS, ETA, reduction
                     rounds. If no counter advances for --stall-after
                     SECS (default 10) a stall warning reports whether
                     execution limits already tripped.

EXIT CODES:
  0  success
  2  usage error (unknown command/flag value, missing argument)
  3  input/data error (unreadable file, parse failure, memory budget)
  4  interrupted by --timeout or cancellation (partial result printed
     where the method supports it)
  5  internal error (worker panic)
  6  degraded (--degrade): a fault tripped the run and a lower ladder
     rung answered; the printed estimate is a sound lower bound

Graph files: SNAP edge lists (default), MatrixMarket (.mtx), or METIS
(.graph/.metis). Disconnected inputs are connected by linking components
(paper §IV-B); pass --giant to `farness` to keep only the largest
component instead.
";

/// Entry point used by `main` (and by the CLI's integration tests).
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let parsed = parse(argv).map_err(CliError::Usage)?;
    match parsed.positional.first().map(String::as_str) {
        Some("stats") => stats(&parsed),
        Some("prepare") => prepare(&parsed),
        Some("farness") => farness(&parsed),
        Some("compare") => compare(&parsed),
        Some("topk") => topk(&parsed),
        Some("betweenness") => betweenness(&parsed),
        Some("generate") => generate(&parsed),
        Some("report") => crate::report::report(&parsed),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}' (try `brics help`)"))),
    }
}

fn usage(msg: &str) -> CliError {
    CliError::Usage(msg.to_string())
}

/// Builds the [`RunControl`] from `--timeout` / `--max-mem-mb`.
fn control_from(p: &Parsed) -> Result<RunControl, CliError> {
    let mut ctl = RunControl::new();
    if p.has("timeout") {
        let secs: f64 = p.get_parse("timeout", 0.0).map_err(CliError::Usage)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(CliError::Usage(format!("--timeout {secs}: must be a finite non-negative number of seconds")));
        }
        ctl = ctl.with_timeout(std::time::Duration::from_secs_f64(secs));
    }
    if p.has("max-mem-mb") {
        let mb: u64 = p.get_parse("max-mem-mb", 0).map_err(CliError::Usage)?;
        ctl = ctl.with_memory_budget_mb(mb);
    }
    if let Some(specs) = p.get("fault") {
        let plan = FaultPlan::parse(specs)
            .map_err(|e| CliError::Usage(format!("--fault {specs}: {e}")))?;
        ctl = ctl.with_fault_plan(plan);
    }
    Ok(ctl)
}

/// Builds the [`DegradationPolicy`] from `--degrade [RATE]`, or `None`
/// when the flag is absent.
fn degradation_from(p: &Parsed) -> Result<Option<DegradationPolicy>, CliError> {
    if !p.has("degrade") {
        return Ok(None);
    }
    let mut policy = DegradationPolicy::default();
    if let Some(v) = p.get("degrade").filter(|v| !v.is_empty()) {
        let rate: f64 =
            v.parse().map_err(|e| CliError::Usage(format!("--degrade {v}: {e}")))?;
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return Err(CliError::Usage(format!(
                "--degrade {rate}: fallback rate must be in (0, 1]"
            )));
        }
        policy = policy.with_fallback_rate(rate);
    }
    Ok(Some(policy))
}

/// The `io.read` failpoint: checked once per graph load, before the file
/// is touched. `io-error` and `panic` arms surface as an input error; a
/// `slow` arm just stalls inside [`RunControl::fault_apply`].
fn check_io_fault(ctl: &RunControl, path: &str) -> Result<(), CliError> {
    match ctl.fault_apply(FaultSite::IoRead, 0) {
        Some(FaultKind::IoError) | Some(FaultKind::Panic) => {
            Err(CliError::Input(format!("{path}: injected i/o error (io.read)")))
        }
        _ => Ok(()),
    }
}

/// Builds the [`KernelConfig`] from `--kernel`.
fn kernel_from(p: &Parsed) -> Result<KernelConfig, CliError> {
    match p.get("kernel") {
        None => Ok(KernelConfig::default()),
        Some(name) => {
            let kernel: Kernel = name.parse().map_err(CliError::Usage)?;
            Ok(KernelConfig::new(kernel))
        }
    }
}

/// Telemetry wiring from `--metrics <path|->`, `--metrics-summary`,
/// `--trace <path>` and `--progress [secs]`. The recorder is only built
/// when one of the flags is present, so unrecorded runs keep the library's
/// zero-overhead `NullRecorder` path (via the `Option<&RunRecorder>`
/// recorder impl) — and the trace buffer is only allocated under `--trace`
/// (`RunRecorder::with_trace`).
struct Metrics {
    rec: std::sync::Arc<RunRecorder>,
    out: Option<String>,
    summary: bool,
    trace: Option<String>,
    progress: Option<ProgressMeter>,
    /// The armed fault plan, if any — its per-site hit/fired counters are
    /// stamped into the report at emit time (the plan is shared with the
    /// control's copy, so the counts reflect the whole run).
    faults: Option<FaultPlan>,
    /// Degradation-ladder rungs walked by the command, stamped into the
    /// report's `degradation_path`. Interior-mutable because the commands
    /// hold the `Metrics` immutably next to the recorder `Arc`.
    degradation_path: std::cell::RefCell<Vec<String>>,
    /// Identity of the prepared-graph artifact the command wrote
    /// (`prepare`) or loaded (`--artifact`), stamped into the report's
    /// `artifact` block at emit time.
    artifact: std::cell::RefCell<Option<ArtifactProvenance>>,
    /// The run's planned query-scratch bytes (the admission figure from
    /// the [`brics::MemoryPlan`]), stamped into the report's `memory`
    /// block at emit time for the plan-vs-actual accuracy ratio. Zero
    /// when the command never planned (help, generate, report).
    planned_bytes: std::cell::Cell<u64>,
}

fn metrics_from(p: &Parsed, ctl: &RunControl) -> Result<Option<Metrics>, CliError> {
    let out = p
        .get("metrics")
        .map(|v| if v.is_empty() { "-".to_string() } else { v.to_string() });
    let summary = p.has("metrics-summary");
    let trace = match p.get("trace") {
        Some("") => return Err(usage("--trace needs a file path")),
        Some(path) => Some(path.to_string()),
        None => None,
    };
    let progress = p.has("progress");
    if out.is_none() && !summary && trace.is_none() && !progress {
        return Ok(None);
    }
    let rec = std::sync::Arc::new(if trace.is_some() {
        RunRecorder::with_trace()
    } else {
        RunRecorder::new()
    });
    let progress = progress
        .then(|| -> Result<ProgressMeter, CliError> {
            let mut cfg = ProgressConfig::default();
            if let Some(v) = p.get("progress").filter(|v| !v.is_empty()) {
                let secs: f64 = v
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--progress {v}: {e}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(CliError::Usage(format!(
                        "--progress {secs}: must be a positive number of seconds"
                    )));
                }
                cfg.interval = std::time::Duration::from_secs_f64(secs);
            }
            if let Some(v) = p.get("stall-after").filter(|v| !v.is_empty()) {
                let secs: f64 = v
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--stall-after {v}: {e}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(CliError::Usage(format!(
                        "--stall-after {secs}: must be a positive number of seconds"
                    )));
                }
                cfg.stall_after = std::time::Duration::from_secs_f64(secs);
            }
            Ok(ProgressMeter::start(rec.clone(), ctl.clone(), cfg))
        })
        .transpose()?;
    Ok(Some(Metrics {
        rec,
        out,
        summary,
        trace,
        progress,
        faults: ctl.fault_plan().cloned(),
        degradation_path: std::cell::RefCell::new(Vec::new()),
        artifact: std::cell::RefCell::new(None),
        planned_bytes: std::cell::Cell::new(0),
    }))
}

/// Stamps the run's planned query-scratch bytes for the report's
/// plan-vs-actual block (no-op without telemetry). Commands that run
/// several estimates (`compare`) keep the largest figure — the plan is a
/// per-query envelope, not a sum.
fn note_planned_bytes(m: &Option<Metrics>, bytes: u64) {
    if let Some(m) = m {
        m.planned_bytes.set(m.planned_bytes.get().max(bytes));
    }
}

/// Records the ladder walk for the run report (no-op without telemetry).
fn note_degradation_path(m: &Option<Metrics>, path: &[String]) {
    if let Some(m) = m {
        m.degradation_path.borrow_mut().extend_from_slice(path);
    }
}

/// The `--artifact FILE` flag shared by `farness`/`compare`/`topk`:
/// queries start from a prepared-graph artifact written by `brics
/// prepare` instead of reading and re-preparing a graph file, and FILE
/// takes the place of the `<graph>` argument.
fn artifact_from(p: &Parsed) -> Result<Option<String>, CliError> {
    match p.get("artifact") {
        Some("") => Err(usage("--artifact needs a file path")),
        Some(f) => Ok(Some(f.to_string())),
        None => Ok(None),
    }
}

/// Stamps the artifact's identity into the run report (no-op without
/// telemetry).
fn note_artifact(m: &Option<Metrics>, info: &ArtifactInfo) {
    if let Some(m) = m {
        *m.artifact.borrow_mut() = Some(ArtifactProvenance {
            version: info.version,
            checksum: format!("{:016x}", info.checksum),
            source: info.source.clone(),
        });
    }
}

/// Loads a prepared-graph artifact for a query command: integrity is
/// verified up front (a corrupt or truncated file surfaces as
/// [`CentralityError::Artifact`] → exit 3), provenance is stamped into
/// the run report, and a note says where the prepared state came from.
fn load_artifact<R: Recorder>(
    file: &str,
    m: &Option<Metrics>,
    ctx: &ExecutionContext<'_, R>,
) -> Result<PreparedGraph<'static>, CentralityError> {
    let (prepared, info) = PreparedGraph::load(Path::new(file), ctx)?;
    note_artifact(m, &info);
    eprintln!(
        "note: loaded prepared artifact {file} ({} bytes, checksum {:016x}, prepared from {})",
        info.bytes, info.checksum, info.source
    );
    Ok(prepared)
}

/// Emits the collected telemetry: stops the progress heartbeat (printing
/// its final line), writes the JSON run report to the `--metrics` target
/// and the Chrome trace to the `--trace` target, and/or prints the summary
/// table to stderr. Call *before* converting a partial outcome into a
/// non-zero exit so interrupted runs still report their telemetry.
fn emit_metrics(m: &Option<Metrics>) -> Result<(), CliError> {
    let Some(m) = m else { return Ok(()) };
    if let Some(meter) = &m.progress {
        meter.stop();
    }
    if let Some(plan) = &m.faults {
        m.rec.add(Counter::FaultsInjected, plan.total_fired());
    }
    let mut report = m.rec.report();
    if let Some(plan) = &m.faults {
        report.faults_injected = plan
            .site_records()
            .iter()
            .map(|s| FaultSiteRecord { site: s.site.to_string(), hits: s.hits, fired: s.fired })
            .collect();
    }
    report.degradation_path = m.degradation_path.borrow().clone();
    report.artifact = m.artifact.borrow().clone();
    report.stamp_planned_bytes(m.planned_bytes.get());
    if let Some(target) = &m.out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Internal(format!("serializing run report: {e}")))?;
        if target == "-" {
            println!("{json}");
        } else {
            std::fs::write(target, json + "
")
                .map_err(|e| CliError::Input(format!("{target}: {e}")))?;
        }
    }
    if let Some(target) = &m.trace {
        let dropped = m.rec.trace_dropped();
        if dropped > 0 {
            eprintln!("note: trace buffer filled — {dropped} spans were dropped");
        }
        std::fs::write(target, m.rec.chrome_trace_json() + "\n")
            .map_err(|e| CliError::Input(format!("{target}: {e}")))?;
    }
    if m.summary {
        eprint!("{}", report.summary_table());
    }
    Ok(())
}

fn outcome_name(o: RunOutcome) -> &'static str {
    match o {
        RunOutcome::Complete => "complete",
        RunOutcome::Deadline => "deadline",
        RunOutcome::Cancelled => "cancelled",
        RunOutcome::MemoryLimit => "memory-limit",
        RunOutcome::Degraded => "degraded",
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, CliError> {
    load_graph_with(path, false)
}

fn load_graph_with(path: &str, giant: bool) -> Result<CsrGraph, CliError> {
    let g = if path.ends_with(".mtx") {
        read_mtx(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        read_metis(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?
    } else {
        read_edge_list(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?
    };
    if g.num_nodes() == 0 {
        return Err(CliError::Input(format!("{path}: empty graph")));
    }
    if is_connected(&g) {
        Ok(g)
    } else if giant {
        let sub = brics_graph::connectivity::largest_component(&g);
        eprintln!(
            "note: input was disconnected; kept the largest component ({} of {} \
             vertices; ids remapped)",
            sub.len(),
            g.num_nodes()
        );
        Ok(sub.graph)
    } else {
        let (g2, added) = make_connected(&g);
        eprintln!(
            "note: input was disconnected; added {added} linking edges (paper §IV-B); \
             pass --giant to keep only the largest component instead"
        );
        Ok(g2)
    }
}

fn stats(p: &Parsed) -> Result<(), CliError> {
    let path = p.positional.get(1).ok_or_else(|| usage("usage: brics stats <graph>"))?;
    let m = metrics_from(p, &RunControl::new())?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    let g = load_graph(path)?;
    let d = degree_stats(&g);
    let red = reduce_ctl_rec(&g, &ReductionConfig::all(), &RunControl::new(), &rec)
        .expect("unbounded control cannot be interrupted");
    let bi = timed(&rec, "bct.build", || biconnected_components(&g));
    if rec.enabled() {
        rec.add(Counter::BctBlocks, bi.blocks.len() as u64);
        rec.add(Counter::BctCutVertices, bi.is_cut.iter().filter(|&&c| c).count() as u64);
    }
    println!("graph            {path}");
    println!("vertices         {}", d.num_nodes);
    println!("edges            {}", d.num_edges);
    println!("degree           min {} max {} mean {:.2}", d.min, d.max, d.mean);
    println!(
        "deg<=2 fraction  {:.1}% (deg1 {}, deg2 {})",
        100.0 * d.low_degree_fraction(),
        d.deg1,
        d.deg2
    );
    println!("identical nodes  {}", red.stats.identical_nodes);
    println!("identical chains {}", red.stats.identical_chain_nodes);
    println!("chain nodes      {}", red.stats.chain_nodes);
    println!("redundant nodes  {}", red.stats.redundant_nodes);
    println!("contracted nodes {}", red.stats.contracted_chain_nodes);
    println!(
        "reduced graph    {} vertices, {} edges ({:.1}% of original vertices)",
        red.stats.surviving_nodes,
        red.stats.surviving_edges,
        100.0 * red.stats.surviving_nodes as f64 / d.num_nodes as f64
    );
    println!(
        "biconnected      {} blocks, largest {}, avg {:.1}",
        bi.blocks.len(),
        bi.max_block_len(),
        bi.avg_block_len()
    );
    let db = brics_graph::eccentricity::diameter_bounds(&g, 0, 16);
    if db.lower == db.upper {
        println!("diameter         {} ({} BFS runs)", db.lower, db.bfs_runs);
    } else {
        println!(
            "diameter         in [{}, {}] ({} BFS runs)",
            db.lower, db.upper, db.bfs_runs
        );
    }
    emit_metrics(&m)?;
    Ok(())
}

/// `brics prepare` — run the prepare stage once and persist it as a
/// binary artifact. Queries replay through `--artifact` with
/// bit-identical answers and no `reduce` span in their run reports.
fn prepare(p: &Parsed) -> Result<(), CliError> {
    let path =
        p.positional.get(1).ok_or_else(|| usage("usage: brics prepare <graph> <artifact>"))?;
    let out =
        p.positional.get(2).ok_or_else(|| usage("usage: brics prepare <graph> <artifact>"))?;
    let ctl = control_from(p)?; // before load: --timeout bounds the command
    let kcfg = kernel_from(p)?;
    let method_name = p.get("method").unwrap_or("cumulative");
    let pcfg = prepare_config_of(method_name, p.has("reorder"))?;
    let m = metrics_from(p, &ctl)?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    if let Err(e) = check_io_fault(&ctl, path) {
        let _ = emit_metrics(&m);
        return Err(e);
    }
    let g = load_graph_with(path, p.has("giant"))?;
    let ctx =
        ExecutionContext::new().with_control(ctl).with_kernel(kcfg).with_recorder(&rec);
    let prepared = match PreparedGraph::build_with(&g, pcfg, &ctx) {
        Ok(prepared) => prepared,
        Err(e) => {
            let _ = emit_metrics(&m);
            return Err(e.into());
        }
    };
    eprintln!(
        "note: prepared '{method_name}' in {:.3}s — {} of {} vertices survive the reduction",
        prepared.prepare_elapsed().as_secs_f64(),
        prepared.num_surviving(),
        g.num_nodes(),
    );
    let info = match prepared.save(Path::new(out), path, &ctx) {
        Ok(info) => info,
        Err(e) => {
            let _ = emit_metrics(&m);
            return Err(e.into());
        }
    };
    note_artifact(&m, &info);
    eprintln!(
        "note: wrote {out} ({} bytes, container v{}, checksum {:016x})",
        info.bytes, info.version, info.checksum
    );
    emit_metrics(&m)?;
    Ok(())
}

/// Maps a `farness --method` name onto the prepare stage it needs: no
/// reduction for the baselines, the paper's ablation configs for C+R and
/// I+C+R, and the full reduction + Block-Cut Tree for Cumulative.
fn prepare_config_of(name: &str, reorder: bool) -> Result<PrepareConfig, CliError> {
    let (reductions, use_bcc) = match name {
        "exact" | "random" => (brics::ReductionConfig::none(), false),
        "cr" => (brics::ReductionConfig::cr(), false),
        "icr" => (brics::ReductionConfig::icr(), false),
        "cumulative" => (brics::ReductionConfig::all(), true),
        other => return Err(CliError::Usage(format!("unknown method '{other}'"))),
    };
    Ok(PrepareConfig { reductions, use_bcc, reorder })
}

/// One farness result set, ready for printing: per-vertex values plus the
/// run bookkeeping the output and the exit code are derived from.
struct Rows {
    values: Vec<u64>,
    sampled: Vec<bool>,
    coverage: Vec<u32>,
    label: String,
    num_sources: usize,
    outcome: RunOutcome,
    degraded: bool,
}

/// Streams the farness table (or JSON document) to stdout. Streamed +
/// buffered: the document can cover half a million vertices, and on a
/// timed-out run the printing happens *after* the deadline — building one
/// giant `Value` tree (or a syscall per line) would add seconds past the
/// budget for no benefit.
fn print_farness_rows(p: &Parsed, path: &str, rows: &Rows, top: usize) {
    let order: Vec<u32> = {
        let mut idx: Vec<u32> = (0..rows.values.len() as u32).collect();
        if top > 0 {
            idx.sort_by_key(|&v| (rows.values[v as usize], v));
            idx.truncate(top);
        }
        idx
    };
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::io::stdout().lock());
    if p.has("json") {
        writeln!(w, "{{").unwrap();
        writeln!(w, "  \"graph\": {},", serde_json::to_string(&path).unwrap()).unwrap();
        writeln!(w, "  \"method\": {},", serde_json::to_string(&rows.label).unwrap()).unwrap();
        writeln!(w, "  \"outcome\": \"{}\",", outcome_name(rows.outcome)).unwrap();
        writeln!(w, "  \"num_sources\": {},", rows.num_sources).unwrap();
        writeln!(w, "  \"vertices\": [").unwrap();
        for (i, &v) in order.iter().enumerate() {
            let f = rows.values[v as usize];
            let c = if f == 0 { 0.0 } else { 1.0 / f as f64 };
            writeln!(
                w,
                "    {{\"id\": {v}, \"farness\": {f}, \"closeness\": {}, \
                 \"coverage\": {}, \"exact\": {}}}{}",
                serde_json::to_string(&c).unwrap(),
                rows.coverage[v as usize],
                rows.sampled[v as usize],
                if i + 1 == order.len() { "" } else { "," },
            )
            .unwrap();
        }
        writeln!(w, "  ]").unwrap();
        writeln!(w, "}}").unwrap();
    } else {
        writeln!(w, "# vertex  farness  closeness  exact").unwrap();
        for &v in &order {
            let f = rows.values[v as usize];
            let c = if f == 0 { 0.0 } else { 1.0 / f as f64 };
            writeln!(w, "{v} {f} {c:.3e} {}", rows.sampled[v as usize]).unwrap();
        }
    }
    w.flush().unwrap();
}

/// The `--degrade` artifact-plus-ladder flow: build the configured
/// artifact (its prepare stage is already panic-isolated under an armed
/// policy), and if even that fails softly, fall back to a minimal build —
/// no reductions, no BCT, hence no memory admission — so the ladder still
/// has something to run against. Hard data errors propagate.
fn degraded_query<R: Recorder>(
    g: &CsrGraph,
    pcfg: PrepareConfig,
    request: &DegradedRequest,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<brics::DegradedEstimate, CentralityError> {
    let (prepared, minimal_fallback) = degraded_prepare(g, pcfg, ctx)?;
    let mut d = run_degraded(&prepared, request, sample, seed, ctx)?;
    if minimal_fallback {
        d.path.insert(0, "prepare:minimal".to_string());
        d.degraded = true;
    }
    Ok(d)
}

/// The build half of [`degraded_query`], reusable when many queries share
/// one artifact (`compare`). Returns the artifact plus whether the
/// configured build failed softly and the minimal build stood in.
fn degraded_prepare<'g, R: Recorder>(
    g: &'g CsrGraph,
    pcfg: PrepareConfig,
    ctx: &ExecutionContext<'_, R>,
) -> Result<(PreparedGraph<'g>, bool), CentralityError> {
    match PreparedGraph::build_with(g, pcfg, ctx) {
        Ok(prepared) => Ok((prepared, false)),
        Err(
            e @ (CentralityError::EmptyGraph
            | CentralityError::Disconnected { .. }
            | CentralityError::NoSamples),
        ) => Err(e),
        Err(first) => {
            let minimal = PrepareConfig {
                reductions: brics::ReductionConfig::none(),
                use_bcc: false,
                reorder: false,
            };
            match PreparedGraph::build_with(g, minimal, ctx) {
                Ok(prepared) => Ok((prepared, true)),
                Err(CentralityError::Interrupted { outcome }) => {
                    Err(CentralityError::Interrupted { outcome })
                }
                Err(_) => Err(first),
            }
        }
    }
}

fn farness(p: &Parsed) -> Result<(), CliError> {
    let artifact = artifact_from(p)?;
    if artifact.is_some() && p.positional.get(1).is_some() {
        return Err(usage("farness takes either <graph> or --artifact, not both"));
    }
    let path = match &artifact {
        Some(a) => a.as_str(),
        None => p
            .positional
            .get(1)
            .map(String::as_str)
            .ok_or_else(|| usage("usage: brics farness <graph> [options]"))?,
    };
    // The control is built *before* loading so `--timeout` bounds the whole
    // command: a slow parse eats into the budget and the (uninterruptible)
    // load is followed by an immediate deadline check inside the engine.
    let ctl = control_from(p)?;
    let kcfg = kernel_from(p)?;
    let policy = degradation_from(p)?;
    let m = metrics_from(p, &ctl)?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    if artifact.is_none() {
        if let Err(e) = check_io_fault(&ctl, path) {
            let _ = emit_metrics(&m);
            return Err(e);
        }
    }
    let loaded = match &artifact {
        Some(_) => None, // the prepared state comes from the artifact file
        None => Some(load_graph_with(path, p.has("giant"))?),
    };
    let rate: f64 = p.get_parse("rate", 0.2).map_err(CliError::Usage)?;
    let seed: u64 = p.get_parse("seed", 0).map_err(CliError::Usage)?;
    let top: usize = p.get_parse("top", 0).map_err(CliError::Usage)?;
    let method_name = p.get("method").unwrap_or("cumulative");
    // --reorder becomes part of the prepare stage: queries traverse the
    // degree-sorted relabelling and the artifact translates every result
    // back, so ids in the output are always the input's ids.
    let pcfg = prepare_config_of(method_name, p.has("reorder"))?;
    if pcfg.reorder && artifact.is_none() {
        eprintln!("note: --reorder relabelled vertices by descending degree");
    }
    let mut ctx = ExecutionContext::new().with_control(ctl).with_kernel(kcfg);
    if let Some(policy) = policy {
        ctx = ctx.with_degradation(policy);
    }
    let ctx = ctx.with_recorder(&rec);
    // Artifact mode: ONE load (integrity-checked, mmap-backed) serves both
    // the degrade ladder and the plain query paths below.
    let from_artifact: Option<PreparedGraph<'static>> = match &artifact {
        Some(file) => match load_artifact(file, &m, &ctx) {
            Ok(prepared) => Some(prepared),
            Err(e) => {
                let _ = emit_metrics(&m);
                return Err(e.into());
            }
        },
        None => None,
    };
    let n = from_artifact.as_ref().map_or_else(
        || loaded.as_ref().expect("graph or artifact").num_nodes(),
        |prepared| prepared.original().num_nodes(),
    );
    // Plan-vs-actual: stamp the admission figure this query runs under, so
    // the report's memory block can rate observed peak against it.
    let plan = MemoryPlan::compute(n, ctx.thread_count());
    note_planned_bytes(
        &m,
        match method_name {
            "exact" => plan.exact_bytes,
            "random" | "cr" | "icr" => plan.accumulate_bytes,
            _ => plan.cumulative_bytes,
        },
    );

    if policy.is_some() {
        // --degrade: route through the quality ladder instead of the plain
        // query path. The ladder owns retries/fallbacks; the command's job
        // is artifact construction, output and the exit code.
        let request = match method_name {
            "exact" => DegradedRequest::Exact,
            "random" => DegradedRequest::Estimate(Method::RandomSampling),
            "cr" => DegradedRequest::Estimate(Method::CR),
            "icr" => DegradedRequest::Estimate(Method::ICR),
            _ => DegradedRequest::Estimate(Method::Cumulative),
        };
        let queried = match &from_artifact {
            Some(prepared) => {
                run_degraded(prepared, &request, SampleSize::Fraction(rate), seed, &ctx)
            }
            None => degraded_query(
                loaded.as_ref().expect("graph loaded"),
                pcfg,
                &request,
                SampleSize::Fraction(rate),
                seed,
                &ctx,
            ),
        };
        let (rows, answered_by) =
            match queried {
                Ok(d) => {
                    note_degradation_path(&m, &d.path);
                    eprintln!(
                        "note: {} sources, {:.3}s — answered by {} (path: {}; \
                         {} retries, {} quarantined)",
                        d.estimate.num_sources(),
                        d.estimate.elapsed().as_secs_f64(),
                        d.answered_by,
                        d.path.join(" -> "),
                        d.retries,
                        d.quarantined,
                    );
                    let rows = Rows {
                        values: d.estimate.raw().to_vec(),
                        sampled: d.estimate.sampled_mask().to_vec(),
                        coverage: d.estimate.coverage().to_vec(),
                        label: method_name.into(),
                        num_sources: d.estimate.num_sources(),
                        outcome: d.estimate.outcome(),
                        degraded: d.degraded,
                    };
                    (rows, d.answered_by)
                }
                // Not even the minimal prepare could start (expired
                // deadline): the trivial zero-coverage partial is still a
                // sound answer — print it, exactly like the plain path.
                Err(CentralityError::Interrupted { outcome }) => {
                    let answered = "partial-lower-bounds".to_string();
                    note_degradation_path(&m, std::slice::from_ref(&answered));
                    let rows = Rows {
                        values: vec![0; n],
                        sampled: vec![false; n],
                        coverage: vec![0; n],
                        label: method_name.into(),
                        num_sources: 0,
                        outcome,
                        degraded: true,
                    };
                    (rows, answered)
                }
                Err(e) => {
                    let _ = emit_metrics(&m);
                    return Err(e.into());
                }
            };
        print_farness_rows(p, path, &rows, top);
        emit_metrics(&m)?;
        if rows.outcome.is_interrupted() {
            return Err(CliError::TimeoutPartial(format!(
                "{} interrupted the run after {} completed sources; the printed \
                 estimate is a sound partial lower bound",
                outcome_name(rows.outcome),
                rows.num_sources
            )));
        }
        if rows.degraded {
            return Err(CliError::Degraded(format!(
                "answered by the '{answered_by}' rung instead of the requested \
                 '{method_name}' estimate; the printed values are sound lower bounds"
            )));
        }
        return Ok(());
    }

    let built = match from_artifact {
        Some(prepared) => Ok(prepared),
        None => PreparedGraph::build_with(loaded.as_ref().expect("graph loaded"), pcfg, &ctx),
    };
    let rows = match built {
        // The prepare stage itself was cut short before any source could
        // run: report the trivial (but sound) zero-coverage partial, exactly
        // as an interrupted estimation does. Exact refuses below instead.
        Err(CentralityError::Interrupted { outcome }) if method_name != "exact" => Rows {
            values: vec![0; n],
            sampled: vec![false; n],
            coverage: vec![0; n],
            label: method_name.into(),
            num_sources: 0,
            outcome,
            degraded: false,
        },
        Err(e) => {
            let _ = emit_metrics(&m);
            return Err(e.into());
        }
        Ok(prepared) if method_name == "exact" => {
            // Exact computation is all-or-nothing: an expired --timeout
            // comes back as `CentralityError::Interrupted` (exit 4, no
            // output — but the collected telemetry still reports).
            match prepared.exact(&ctx) {
                Ok(f) => Rows {
                    values: f,
                    sampled: vec![true; n],
                    coverage: vec![(n as u32).saturating_sub(1); n],
                    label: "exact".into(),
                    num_sources: n,
                    outcome: RunOutcome::Complete,
                    degraded: false,
                },
                Err(e) => {
                    let _ = emit_metrics(&m);
                    return Err(e.into());
                }
            }
        }
        Ok(prepared) => {
            let sample = SampleSize::Fraction(rate);
            let est = match method_name {
                "random" => prepared.sample(sample, seed, &ctx),
                "cumulative" => prepared.cumulative(sample, seed, &ctx),
                _ => prepared.reduced(sample, seed, &ctx),
            };
            let est = match est {
                Ok(est) => est,
                Err(e) => {
                    let _ = emit_metrics(&m);
                    return Err(e.into());
                }
            };
            let partial_note = if est.is_partial() {
                format!(" — PARTIAL ({})", outcome_name(est.outcome()))
            } else {
                String::new()
            };
            eprintln!(
                "note: {} sources, {:.3}s{partial_note}",
                est.num_sources(),
                est.elapsed().as_secs_f64()
            );
            Rows {
                values: est.raw().to_vec(),
                sampled: est.sampled_mask().to_vec(),
                coverage: est.coverage().to_vec(),
                label: method_name.into(),
                num_sources: est.num_sources(),
                outcome: est.outcome(),
                degraded: false,
            }
        }
    };

    print_farness_rows(p, path, &rows, top);
    emit_metrics(&m)?;
    if !rows.outcome.is_complete() {
        // The partial (but sound) estimate went to stdout above; the exit
        // code still has to tell scripts the run was cut short.
        return Err(CliError::TimeoutPartial(format!(
            "{} interrupted the run after {} completed sources; the printed \
             estimate is a sound partial lower bound",
            outcome_name(rows.outcome),
            rows.num_sources
        )));
    }
    Ok(())
}

/// `brics compare` — the amortization flow the two-stage engine exists
/// for: ONE `PreparedGraph` (full reductions + Block-Cut Tree) serves
/// every requested method at every sampling rate. With `--metrics` the
/// report shows a single `reduce` span with `count == 1` no matter how
/// many estimates ran.
fn compare(p: &Parsed) -> Result<(), CliError> {
    let artifact = artifact_from(p)?;
    if artifact.is_some() && p.positional.get(1).is_some() {
        return Err(usage("compare takes either <graph> or --artifact, not both"));
    }
    let path = match &artifact {
        Some(a) => a.as_str(),
        None => p
            .positional
            .get(1)
            .map(String::as_str)
            .ok_or_else(|| usage("usage: brics compare <graph> [options]"))?,
    };
    let ctl = control_from(p)?; // before load: --timeout bounds the command
    let kcfg = kernel_from(p)?;
    let policy = degradation_from(p)?;
    let m = metrics_from(p, &ctl)?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    if artifact.is_none() {
        if let Err(e) = check_io_fault(&ctl, path) {
            let _ = emit_metrics(&m);
            return Err(e);
        }
    }
    let g = match &artifact {
        Some(_) => None, // the prepared state comes from the artifact file
        None => Some(load_graph_with(path, p.has("giant"))?),
    };
    let seed: u64 = p.get_parse("seed", 0).map_err(CliError::Usage)?;

    let rates: Vec<f64> = p
        .get("rates")
        .unwrap_or("0.1,0.2,0.3")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|e| CliError::Usage(format!("--rates '{s}': {e}")))
                .and_then(|r| {
                    if r.is_finite() && r > 0.0 && r <= 1.0 {
                        Ok(r)
                    } else {
                        Err(CliError::Usage(format!("--rates {r}: must be in (0, 1]")))
                    }
                })
        })
        .collect::<Result<_, _>>()?;
    let methods: Vec<String> = p
        .get("methods")
        .unwrap_or("random,reduced,cumulative")
        .split(',')
        .map(|s| {
            let name = s.trim();
            match name {
                "random" | "reduced" | "cumulative" => Ok(name.to_string()),
                other => Err(CliError::Usage(format!(
                    "unknown compare method '{other}' (expected random, reduced or cumulative)"
                ))),
            }
        })
        .collect::<Result<_, _>>()?;
    if rates.is_empty() || methods.is_empty() {
        return Err(usage("compare needs at least one method and one rate"));
    }

    let mut ctx = ExecutionContext::new().with_control(ctl).with_kernel(kcfg);
    if let Some(policy) = policy {
        ctx = ctx.with_degradation(policy);
    }
    let ctx = ctx.with_recorder(&rec);
    let pcfg = PrepareConfig {
        reductions: brics::ReductionConfig::all(),
        use_bcc: true,
        reorder: p.has("reorder"),
    };
    let build = match &artifact {
        Some(file) => load_artifact(file, &m, &ctx).map(|prepared| (prepared, false)),
        None if policy.is_some() => degraded_prepare(g.as_ref().expect("graph loaded"), pcfg, &ctx),
        None => PreparedGraph::build_with(g.as_ref().expect("graph loaded"), pcfg, &ctx)
            .map(|prepared| (prepared, false)),
    };
    let (prepared, minimal_fallback) = match build {
        Ok(t) => t,
        Err(e) => {
            let _ = emit_metrics(&m);
            return Err(e.into());
        }
    };
    let n = g.as_ref().map_or_else(|| prepared.original().num_nodes(), CsrGraph::num_nodes);
    // The comparison's planned figure is the widest single query: the plan
    // is a per-query envelope (queries run one after another), not a sum.
    let plan = MemoryPlan::compute(n, ctx.thread_count());
    for method in &methods {
        note_planned_bytes(
            &m,
            match method.as_str() {
                "random" | "reduced" => plan.accumulate_bytes,
                _ => plan.cumulative_bytes,
            },
        );
    }
    if p.has("exact") {
        note_planned_bytes(&m, plan.exact_bytes);
    }
    let mut any_degraded = minimal_fallback || !prepared.prepare_degradation().is_empty();
    if minimal_fallback {
        note_degradation_path(&m, &["prepare:minimal".to_string()]);
        eprintln!("note: configured prepare failed; queries run on a minimal artifact");
    }
    note_degradation_path(&m, prepared.prepare_degradation());
    eprintln!(
        "note: prepared once in {:.3}s — {} of {} vertices survive the reduction; \
         {} estimates share the artifact",
        prepared.prepare_elapsed().as_secs_f64(),
        prepared.num_surviving(),
        n,
        methods.len() * rates.len(),
    );
    let exact = if p.has("exact") {
        match prepared.exact(&ctx) {
            Ok(x) => Some(x),
            Err(e) => {
                let _ = emit_metrics(&m);
                return Err(e.into());
            }
        }
    } else {
        None
    };

    struct Row {
        method: String,
        rate: f64,
        sources: usize,
        seconds: f64,
        quality: Option<f64>,
        outcome: RunOutcome,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(methods.len() * rates.len());
    let mut worst = RunOutcome::Complete;
    for method in &methods {
        for &rate in &rates {
            let sample = SampleSize::Fraction(rate);
            let est = if policy.is_some() {
                // --degrade: every cell answers through the ladder against
                // the shared artifact; a faulted cell degrades alone
                // instead of failing the whole comparison.
                let request = match method.as_str() {
                    "random" => DegradedRequest::Estimate(Method::RandomSampling),
                    "reduced" => DegradedRequest::Estimate(Method::ICR),
                    _ => DegradedRequest::Estimate(Method::Cumulative),
                };
                run_degraded(&prepared, &request, sample, seed, &ctx).map(|d| {
                    if d.degraded {
                        any_degraded = true;
                        note_degradation_path(&m, &d.path);
                    }
                    d.estimate
                })
            } else {
                match method.as_str() {
                    "random" => prepared.sample(sample, seed, &ctx),
                    "reduced" => prepared.reduced(sample, seed, &ctx),
                    _ => prepared.cumulative(sample, seed, &ctx),
                }
            };
            let est = match est {
                Ok(est) => est,
                Err(e) => {
                    let _ = emit_metrics(&m);
                    return Err(e.into());
                }
            };
            worst = worst.merge(est.outcome());
            rows.push(Row {
                method: method.clone(),
                rate,
                sources: est.num_sources(),
                seconds: est.elapsed().as_secs_f64(),
                quality: exact
                    .as_ref()
                    .map(|x| brics::quality::symmetric_quality(est.scaled(), x)),
                outcome: est.outcome(),
            });
        }
    }

    if p.has("json") {
        let doc = serde_json::json!({
            "graph": path,
            "seed": seed,
            "prepare_seconds": prepared.prepare_elapsed().as_secs_f64(),
            "surviving_vertices": prepared.num_surviving(),
            "runs": rows.iter().map(|r| serde_json::json!({
                "method": r.method.clone(),
                "rate": r.rate,
                "sources": r.sources,
                "seconds": r.seconds,
                "quality": r.quality,
                "outcome": outcome_name(r.outcome),
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        println!("# method rate sources seconds quality outcome");
        for r in &rows {
            let q = r.quality.map_or("-".to_string(), |q| format!("{q:.4}"));
            println!(
                "{} {:.2} {} {:.4} {} {}",
                r.method,
                r.rate,
                r.sources,
                r.seconds,
                q,
                outcome_name(r.outcome)
            );
        }
    }
    emit_metrics(&m)?;
    if worst.is_interrupted() {
        return Err(CliError::TimeoutPartial(format!(
            "{} interrupted at least one estimate; the printed rows are sound partials",
            outcome_name(worst)
        )));
    }
    if any_degraded || worst == RunOutcome::Degraded {
        return Err(CliError::Degraded(
            "at least one estimate answered through a lower ladder rung; the printed \
             rows are sound lower bounds"
                .to_string(),
        ));
    }
    Ok(())
}

fn topk(p: &Parsed) -> Result<(), CliError> {
    let artifact = artifact_from(p)?;
    // --artifact replaces <graph>, so <k> shifts to the first positional.
    let (path, k_arg) = match &artifact {
        Some(a) => {
            if p.positional.get(2).is_some() {
                return Err(usage("topk takes either <graph> or --artifact, not both"));
            }
            let k = p
                .positional
                .get(1)
                .map(String::as_str)
                .ok_or_else(|| usage("usage: brics topk --artifact <file> <k>"))?;
            (a.as_str(), k)
        }
        None => (
            p.positional
                .get(1)
                .map(String::as_str)
                .ok_or_else(|| usage("usage: brics topk <graph> <k>"))?,
            p.positional
                .get(2)
                .map(String::as_str)
                .ok_or_else(|| usage("usage: brics topk <graph> <k>"))?,
        ),
    };
    let k: usize = k_arg.parse().map_err(|e| CliError::Usage(format!("bad k: {e}")))?;
    let ctl = control_from(p)?; // before load: --timeout bounds the command
    let kcfg = kernel_from(p)?;
    let prune = match p.get("topk-prune").unwrap_or("on") {
        "on" | "" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!("--topk-prune {other}: expected on|off")))
        }
    };
    let m = metrics_from(p, &ctl)?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    if artifact.is_none() {
        if let Err(e) = check_io_fault(&ctl, path) {
            let _ = emit_metrics(&m);
            return Err(e);
        }
    }
    let g = match &artifact {
        Some(_) => None, // the prepared state comes from the artifact file
        None => Some(load_graph(path)?),
    };
    let rate: f64 = p.get_parse("rate", 0.3).map_err(CliError::Usage)?;
    let seed: u64 = p.get_parse("seed", 0).map_err(CliError::Usage)?;
    // One prepared artifact (reduction + Block-Cut Tree built once, a
    // single `reduce` span) serves the estimate and the verification scan,
    // exactly like `farness`/`compare`; --reorder relabels inside it and
    // the ranking is translated back to input ids.
    let pcfg = prepare_config_of("cumulative", p.has("reorder"))?;
    if pcfg.reorder && artifact.is_none() {
        eprintln!("note: --reorder relabelled vertices by descending degree");
    }
    let ctx =
        ExecutionContext::new().with_control(ctl).with_kernel(kcfg).with_recorder(&rec);
    // Top-k promises exact answers, so interruption is an error (exit 4),
    // never a shorter/looser ranking. Emit whatever telemetry the run
    // collected before surfacing the error.
    let built = match &artifact {
        Some(file) => load_artifact(file, &m, &ctx),
        None => PreparedGraph::build_with(g.as_ref().expect("graph loaded"), pcfg, &ctx),
    };
    let (n, t) = match built.and_then(|prepared| {
        let n = prepared.original().num_nodes();
        prepared.topk_with(k, SampleSize::Fraction(rate), seed, prune, &ctx).map(|t| (n, t))
    }) {
        Ok(t) => t,
        Err(e) => {
            let _ = emit_metrics(&m);
            return Err(e.into());
        }
    };
    // Top-k runs the cumulative estimate plus verification sweeps, both
    // covered by the cumulative admission envelope.
    note_planned_bytes(&m, MemoryPlan::compute(n, ctx.thread_count()).cumulative_bytes);
    eprintln!(
        "note: {} pruned, {} cut mid-sweep, {} verified by BFS, {} for free (of {})",
        t.pruned,
        t.pruned_bfs,
        t.verified_with_bfs,
        t.verified_for_free,
        n
    );
    if p.has("json") {
        let doc = serde_json::json!({
            "graph": path,
            "k": k,
            "pruned": t.pruned,
            "pruned_bfs": t.pruned_bfs,
            "ranked": t.ranked.iter().map(|&(v, f)| serde_json::json!({
                "id": v, "farness": f,
                "closeness": if f == 0 { 0.0 } else { 1.0 / f as f64 },
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        println!("# rank vertex farness closeness (exact)");
        for (i, &(v, f)) in t.ranked.iter().enumerate() {
            let c = if f == 0 { 0.0 } else { 1.0 / f as f64 };
            println!("{} {v} {f} {c:.3e}", i + 1);
        }
    }
    emit_metrics(&m)?;
    Ok(())
}

fn betweenness(p: &Parsed) -> Result<(), CliError> {
    let path =
        p.positional.get(1).ok_or_else(|| usage("usage: brics betweenness <graph> [options]"))?;
    let ctl = control_from(p)?; // before load: --timeout bounds the command
    let m = metrics_from(p, &ctl)?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    let g = load_graph_with(path, p.has("giant"))?;
    let top: usize = p.get_parse("top", 10).map_err(CliError::Usage)?;
    let (values, outcome) = if p.has("exact") {
        (
            timed(&rec, "estimate", || brics::betweenness::exact_betweenness(&g)),
            RunOutcome::Complete,
        )
    } else {
        let rate: f64 = p.get_parse("rate", 0.3).map_err(CliError::Usage)?;
        let seed: u64 = p.get_parse("seed", 0).map_err(CliError::Usage)?;
        let ctx = ExecutionContext::new().with_control(ctl).with_recorder(&rec);
        match brics::betweenness::sampled_betweenness_in(&g, SampleSize::Fraction(rate), seed, &ctx)
        {
            Ok(r) => r,
            Err(e) => {
                let _ = emit_metrics(&m);
                return Err(e.into());
            }
        }
    };
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .partial_cmp(&values[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(top.max(1));
    println!("# rank vertex betweenness");
    for (i, &v) in idx.iter().enumerate() {
        println!("{} {v} {:.3}", i + 1, values[v as usize]);
    }
    emit_metrics(&m)?;
    if !outcome.is_complete() {
        return Err(CliError::TimeoutPartial(format!(
            "{} interrupted the run; the printed betweenness is the unbiased \
             estimate over the completed pivots",
            outcome_name(outcome)
        )));
    }
    Ok(())
}

fn generate(p: &Parsed) -> Result<(), CliError> {
    let class: GraphClass = p
        .positional
        .get(1)
        .ok_or_else(|| usage("usage: brics generate <class> <nodes>"))?
        .parse()
        .map_err(CliError::Usage)?;
    let nodes: usize = p
        .positional
        .get(2)
        .ok_or_else(|| usage("usage: brics generate <class> <nodes>"))?
        .parse()
        .map_err(|e| CliError::Usage(format!("bad node count: {e}")))?;
    let seed: u64 = p.get_parse("seed", 0).map_err(CliError::Usage)?;
    let m = metrics_from(p, &RunControl::new())?;
    let rec = m.as_ref().map(|mm| mm.rec.as_ref());
    let g = timed(&rec, "generate.build", || class.generate(ClassParams::new(nodes, seed)));
    eprintln!(
        "generated {} graph: {} vertices, {} edges (seed {seed})",
        class.name(),
        g.num_nodes(),
        g.num_edges()
    );
    match p.get("out") {
        Some(path) if path.ends_with(".mtx") => {
            write_mtx(&g, path).map_err(|e| CliError::Input(e.to_string()))?;
        }
        Some(path) if path.ends_with(".graph") || path.ends_with(".metis") => {
            write_metis(&g, path).map_err(|e| CliError::Input(e.to_string()))?;
        }
        Some(path) => {
            write_edge_list(&g, path).map_err(|e| CliError::Input(e.to_string()))?;
        }
        None => {
            brics_graph::io::write_edge_list_to(&g, std::io::stdout().lock())
                .map_err(|e| CliError::Input(e.to_string()))?;
        }
    }
    emit_metrics(&m)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), CliError> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("brics-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).is_ok());
        assert!(run(&[]).is_ok());
        assert_eq!(run(&["frobnicate"]).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn generate_stats_farness_roundtrip() {
        let path = tmp("road.el");
        run(&["generate", "road", "500", "--seed", "3", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["stats", path.to_str().unwrap()]).unwrap();
        run(&["farness", path.to_str().unwrap(), "--method", "cumulative", "--rate", "0.5",
              "--top", "5"])
            .unwrap();
        run(&["farness", path.to_str().unwrap(), "--method", "exact", "--top", "3", "--json"])
            .unwrap();
    }

    #[test]
    fn betweenness_subcommand() {
        let path = tmp("betw.el");
        run(&["generate", "social", "300", "--seed", "4", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["betweenness", path.to_str().unwrap(), "--top", "5"]).unwrap();
        run(&["betweenness", path.to_str().unwrap(), "--exact", "--top", "3"]).unwrap();
        assert!(run(&["betweenness"]).is_err());
    }

    #[test]
    fn topk_subcommand() {
        let path = tmp("comm.el");
        run(&["generate", "community", "400", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["topk", path.to_str().unwrap(), "5"]).unwrap();
        run(&["topk", path.to_str().unwrap(), "3", "--rate", "0.5", "--json"]).unwrap();
        assert!(run(&["topk", path.to_str().unwrap()]).is_err()); // missing k
        assert!(run(&["topk", path.to_str().unwrap(), "x"]).is_err());
    }

    #[test]
    fn topk_prune_flag_validates_and_both_modes_run() {
        let path = tmp("topkprune.el");
        run(&["generate", "community", "400", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        run(&["topk", path.to_str().unwrap(), "4", "--topk-prune", "on"]).unwrap();
        run(&["topk", path.to_str().unwrap(), "4", "--topk-prune", "off", "--reorder"])
            .unwrap();
        assert_eq!(
            run(&["topk", path.to_str().unwrap(), "4", "--topk-prune", "maybe"])
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn topk_goes_through_one_prepared_artifact() {
        // Regression for the amortization bypass: `topk` used to call
        // `top_k_closeness_in` directly, rebuilding the reduction and BCT
        // outside the engine's prepare span. Routed through
        // `PreparedGraph`, one invocation shows exactly one reduce and one
        // prepare phase, a separate estimate span, and the verify scan's
        // own span with its planned-sources figure.
        let path = tmp("topkamort.el");
        run(&["generate", "social", "400", "--seed", "6", "--out", path.to_str().unwrap()])
            .unwrap();
        let out = tmp("topkamort.json");
        run(&["topk", path.to_str().unwrap(), "5", "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let reduce: Vec<_> = report.phases.iter().filter(|p| p.name == "reduce").collect();
        assert_eq!(reduce.len(), 1, "one aggregated reduce phase");
        assert_eq!(reduce[0].count, 1, "the reduction ran exactly once");
        let prepare = report.phases.iter().find(|p| p.name == "prepare").unwrap();
        assert_eq!(prepare.count, 1, "one prepare stage");
        let estimate = report.phases.iter().find(|p| p.name == "estimate").unwrap();
        assert_eq!(estimate.count, 1, "one estimate span, separate from prepare");
        assert!(report.phases.iter().any(|p| p.name == "topk.verify"), "verify span");
        assert!(report.counters["bfs_sources_planned"] > 0, "planned figure published");
    }

    #[test]
    fn prepare_then_artifact_queries_roundtrip() {
        let path = tmp("prep.el");
        run(&["generate", "social", "300", "--seed", "11", "--out", path.to_str().unwrap()])
            .unwrap();
        let art = tmp("prep.brics");
        run(&["prepare", path.to_str().unwrap(), art.to_str().unwrap(), "--reorder"]).unwrap();
        let out = tmp("prepload.json");
        run(&["farness", "--artifact", art.to_str().unwrap(), "--rate", "0.4", "--seed", "3",
              "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        // The warm path loads instead of re-preparing: an `artifact.load`
        // span, no `prepare` and no `reduce`, and the provenance block
        // names the graph the artifact was prepared from.
        assert!(report.phases.iter().any(|p| p.name == "artifact.load"));
        assert!(
            !report.phases.iter().any(|p| p.name == "reduce" || p.name == "prepare"),
            "the artifact path must not re-run the prepare stage"
        );
        let prov = report.artifact.as_ref().expect("provenance stamped");
        assert_eq!(prov.version, 1);
        assert_eq!(prov.source, path.to_str().unwrap());
        assert_eq!(prov.checksum.len(), 16, "{}", prov.checksum);
        assert!(
            report.counters["artifact_bytes_mapped"] + report.counters["artifact_bytes_copied"]
                > 0,
            "CSR sections served from the artifact"
        );
        // The same artifact serves compare and topk (k shifts left).
        run(&["compare", "--artifact", art.to_str().unwrap(), "--rates", "0.3",
              "--methods", "random,cumulative"])
            .unwrap();
        run(&["topk", "--artifact", art.to_str().unwrap(), "5"]).unwrap();
        // And the degrade ladder runs against the loaded artifact too.
        run(&["farness", "--artifact", art.to_str().unwrap(), "--rate", "0.3", "--degrade"])
            .unwrap();
    }

    #[test]
    fn prepare_stamps_written_artifact_into_the_report() {
        let path = tmp("prepmet.el");
        run(&["generate", "road", "200", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        let art = tmp("prepmet.brics");
        let out = tmp("prepmet.json");
        run(&["prepare", path.to_str().unwrap(), art.to_str().unwrap(),
              "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(report.phases.iter().any(|p| p.name == "prepare"));
        assert!(report.phases.iter().any(|p| p.name == "prepare.save"));
        assert!(report.counters["artifact_bytes_written"] > 0);
        assert_eq!(report.artifact.as_ref().unwrap().source, path.to_str().unwrap());
    }

    #[test]
    fn artifact_flag_validation_and_typed_errors() {
        let path = tmp("artval.el");
        run(&["generate", "road", "200", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        let art = tmp("artval.brics");
        run(&["prepare", path.to_str().unwrap(), art.to_str().unwrap()]).unwrap();
        // Naming both a graph and an artifact is ambiguous — usage error.
        assert_eq!(
            run(&["farness", path.to_str().unwrap(), "--artifact", art.to_str().unwrap()])
                .unwrap_err()
                .exit_code(),
            2
        );
        assert_eq!(
            run(&["topk", path.to_str().unwrap(), "3", "--artifact", art.to_str().unwrap()])
                .unwrap_err()
                .exit_code(),
            2
        );
        // A bare --artifact has no path.
        assert_eq!(run(&["farness", "--artifact"]).unwrap_err().exit_code(), 2);
        // A missing file is an input error, not a panic.
        assert_eq!(
            run(&["farness", "--artifact", tmp("absent.brics").to_str().unwrap()])
                .unwrap_err()
                .exit_code(),
            3
        );
        // A flipped payload byte fails the checksum verification: exit 3.
        let mut bytes = std::fs::read(&art).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let bad = tmp("artval-corrupt.brics");
        std::fs::write(&bad, &bytes).unwrap();
        assert_eq!(
            run(&["farness", "--artifact", bad.to_str().unwrap()]).unwrap_err().exit_code(),
            3
        );
        // A truncated container is typed the same way, from any command.
        let trunc = tmp("artval-trunc.brics");
        std::fs::write(&trunc, &bytes[..bytes.len() / 3]).unwrap();
        assert_eq!(
            run(&["topk", "--artifact", trunc.to_str().unwrap(), "3"])
                .unwrap_err()
                .exit_code(),
            3
        );
        assert_eq!(
            run(&["compare", "--artifact", trunc.to_str().unwrap(), "--rates", "0.3"])
                .unwrap_err()
                .exit_code(),
            3
        );
        // Prepare's own usage errors.
        assert_eq!(run(&["prepare", path.to_str().unwrap()]).unwrap_err().exit_code(), 2);
        assert_eq!(
            run(&["prepare", path.to_str().unwrap(), art.to_str().unwrap(),
                  "--method", "magic"])
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn mtx_output_supported() {
        let path = tmp("web.mtx");
        run(&["generate", "web", "300", "--out", path.to_str().unwrap()]).unwrap();
        run(&["stats", path.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn rejects_bad_method_and_class() {
        let path = tmp("sock.el");
        run(&["generate", "social", "200", "--out", path.to_str().unwrap()]).unwrap();
        assert_eq!(
            run(&["farness", path.to_str().unwrap(), "--method", "magic"])
                .unwrap_err()
                .exit_code(),
            2
        );
        assert_eq!(run(&["generate", "metro", "100"]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["stats"]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["stats", "/nonexistent/file"]).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn timeout_yields_exit_4_after_printing_partial() {
        let path = tmp("tmo.el");
        run(&["generate", "web", "400", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        // An already-expired deadline: every source is skipped, the printed
        // estimate is the trivial (but sound) zero-coverage partial.
        let err = run(&["farness", path.to_str().unwrap(), "--timeout", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Exact computation refuses under an expired deadline.
        let err = run(&["farness", path.to_str().unwrap(), "--method", "exact", "--timeout", "0"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Top-k refuses too — it cannot certify an exact ranking.
        let err = run(&["topk", path.to_str().unwrap(), "3", "--timeout", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Betweenness prints the partial pivot estimate and exits 4.
        let err =
            run(&["betweenness", path.to_str().unwrap(), "--timeout", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // A generous budget completes normally.
        run(&["farness", path.to_str().unwrap(), "--timeout", "600"]).unwrap();
    }

    #[test]
    fn kernel_and_reorder_flags() {
        let path = tmp("kern.el");
        run(&["generate", "social", "300", "--seed", "5", "--out", path.to_str().unwrap()])
            .unwrap();
        for kernel in ["auto", "topdown", "hybrid", "msbfs"] {
            run(&["farness", path.to_str().unwrap(), "--method", "random", "--rate", "0.3",
                  "--kernel", kernel, "--top", "5"])
                .unwrap();
        }
        run(&["farness", path.to_str().unwrap(), "--method", "exact", "--kernel", "hybrid",
              "--reorder", "--top", "3", "--json"])
            .unwrap();
        run(&["farness", path.to_str().unwrap(), "--reorder", "--rate", "0.4"]).unwrap();
        run(&["topk", path.to_str().unwrap(), "4", "--kernel", "hybrid"]).unwrap();
        assert_eq!(
            run(&["farness", path.to_str().unwrap(), "--kernel", "quantum"])
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn metrics_report_written_with_stable_schema() {
        let path = tmp("met.el");
        run(&["generate", "web", "400", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("met.json");
        run(&["farness", path.to_str().unwrap(), "--method", "cumulative", "--rate", "0.4",
              "--metrics", out.to_str().unwrap(), "--metrics-summary"])
            .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let report: brics::RunReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report.schema, brics::RunReport::SCHEMA);
        // All counter keys are always present; the run recorded real work.
        assert!(report.counters["bfs_sources"] > 0);
        assert!(report.counters["bct_blocks"] > 0);
        assert!(report.phases.iter().any(|p| p.name == "cumulative.phase_b"));
        assert!(report.derived.elapsed_seconds > 0.0);
        // v2: latency histograms ride along — one per-source BFS
        // observation per completed source, one query observation, and
        // quantiles in order.
        let bfs = report.histograms.iter().find(|h| h.metric == "source_bfs_ns").unwrap();
        assert_eq!(bfs.unit, "ns");
        assert!(bfs.count > 0, "no per-source BFS observations");
        assert!(bfs.p50 > 0 && bfs.p50 <= bfs.p90 && bfs.p90 <= bfs.p99 && bfs.p99 <= bfs.max);
        let query = report.histograms.iter().find(|h| h.metric == "query_ns").unwrap();
        assert_eq!(query.count, 1, "one estimate ran");
        // v2: MTEPS is rated against estimate time; the whole-run rate
        // (v1's definition) is reported separately and can only be lower.
        assert!(report.derived.mteps > 0.0);
        assert!(report.derived.whole_run_mteps > 0.0);
        assert!(report.derived.whole_run_mteps <= report.derived.mteps * 1.0001);
    }

    /// Shape of one Chrome trace-event object as written by `--trace`.
    #[derive(serde::Deserialize)]
    struct TraceRow {
        name: String,
        cat: String,
        ph: String,
        pid: u64,
        tid: u64,
        ts: f64,
        dur: f64,
    }

    #[test]
    fn trace_writes_nested_chrome_trace_events() {
        let path = tmp("trace.el");
        run(&["generate", "web", "400", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("trace.json");
        run(&["farness", path.to_str().unwrap(), "--rate", "0.4",
              "--trace", out.to_str().unwrap()])
            .unwrap();
        let rows: Vec<TraceRow> =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(!rows.is_empty(), "trace must contain events");
        for r in &rows {
            assert_eq!(r.ph, "X", "{}: complete events only", r.name);
            assert_eq!(r.cat, "brics");
            assert_eq!(r.pid, 1);
            assert!(r.ts >= 0.0 && r.dur >= 0.0, "{}: ts {} dur {}", r.name, r.ts, r.dur);
            let _ = r.tid;
        }
        let find = |name: &str| {
            rows.iter().find(|r| r.name == name).unwrap_or_else(|| panic!("no '{name}' span"))
        };
        let (prepare, reduce, estimate) = (find("prepare"), find("reduce"), find("estimate"));
        // The hierarchy the viewer renders: reduce inside prepare, the
        // estimate strictly after the prepare stage, and this query's
        // per-source BFS spans inside the estimate.
        assert!(reduce.ts >= prepare.ts, "reduce starts inside prepare");
        assert!(reduce.ts + reduce.dur <= prepare.ts + prepare.dur + 1e-3, "reduce ends inside prepare");
        assert!(estimate.ts + 1e-3 >= prepare.ts + prepare.dur, "estimate follows prepare");
        let inside_estimate = rows
            .iter()
            .filter(|r| r.name == "bfs.source")
            .filter(|r| {
                r.ts + 1e-3 >= estimate.ts && r.ts + r.dur <= estimate.ts + estimate.dur + 1e-3
            })
            .count();
        assert!(inside_estimate > 0, "per-source BFS spans nest inside the estimate");
    }

    #[test]
    fn trace_flag_requires_a_path() {
        let path = tmp("tracebare.el");
        run(&["generate", "road", "100", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--trace"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn progress_heartbeat_smokes_and_validates() {
        let path = tmp("prog.el");
        run(&["generate", "road", "300", "--seed", "2", "--out", path.to_str().unwrap()])
            .unwrap();
        // A fast sampling interval plus a custom stall window exercises the
        // whole meter lifecycle inside a normal run; at least the final
        // heartbeat lands on stderr (asserted textually in CI).
        run(&["farness", path.to_str().unwrap(), "--rate", "0.3",
              "--progress", "0.01", "--stall-after", "30"])
            .unwrap();
        // A timed-out run keeps the heartbeat (exit 4 after the final line).
        let err = run(&["farness", path.to_str().unwrap(), "--timeout", "0", "--progress"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Bad intervals are usage errors.
        for bad in [["--progress", "zero"], ["--progress", "0"], ["--stall-after", "-1"]] {
            let mut args = vec!["farness", path.to_str().unwrap(), "--progress", "0.5"];
            args.extend(bad);
            let err = run(&args).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
    }

    #[test]
    fn metrics_cover_every_subcommand() {
        let path = tmp("metall.el");
        let out = tmp("metall.json");
        let o = out.to_str().unwrap();
        run(&["generate", "road", "300", "--seed", "2", "--out", path.to_str().unwrap(),
              "--metrics", o])
            .unwrap();
        let g: &str = path.to_str().unwrap();
        for args in [
            vec!["stats", g, "--metrics", o],
            vec!["farness", g, "--method", "random", "--rate", "0.3", "--metrics", o],
            vec!["farness", g, "--method", "exact", "--top", "3", "--metrics", o],
            vec!["topk", g, "3", "--metrics", o],
            vec!["betweenness", g, "--top", "3", "--metrics", o],
        ] {
            run(&args).unwrap_or_else(|e| panic!("{args:?}: {e}"));
            let report: brics::RunReport =
                serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
            assert_eq!(report.schema, brics::RunReport::SCHEMA, "{args:?}");
        }
    }

    #[test]
    fn metrics_reconcile_with_run_shape() {
        // Honesty checks the acceptance criteria call out: the per-source
        // BFS count matches the estimate's sources, and reduction removal
        // counters partition the removed vertices.
        let path = tmp("methonest.el");
        run(&["generate", "web", "500", "--seed", "3", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("methonest.json");
        run(&["farness", path.to_str().unwrap(), "--method", "icr", "--rate", "0.5",
              "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let c = &report.counters;
        let removed = c["reduce_identical_removed"]
            + c["reduce_identical_chain_removed"]
            + c["reduce_chain_removed"]
            + c["reduce_contracted_removed"]
            + c["reduce_redundant_removed"];
        // The removal counters plus the survivors partition the vertex set.
        let n = brics_graph::io::read_edge_list(path.to_str().unwrap()).unwrap().num_nodes();
        assert_eq!(c["reduce_surviving_nodes"] + removed, n as u64);
        assert!(c["bfs_sources"] > 0);
        assert_eq!(c["bfs_sources_skipped"], 0);
    }

    #[test]
    fn interrupted_run_still_reports_metrics() {
        let path = tmp("mettmo.el");
        run(&["generate", "web", "400", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("mettmo.json");
        let err = run(&["farness", path.to_str().unwrap(), "--timeout", "0",
                        "--metrics", out.to_str().unwrap()])
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(report.counters["deadline_hits"] > 0, "deadline not recorded");
        assert!(report.events.iter().any(|e| e.kind == "deadline"));
    }

    #[test]
    fn metrics_dash_and_bare_flag_print_to_stdout() {
        let path = tmp("metdash.el");
        run(&["generate", "road", "200", "--out", path.to_str().unwrap()]).unwrap();
        // `--metrics -` and a bare `--metrics` (empty value) both mean stdout;
        // here we just check neither errors.
        run(&["stats", path.to_str().unwrap(), "--metrics", "-"]).unwrap();
        run(&["stats", path.to_str().unwrap(), "--metrics"]).unwrap();
    }

    #[test]
    fn compare_amortizes_one_reduction_across_methods_and_rates() {
        let path = tmp("cmp.el");
        run(&["generate", "social", "400", "--seed", "6", "--out", path.to_str().unwrap()])
            .unwrap();
        let out = tmp("cmp.json");
        run(&["compare", path.to_str().unwrap(), "--methods", "random,reduced,cumulative",
              "--rates", "0.2,0.5", "--exact", "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        // The acceptance criterion of the engine split: one prepared
        // artifact serves every method × rate, so the reduction ran once.
        let reduce: Vec<_> = report.phases.iter().filter(|p| p.name == "reduce").collect();
        assert_eq!(reduce.len(), 1, "one aggregated reduce phase");
        assert_eq!(reduce[0].count, 1, "the reduction must run exactly once");
        let prepare = report.phases.iter().find(|p| p.name == "prepare").unwrap();
        assert_eq!(prepare.count, 1, "one prepare stage");
        // 3 methods × 2 rates + the --exact baseline = 7 estimate spans.
        let estimate = report.phases.iter().find(|p| p.name == "estimate").unwrap();
        assert_eq!(estimate.count, 7, "every query is its own estimate span");
    }

    #[test]
    fn compare_json_and_validation() {
        let path = tmp("cmpjson.el");
        run(&["generate", "web", "300", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        run(&["compare", path.to_str().unwrap(), "--rates", "0.3", "--json"]).unwrap();
        run(&["compare", path.to_str().unwrap(), "--reorder", "--rates", "0.4"]).unwrap();
        assert_eq!(
            run(&["compare", path.to_str().unwrap(), "--methods", "magic"])
                .unwrap_err()
                .exit_code(),
            2
        );
        assert_eq!(
            run(&["compare", path.to_str().unwrap(), "--rates", "1.5"])
                .unwrap_err()
                .exit_code(),
            2
        );
        assert_eq!(run(&["compare"]).unwrap_err().exit_code(), 2);
        // An expired deadline interrupts the prepare stage: exit 4.
        assert_eq!(
            run(&["compare", path.to_str().unwrap(), "--timeout", "0"])
                .unwrap_err()
                .exit_code(),
            4
        );
    }

    #[test]
    fn memory_budget_yields_exit_3() {
        let path = tmp("mem.el");
        run(&["generate", "road", "300", "--seed", "2", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--max-mem-mb", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        run(&["farness", path.to_str().unwrap(), "--max-mem-mb", "4096"]).unwrap();
    }

    #[test]
    fn bad_timeout_is_usage_error() {
        let path = tmp("badtmo.el");
        run(&["generate", "road", "100", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--timeout", "-1"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&["farness", path.to_str().unwrap(), "--timeout", "zebra"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn bad_fault_and_degrade_specs_are_usage_errors() {
        let path = tmp("badfault.el");
        run(&["generate", "road", "100", "--out", path.to_str().unwrap()]).unwrap();
        for spec in ["nowhere=panic", "bfs.source=vanish", "bfs.source=panic@daily", ""] {
            let err = run(&["farness", path.to_str().unwrap(), "--fault", spec]).unwrap_err();
            assert_eq!(err.exit_code(), 2, "--fault {spec:?}: {err}");
        }
        for rate in ["0", "1.5", "-0.1", "zebra"] {
            let err = run(&["farness", path.to_str().unwrap(), "--degrade", rate]).unwrap_err();
            assert_eq!(err.exit_code(), 2, "--degrade {rate:?}: {err}");
        }
    }

    #[test]
    fn injected_io_error_is_an_input_error() {
        let path = tmp("iofault.el");
        run(&["generate", "road", "150", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--fault", "io.read=io-error"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn quarantined_panic_recovers_to_exit_0_under_degrade() {
        // A single injected source panic is retried and fully recovered: the
        // run answers at the requested rung and exits 0.
        let path = tmp("degrec.el");
        run(&["generate", "web", "300", "--seed", "7", "--out", path.to_str().unwrap()]).unwrap();
        run(&["farness", path.to_str().unwrap(), "--method", "random", "--rate", "0.3",
              "--fault", "bfs.source=panic@nth:1", "--degrade"])
            .unwrap();
    }

    #[test]
    fn fault_without_degrade_surfaces_as_internal_error() {
        let path = tmp("nodeg.el");
        run(&["generate", "web", "300", "--seed", "7", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--method", "random", "--rate", "0.3",
                        "--fault", "bfs.source=panic@every:1"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
    }

    #[test]
    fn memory_denial_degrades_to_exit_6_and_reports_the_ladder() {
        // An injected admission denial trips rung 1; the reduced-rate rung
        // answers, the run exits 6, and the report names the whole path.
        let path = tmp("degmem.el");
        run(&["generate", "social", "300", "--seed", "9", "--out", path.to_str().unwrap()])
            .unwrap();
        let out = tmp("degmem.json");
        let err = run(&["farness", path.to_str().unwrap(), "--method", "random", "--rate", "0.5",
                        "--fault", "alloc.admit=mem-deny", "--degrade",
                        "--metrics", out.to_str().unwrap()])
            .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(report.schema, brics::RunReport::SCHEMA);
        let site = report.faults_injected.iter().find(|s| s.site == "alloc.admit").unwrap();
        assert!(site.hits >= 1 && site.fired >= 1, "{site:?}");
        assert_eq!(report.degradation_path, vec!["random", "sampling@0.1"]);
    }

    #[test]
    fn expired_deadline_under_degrade_keeps_exit_4() {
        // Interruption outranks degradation: the ladder bottoms out on the
        // accumulated partials but the exit code stays 4 (timeout/partial).
        let path = tmp("degtmo.el");
        run(&["generate", "web", "300", "--seed", "2", "--out", path.to_str().unwrap()]).unwrap();
        let err = run(&["farness", path.to_str().unwrap(), "--method", "exact",
                        "--timeout", "0", "--degrade"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
    }

    #[test]
    fn compare_under_faults_degrades_whole_table_to_exit_6() {
        let path = tmp("degcmp.el");
        run(&["generate", "web", "300", "--seed", "4", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("degcmp.json");
        let err = run(&["compare", path.to_str().unwrap(), "--methods", "random,cumulative",
                        "--rates", "0.3", "--fault", "bct.build=panic@every:1", "--degrade",
                        "--metrics", out.to_str().unwrap()])
            .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(report.degradation_path.iter().any(|r| r == "bct:skipped"), "{report:?}");
        assert!(report.retries >= 1, "the bct build retried once before skipping");
    }

    #[test]
    fn fault_free_report_keeps_fault_fields_empty() {
        let path = tmp("degclean.el");
        run(&["generate", "road", "200", "--seed", "1", "--out", path.to_str().unwrap()]).unwrap();
        let out = tmp("degclean.json");
        run(&["farness", path.to_str().unwrap(), "--method", "random", "--rate", "0.4",
              "--metrics", out.to_str().unwrap()])
            .unwrap();
        let report: brics::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(report.faults_injected.is_empty());
        assert_eq!(report.retries, 0);
        assert!(report.degradation_path.is_empty());
    }
}
