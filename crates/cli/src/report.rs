//! `brics report` — validate and diff machine-readable run reports.
//!
//! CI used to police `--metrics` output and the bench JSON documents with
//! ad-hoc `jq` one-liners: schema strings compared by hand, quantile
//! ordering re-derived per workflow, checksum equality spelled out twice.
//! This module replaces those with two typed subcommands:
//!
//! * `brics report check <report.json>` — structural validation of a
//!   `brics.run_report/v3` (or v2) document plus optional dotted-path
//!   assertions (`--assert counters.bfs_sources>=1,memory.plan_accuracy<=1`).
//! * `brics report diff <old.json> <new.json>` — leaf-by-leaf comparison of
//!   two JSON documents with per-path drift tolerances
//!   (`--fail-on derived.mteps:20,counters.edges_scanned:0`), the
//!   regression gate the bench baselines run under.
//!
//! Dotted paths walk objects by key (keys containing literal dots resolve
//! via longest-prefix matching), arrays by index, by `length`, or by the
//! value of a name-like field (`name`, `metric`, `kernel`, `graph`, `site`,
//! `dataset`) — so `histograms.source_bfs_ns.p50` finds the histogram row
//! whose `metric` is `source_bfs_ns`.
//!
//! Exit codes follow the CLI's contract: 2 for a malformed invocation or
//! spec, 3 for an unreadable document, a failed validation, a failed
//! assertion, or drift past a tolerance.

use crate::args::Parsed;
use crate::error::CliError;
use serde_json::Value;

/// Entry point for `brics report <check|diff> ...`.
pub fn report(p: &Parsed) -> Result<(), CliError> {
    match p.positional.get(1).map(String::as_str) {
        Some("check") => check(p),
        Some("diff") => diff(p),
        Some(other) => Err(CliError::Usage(format!(
            "unknown report subcommand '{other}' (expected check or diff)"
        ))),
        None => Err(CliError::Usage("usage: brics report <check|diff> ...".into())),
    }
}

fn load(path: &str) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CliError::Input(format!("{path}: {e}")))
}

/// A resolved leaf: the only shapes assertions and diffs compare.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    /// An aggregate (object/array) — named so error messages can say what
    /// the path actually hit.
    Aggregate(&'static str),
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Num(x) => write!(f, "{x}"),
            Leaf::Str(s) => write!(f, "\"{s}\""),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Null => write!(f, "null"),
            Leaf::Aggregate(k) => write!(f, "<{k}>"),
        }
    }
}

fn leaf_of(v: &Value) -> Leaf {
    match v {
        Value::Null => Leaf::Null,
        Value::Bool(b) => Leaf::Bool(*b),
        Value::Str(s) => Leaf::Str(s.clone()),
        Value::Array(_) => Leaf::Aggregate("array"),
        Value::Object(_) => Leaf::Aggregate("object"),
        other => other.as_f64().map_or(Leaf::Aggregate("number"), Leaf::Num),
    }
}

/// Array elements addressable by name: the first of these fields whose
/// string value equals the path segment selects the element.
const NAME_KEYS: [&str; 6] = ["name", "metric", "kernel", "graph", "site", "dataset"];

fn walk_segs(v: &Value, segs: &[&str]) -> Option<Leaf> {
    let Some(&seg) = segs.first() else { return Some(leaf_of(v)) };
    match v {
        Value::Object(pairs) => {
            // Longest-prefix join first, so keys containing literal dots
            // (dataset names like `road.el`) still resolve.
            for take in (1..=segs.len()).rev() {
                let key = segs[..take].join(".");
                if let Some((_, child)) = pairs.iter().find(|(k, _)| *k == key) {
                    if let Some(hit) = walk_segs(child, &segs[take..]) {
                        return Some(hit);
                    }
                }
            }
            None
        }
        Value::Array(items) => {
            if seg == "length" && segs.len() == 1 {
                return Some(Leaf::Num(items.len() as f64));
            }
            if seg == "last" {
                return items.last().and_then(|c| walk_segs(c, &segs[1..]));
            }
            if let Ok(i) = seg.parse::<usize>() {
                return items.get(i).and_then(|c| walk_segs(c, &segs[1..]));
            }
            // Name values may themselves contain dots (fault sites like
            // `bfs.source`), so try longest-prefix joins here too.
            for take in (1..=segs.len()).rev() {
                let key = segs[..take].join(".");
                let hit = items
                    .iter()
                    .filter(|item| {
                        item.as_array().is_none()
                            && NAME_KEYS.iter().any(|k| {
                                item.get(k).and_then(Value::as_str) == Some(key.as_str())
                            })
                    })
                    .find_map(|item| walk_segs(item, &segs[take..]));
                if hit.is_some() {
                    return hit;
                }
            }
            None
        }
        _ => None,
    }
}

fn lookup(v: &Value, path: &str) -> Option<Leaf> {
    let segs: Vec<&str> = path.split('.').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return None;
    }
    walk_segs(v, &segs)
}

// ---------------------------------------------------------------- check --

/// One `--assert` comparison: `PATH OP VALUE`.
struct Assertion {
    path: String,
    op: &'static str,
    value: String,
}

/// Operators, multi-character first so `<=` is never read as `<` + `=`.
const OPS: [&str; 6] = ["<=", ">=", "==", "!=", "<", ">"];

fn parse_assertion(spec: &str) -> Result<Assertion, CliError> {
    for op in OPS {
        if let Some(idx) = spec.find(op) {
            let (path, rest) = spec.split_at(idx);
            let value = &rest[op.len()..];
            if path.is_empty() || value.is_empty() {
                return Err(CliError::Usage(format!(
                    "--assert '{spec}': expected PATH{op}VALUE"
                )));
            }
            return Ok(Assertion {
                path: path.trim().to_string(),
                op,
                value: value.trim().to_string(),
            });
        }
    }
    Err(CliError::Usage(format!(
        "--assert '{spec}': no comparison operator (expected one of {})",
        OPS.join(" ")
    )))
}

fn check_assertion(doc: &Value, a: &Assertion) -> Result<(), String> {
    let leaf = lookup(doc, &a.path)
        .ok_or_else(|| format!("{}: path not found in the document", a.path))?;
    let ok = if let Ok(want) = a.value.parse::<f64>() {
        let Leaf::Num(have) = leaf else {
            return Err(format!("{}: expected a number, found {leaf}", a.path));
        };
        match a.op {
            "<=" => have <= want,
            ">=" => have >= want,
            "==" => have == want,
            "!=" => have != want,
            "<" => have < want,
            ">" => have > want,
            _ => unreachable!(),
        }
    } else {
        // Non-numeric comparand: string/bool equality only.
        let have = leaf.to_string();
        let want_quoted = format!("\"{}\"", a.value);
        let equal = have == a.value || have == want_quoted;
        match a.op {
            "==" => equal,
            "!=" => !equal,
            op => {
                return Err(format!(
                    "{}: operator {op} needs a numeric comparand, got '{}'",
                    a.path, a.value
                ))
            }
        }
    };
    if ok {
        Ok(())
    } else {
        Err(format!("{} {} {}: actual value is {}", a.path, a.op, a.value, {
            lookup(doc, &a.path).expect("looked up above")
        }))
    }
}

/// The report schemas `check` understands. `--schema` takes the short
/// form; a full schema string (containing `/`) is accepted verbatim, and
/// `none` skips structural validation so `--assert` can gate arbitrary
/// JSON documents (bench output, trace-event arrays).
fn schema_string(arg: &str) -> Result<Option<String>, CliError> {
    match arg {
        "v3" => Ok(Some("brics.run_report/v3".to_string())),
        "v2" => Ok(Some("brics.run_report/v2".to_string())),
        "none" => Ok(None),
        s if s.contains('/') => Ok(Some(s.to_string())),
        other => Err(CliError::Usage(format!(
            "--schema {other}: expected v2, v3, none, or a full schema string"
        ))),
    }
}

/// Structural validation of a run report document. Everything here used to
/// be a `jq` expression in CI; failures are input errors (exit 3) so the
/// workflows can branch on the code alone.
fn validate_run_report(path: &str, doc: &Value, want_schema: &str) -> Result<(), CliError> {
    let fail = |msg: String| Err(CliError::Input(format!("{path}: {msg}")));
    let Some(schema) = doc.get("schema").and_then(Value::as_str) else {
        return fail("no `schema` string".into());
    };
    if schema != want_schema {
        return fail(format!("schema is '{schema}', expected '{want_schema}'"));
    }
    let Some(Value::Object(counters)) = doc.get("counters") else {
        return fail("no `counters` object".into());
    };
    for (name, v) in counters {
        if v.as_u64().is_none() {
            return fail(format!("counter '{name}' is not a non-negative integer"));
        }
    }
    if let Some(Value::Array(phases)) = doc.get("phases") {
        for ph in phases {
            if ph.get("name").and_then(Value::as_str).is_none() {
                return fail("a phase entry has no `name`".into());
            }
        }
    } else {
        return fail("no `phases` array".into());
    }
    if let Some(Value::Array(rows)) = doc.get("histograms") {
        for row in rows {
            let metric = row.get("metric").and_then(Value::as_str).unwrap_or("?");
            let q = |k: &str| row.get(k).and_then(Value::as_u64);
            let (Some(p50), Some(p90), Some(p99), Some(max)) =
                (q("p50"), q("p90"), q("p99"), q("max"))
            else {
                return fail(format!("histogram '{metric}' is missing a quantile"));
            };
            if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
                return fail(format!(
                    "histogram '{metric}' quantiles are out of order: \
                     p50 {p50} p90 {p90} p99 {p99} max {max}"
                ));
            }
        }
    }
    if want_schema.ends_with("/v3") {
        let Some(mem) = doc.get("memory") else {
            return fail("v3 report has no `memory` block".into());
        };
        for field in
            ["planned_bytes", "observed_peak_bytes", "live_bytes", "process_peak_bytes", "allocations"]
        {
            if mem.get(field).and_then(Value::as_u64).is_none() {
                return fail(format!("memory block has no numeric `{field}`"));
            }
        }
        if mem.get("tracking").and_then(Value::as_bool).is_none() {
            return fail("memory block has no boolean `tracking`".into());
        }
    }
    Ok(())
}

fn check(p: &Parsed) -> Result<(), CliError> {
    let path = p
        .positional
        .get(2)
        .ok_or_else(|| CliError::Usage("usage: brics report check <report.json>".into()))?;
    let doc = load(path)?;
    let want_schema = schema_string(p.get("schema").filter(|s| !s.is_empty()).unwrap_or("v3"))?;
    if let Some(schema) = &want_schema {
        validate_run_report(path, &doc, schema)?;
    }
    let mut checked = 0usize;
    if let Some(specs) = p.get("assert").filter(|s| !s.is_empty()) {
        for spec in specs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let a = parse_assertion(spec)?;
            check_assertion(&doc, &a)
                .map_err(|msg| CliError::Input(format!("{path}: assertion failed: {msg}")))?;
            checked += 1;
        }
    }
    // `--absent` inverts resolution: each listed path must NOT exist
    // (e.g. an artifact-backed run must record no `prepare` phase).
    if let Some(specs) = p.get("absent").filter(|s| !s.is_empty()) {
        for spec in specs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(leaf) = lookup(&doc, spec) {
                return Err(CliError::Input(format!(
                    "{path}: path '{spec}' must be absent but resolves to {leaf}"
                )));
            }
            checked += 1;
        }
    }
    match &want_schema {
        Some(schema) => {
            eprintln!("ok: {path} is a valid {schema} report ({checked} assertions)")
        }
        None => eprintln!("ok: {path} ({checked} assertions, no schema validation)"),
    }
    Ok(())
}

// ----------------------------------------------------------------- diff --

/// One `--fail-on` tolerance: `PATH:PCT`.
struct Tolerance {
    path: String,
    pct: f64,
}

fn parse_tolerance(spec: &str) -> Result<Tolerance, CliError> {
    let Some((path, pct)) = spec.rsplit_once(':') else {
        return Err(CliError::Usage(format!("--fail-on '{spec}': expected PATH:PCT")));
    };
    let pct: f64 = pct
        .parse()
        .map_err(|e| CliError::Usage(format!("--fail-on '{spec}': bad percentage: {e}")))?;
    if path.is_empty() || !pct.is_finite() || pct < 0.0 {
        return Err(CliError::Usage(format!(
            "--fail-on '{spec}': PCT must be a finite non-negative percentage"
        )));
    }
    Ok(Tolerance { path: path.to_string(), pct })
}

/// Percentage drift between two numeric leaves; `None` when old is zero
/// and new is not (infinite drift).
fn drift_pct(old: f64, new: f64) -> Option<f64> {
    if old == new {
        Some(0.0)
    } else if old == 0.0 {
        None
    } else {
        Some(((new - old).abs() / old.abs()) * 100.0)
    }
}

/// Compares the leaf at `path` in both documents against a tolerance.
/// Returns a human line describing the comparison; `Err` lines failed.
fn diff_path(old: &Value, new: &Value, t: &Tolerance) -> Result<String, String> {
    let a = lookup(old, &t.path);
    let b = lookup(new, &t.path);
    let (a, b) = match (a, b) {
        (Some(a), Some(b)) => (a, b),
        (None, None) => return Err(format!("{}: path found in neither document", t.path)),
        (None, _) => return Err(format!("{}: path missing from the old document", t.path)),
        (_, None) => return Err(format!("{}: path missing from the new document", t.path)),
    };
    match (&a, &b) {
        (Leaf::Num(x), Leaf::Num(y)) => match drift_pct(*x, *y) {
            Some(d) if d <= t.pct => {
                Ok(format!("  ok {}: {x} -> {y} ({d:.2}% <= {:.2}%)", t.path, t.pct))
            }
            Some(d) => Err(format!(
                "{}: {x} -> {y} drifted {d:.2}% (tolerance {:.2}%)",
                t.path, t.pct
            )),
            None => Err(format!("{}: {x} -> {y} (from zero; any change fails)", t.path)),
        },
        // Non-numeric leaves must be identical regardless of tolerance.
        _ if a == b => Ok(format!("  ok {}: {a} (equal)", t.path)),
        _ => Err(format!("{}: {a} -> {b} (non-numeric leaves must be equal)", t.path)),
    }
}

/// Recursively collects `path -> numeric leaf` pairs for the untargeted
/// summary diff (no `--fail-on`): changed values are printed, nothing
/// fails. Arrays are keyed by name-like field when present, else index.
fn collect_numeric(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Object(pairs) => {
            for (k, child) in pairs {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                collect_numeric(&p, child, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let key = NAME_KEYS
                    .iter()
                    .find_map(|k| child.get(k).and_then(Value::as_str))
                    .map_or_else(|| i.to_string(), str::to_string);
                collect_numeric(&format!("{prefix}.{key}"), child, out);
            }
        }
        other => {
            if let Some(x) = other.as_f64() {
                out.push((prefix.to_string(), x));
            }
        }
    }
}

fn diff(p: &Parsed) -> Result<(), CliError> {
    let old_path = p.positional.get(2).ok_or_else(|| {
        CliError::Usage("usage: brics report diff <old.json> <new.json>".into())
    })?;
    let new_path = p.positional.get(3).ok_or_else(|| {
        CliError::Usage("usage: brics report diff <old.json> <new.json>".into())
    })?;
    let old = load(old_path)?;
    let new = load(new_path)?;

    let mut failures: Vec<String> = Vec::new();
    if let Some(specs) = p.get("fail-on").filter(|s| !s.is_empty()) {
        for spec in specs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let t = parse_tolerance(spec)?;
            match diff_path(&old, &new, &t) {
                Ok(line) => eprintln!("{line}"),
                Err(msg) => failures.push(msg),
            }
        }
    } else {
        // Untargeted mode: summarize every numeric leaf that moved.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        collect_numeric("", &old, &mut a);
        collect_numeric("", &new, &mut b);
        let index: std::collections::BTreeMap<&str, f64> =
            a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let mut moved = 0usize;
        for (k, y) in &b {
            if let Some(&x) = index.get(k.as_str()) {
                if x != *y {
                    let d = drift_pct(x, *y).map_or("inf".to_string(), |d| format!("{d:.2}"));
                    println!("{k}: {x} -> {y} ({d}%)");
                    moved += 1;
                }
            }
        }
        eprintln!("note: {moved} numeric leaves changed ({old_path} -> {new_path})");
    }
    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("fail {f}");
        }
        Err(CliError::Input(format!(
            "{} of the --fail-on comparisons regressed ({old_path} -> {new_path})",
            failures.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("brics-report-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    fn run(args: &[&str]) -> Result<(), CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        report(&parse(&argv).unwrap())
    }

    const V3_DOC: &str = r#"{
        "schema": "brics.run_report/v3",
        "counters": {"bfs_sources": 12, "edges_scanned": 300},
        "phases": [{"name": "estimate", "count": 1}],
        "histograms": [
            {"metric": "source_bfs_ns", "p50": 10, "p90": 20, "p99": 30, "max": 40}
        ],
        "memory": {
            "tracking": true, "planned_bytes": 1000, "observed_peak_bytes": 800,
            "live_bytes": 100, "process_peak_bytes": 5000, "allocations": 42,
            "plan_accuracy": 0.8
        }
    }"#;

    #[test]
    fn dotted_path_walker_handles_names_indices_and_length() {
        let doc: Value = serde_json::from_str(V3_DOC).unwrap();
        assert_eq!(lookup(&doc, "counters.bfs_sources"), Some(Leaf::Num(12.0)));
        assert_eq!(lookup(&doc, "histograms.source_bfs_ns.p90"), Some(Leaf::Num(20.0)));
        assert_eq!(lookup(&doc, "histograms.0.p50"), Some(Leaf::Num(10.0)));
        assert_eq!(lookup(&doc, "phases.length"), Some(Leaf::Num(1.0)));
        assert_eq!(lookup(&doc, "memory.tracking"), Some(Leaf::Bool(true)));
        assert_eq!(
            lookup(&doc, "schema"),
            Some(Leaf::Str("brics.run_report/v3".to_string()))
        );
        assert_eq!(lookup(&doc, "counters.no_such"), None);
        // Keys containing literal dots resolve by longest-prefix join.
        let nested: Value =
            serde_json::from_str(r#"{"runs": {"road.el": {"seconds": 2}}}"#).unwrap();
        assert_eq!(lookup(&nested, "runs.road.el.seconds"), Some(Leaf::Num(2.0)));
        // Array elements by dotted name value, plus `last`.
        let audit: Value = serde_json::from_str(
            r#"{"faults": [{"site": "bfs.source", "fired": 1}],
                "ladder": ["random", "partial-lower-bounds"]}"#,
        )
        .unwrap();
        assert_eq!(lookup(&audit, "faults.bfs.source.fired"), Some(Leaf::Num(1.0)));
        assert_eq!(
            lookup(&audit, "ladder.last"),
            Some(Leaf::Str("partial-lower-bounds".to_string()))
        );
    }

    #[test]
    fn schema_none_asserts_arbitrary_json() {
        // Trace-event arrays and bench documents are not run reports;
        // `--schema none` still lets CI gate them with assertions.
        let p = tmp(
            "trace.json",
            r#"[{"name": "prepare", "ph": "X", "ts": 0, "dur": 9},
                {"name": "reduce", "ph": "X", "ts": 1, "dur": 2}]"#,
        );
        let f = p.to_str().unwrap();
        run(&["report", "check", f, "--schema", "none", "--assert",
              "length==2,prepare.ph==X,reduce.ts>=0,last.dur>=0"])
            .unwrap();
        let err = run(&["report", "check", f, "--schema", "none", "--assert", "length==3"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Without `none` the same document fails structural validation.
        assert_eq!(run(&["report", "check", f]).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn check_validates_and_asserts() {
        let p = tmp("ok.json", V3_DOC);
        let f = p.to_str().unwrap();
        run(&["report", "check", f]).unwrap();
        run(&["report", "check", f, "--assert",
              "counters.bfs_sources>=1,memory.plan_accuracy<=1.0,schema==brics.run_report/v3"])
            .unwrap();
        // `--absent` passes for missing paths, fails for present ones.
        run(&["report", "check", f, "--absent", "phases.reduce,counters.no_such"]).unwrap();
        let err =
            run(&["report", "check", f, "--absent", "phases.estimate"]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // A failed assertion is an input error (exit 3), not a usage error.
        let err = run(&["report", "check", f, "--assert", "counters.bfs_sources>=100"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // A malformed assertion is a usage error.
        let err = run(&["report", "check", f, "--assert", "counters.bfs_sources"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        // Missing paths fail loudly instead of vacuously passing.
        let err = run(&["report", "check", f, "--assert", "no.such.path==1"]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn check_rejects_structural_problems() {
        let bad_schema = V3_DOC.replace("brics.run_report/v3", "brics.run_report/v1");
        let p = tmp("badschema.json", &bad_schema);
        assert_eq!(run(&["report", "check", p.to_str().unwrap()]).unwrap_err().exit_code(), 3);
        let bad_quant = V3_DOC.replace("\"p90\": 20", "\"p90\": 35");
        let p = tmp("badquant.json", &bad_quant);
        assert_eq!(run(&["report", "check", p.to_str().unwrap()]).unwrap_err().exit_code(), 3);
        let no_memory = V3_DOC.replace("\"memory\"", "\"memory_gone\"");
        let p = tmp("nomem.json", &no_memory);
        assert_eq!(run(&["report", "check", p.to_str().unwrap()]).unwrap_err().exit_code(), 3);
        // The same document without a memory block is a fine v2 report.
        let v2 = no_memory.replace("brics.run_report/v3", "brics.run_report/v2");
        let p = tmp("v2.json", &v2);
        run(&["report", "check", p.to_str().unwrap(), "--schema", "v2"]).unwrap();
        assert_eq!(run(&["report", "check", p.to_str().unwrap()]).unwrap_err().exit_code(), 3);
        // Unreadable file: input error, not a panic.
        assert_eq!(run(&["report", "check", "/nonexistent.json"]).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn diff_gates_on_injected_regression() {
        let old = tmp("diff-old.json", V3_DOC);
        let newer = tmp("diff-new.json", &V3_DOC.replace("\"edges_scanned\": 300", "\"edges_scanned\": 390"));
        let (o, n) = (old.to_str().unwrap(), newer.to_str().unwrap());
        // 30% drift: passes a 50% gate, fails a 10% gate and an exact gate.
        run(&["report", "diff", o, n, "--fail-on", "counters.edges_scanned:50"]).unwrap();
        let err = run(&["report", "diff", o, n, "--fail-on", "counters.edges_scanned:10"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let err = run(&["report", "diff", o, n, "--fail-on", "counters.edges_scanned:0"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Untouched counters pass an exact gate; strings compare equal.
        run(&["report", "diff", o, n,
              "--fail-on", "counters.bfs_sources:0,schema:0"]).unwrap();
        // Missing paths and from-zero drifts fail.
        let err = run(&["report", "diff", o, n, "--fail-on", "no.such:0"]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Untargeted mode summarizes without failing.
        run(&["report", "diff", o, n]).unwrap();
        // Bad specs are usage errors.
        let err = run(&["report", "diff", o, n, "--fail-on", "counters.bfs_sources"])
            .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = run(&["report", "diff", o, n, "--fail-on", "x:-5"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn report_usage_errors() {
        assert_eq!(run(&["report"]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["report", "merge"]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["report", "check"]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["report", "diff", "a.json"]).unwrap_err().exit_code(), 2);
    }
}
