//! Minimal flag parsing (positional args + `--flag value` pairs).

use std::collections::BTreeMap;

/// Parsed command line: positionals in order plus `--key value` options
/// (`--key` with no value stores an empty string, acting as a boolean).
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    pub positional: Vec<String>,
    pub options: BTreeMap<String, String>,
}

/// Splits `argv` into positionals and options.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            if key.is_empty() {
                return Err("stray '--'".into());
            }
            let value = if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                i += 1;
                argv[i].clone()
            } else {
                String::new()
            };
            out.options.insert(key.to_string(), value);
        } else {
            out.positional.push(a.clone());
        }
        i += 1;
    }
    Ok(out)
}

impl Parsed {
    /// Typed option lookup with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|e| format!("--{key} {v}: {e}")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// String option lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn splits_positionals_and_flags() {
        let p = parse(&argv(&["farness", "g.txt", "--rate", "0.3", "--exact"])).unwrap();
        assert_eq!(p.positional, vec!["farness", "g.txt"]);
        assert_eq!(p.get("rate"), Some("0.3"));
        assert!(p.has("exact"));
        assert!(!p.has("seed"));
    }

    #[test]
    fn typed_lookup() {
        let p = parse(&argv(&["x", "--rate", "0.25"])).unwrap();
        assert_eq!(p.get_parse("rate", 0.2f64).unwrap(), 0.25);
        assert_eq!(p.get_parse("seed", 7u64).unwrap(), 7);
        assert!(p.get_parse::<f64>("rate", 0.0).is_ok());
    }

    #[test]
    fn bad_value_reports_flag() {
        let p = parse(&argv(&["x", "--seed", "abc"])).unwrap();
        let err = p.get_parse::<u64>("seed", 0).unwrap_err();
        assert!(err.contains("--seed"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let p = parse(&argv(&["x", "--exact", "--rate", "0.1"])).unwrap();
        assert_eq!(p.get("exact"), Some(""));
        assert_eq!(p.get("rate"), Some("0.1"));
    }
}
