//! Typed CLI errors with stable process exit codes.
//!
//! Scripts driving `brics` can branch on the exit code alone:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | success                                                    |
//! | 2    | usage error (bad flag, missing argument, unknown command)  |
//! | 3    | input/data error (unreadable file, parse failure, budget)  |
//! | 4    | deadline/cancellation — a sound partial result was printed |
//! | 5    | internal error (worker panic, broken invariant)            |
//! | 6    | degraded — a fault tripped the run and a lower rung of the |
//! |      | quality ladder answered; the printed estimate is a sound   |
//! |      | (but weaker-than-requested) lower bound                    |

use std::fmt;

/// What went wrong, carrying the exit code the process should end with.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, bad flag value, missing argument.
    /// Exit code 2.
    Usage(String),
    /// The input could not be used: I/O failure, parse error, empty graph,
    /// or a memory budget the data does not fit under. Exit code 3.
    Input(String),
    /// A `--timeout` deadline (or cancellation) interrupted the run. Any
    /// sound partial result has already been printed to stdout. Exit code 4.
    TimeoutPartial(String),
    /// A worker panicked or an internal invariant broke — the result (if
    /// any) is not trustworthy. Exit code 5.
    Internal(String),
    /// A fault tripped the run and the degradation ladder answered below
    /// the requested rung (`--degrade`). A sound lower-bound estimate was
    /// printed; the run report names the answering rung. Exit code 6.
    Degraded(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::TimeoutPartial(_) => 4,
            CliError::Internal(_) => 5,
            CliError::Degraded(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Input(m) => write!(f, "{m}"),
            CliError::TimeoutPartial(m) => write!(f, "{m}"),
            CliError::Internal(m) => write!(f, "internal error: {m}"),
            CliError::Degraded(m) => write!(f, "degraded: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<brics::CentralityError> for CliError {
    fn from(e: brics::CentralityError) -> Self {
        use brics::CentralityError as E;
        match &e {
            E::Internal { .. } => CliError::Internal(e.to_string()),
            E::Interrupted { .. } => CliError::TimeoutPartial(e.to_string()),
            // Budget refusals and data problems (empty/disconnected graph,
            // no samples) are properties of the input + configuration.
            _ => CliError::Input(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics::{CentralityError, RunOutcome};

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Input("x".into()).exit_code(), 3);
        assert_eq!(CliError::TimeoutPartial("x".into()).exit_code(), 4);
        assert_eq!(CliError::Internal("x".into()).exit_code(), 5);
        assert_eq!(CliError::Degraded("x".into()).exit_code(), 6);
    }

    #[test]
    fn centrality_errors_map_to_codes() {
        let c: CliError = CentralityError::Internal { detail: "boom".into() }.into();
        assert_eq!(c.exit_code(), 5);
        let c: CliError = CentralityError::Interrupted { outcome: RunOutcome::Deadline }.into();
        assert_eq!(c.exit_code(), 4);
        let c: CliError =
            CentralityError::BudgetExceeded { required_bytes: 10, budget_bytes: 1 }.into();
        assert_eq!(c.exit_code(), 3);
        let c: CliError = CentralityError::EmptyGraph.into();
        assert_eq!(c.exit_code(), 3);
    }

    #[test]
    fn display_prefixes_internal() {
        let c = CliError::Internal("worker panic".into());
        assert!(c.to_string().contains("internal error"));
    }

    #[test]
    fn display_prefixes_degraded() {
        let c = CliError::Degraded("sampling fallback answered".into());
        assert!(c.to_string().starts_with("degraded:"));
    }
}
