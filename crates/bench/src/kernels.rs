//! Kernel benchmark: serial top-down vs direction-optimizing hybrid vs
//! frontier-parallel BFS on the generator classes plus low-diameter stress
//! graphs (where bottom-up shines). The `kernels` bin drives this and
//! emits `BENCH_kernels.json`; every measurement carries a checksum so a
//! run doubles as a distance-equivalence test.

use brics::{ExecutionContext, FarnessEstimate};
use brics_graph::generators::{complete_graph, gnm_random_connected, ClassParams, GraphClass};
use brics_graph::telemetry::{timed, Counter, Recorder, RunRecorder};
use brics_graph::traversal::{Bfs, HybridBfs, HybridParams, MsBfs, ParFrontierBfs, MSBFS_BATCH};
use brics_graph::{CsrGraph, NodeId};
use std::time::Instant;

/// One benchmark input graph.
pub struct KernelInput {
    /// Display name (includes the vertex count).
    pub name: String,
    /// Whether the graph's diameter is small enough that the bottom-up
    /// phase is expected to engage (the hybrid win case).
    pub low_diameter: bool,
    /// The graph itself.
    pub graph: CsrGraph,
}

/// The benchmark suite: one graph per generator class plus two dense
/// low-diameter stress graphs. `scale` multiplies vertex counts
/// (floor 64) so smoke runs stay cheap.
pub fn kernel_inputs(scale: f64) -> Vec<KernelInput> {
    let sz = |n: usize| ((n as f64 * scale) as usize).max(64);
    let mut inputs = Vec::new();
    for (class, nodes, seed) in [
        (GraphClass::Web, 8_000, 11),
        (GraphClass::Social, 8_000, 12),
        (GraphClass::Community, 8_000, 13),
        (GraphClass::Road, 6_000, 14),
        (GraphClass::Rmat, 8_000, 15),
    ] {
        let n = sz(nodes);
        inputs.push(KernelInput {
            name: format!("{}-{n}", class.name()),
            low_diameter: class != GraphClass::Road,
            graph: class.generate(ClassParams::new(n, seed)),
        });
    }
    // Dense G(n, m): average degree 32 ⇒ diameter ~2, the regime where
    // bottom-up finds a frontier parent in O(1) probes per vertex.
    let n = sz(3_000);
    inputs.push(KernelInput {
        name: format!("dense-gnm-{n}"),
        low_diameter: true,
        graph: gnm_random_connected(n, n * 16, 16),
    });
    let n = sz(512);
    inputs.push(KernelInput {
        name: format!("complete-{n}"),
        low_diameter: true,
        graph: complete_graph(n),
    });
    inputs
}

/// Evenly spread BFS sources for an `n`-vertex graph.
pub fn spread_sources(n: usize, k: usize) -> Vec<NodeId> {
    let k = k.clamp(1, n);
    (0..k).map(|i| (i * n / k) as NodeId).collect()
}

/// Aggregate of one timed kernel sweep over a source list.
pub struct KernelMeasurement {
    /// Kernel name (`topdown`, `hybrid`, `frontier-parallel`).
    pub kernel: &'static str,
    /// Best-of-reps wall time for the whole source sweep.
    pub seconds: f64,
    /// Millions of traversed arcs per second (`sources · arcs / time`).
    pub mteps: f64,
    /// Σ over sources of the number of reached vertices.
    pub total_reached: u64,
    /// Σ over sources of Σ d(s, v) — the distance checksum used for the
    /// cross-kernel equivalence verdict.
    pub checksum: u64,
}

fn best_of<F: FnMut() -> (u64, u64)>(reps: usize, mut sweep: F) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut totals = (0, 0);
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        totals = sweep();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, totals.0, totals.1)
}

fn finish(
    kernel: &'static str,
    g: &CsrGraph,
    sources: usize,
    (seconds, total_reached, checksum): (f64, u64, u64),
) -> KernelMeasurement {
    let arcs = (sources * g.num_arcs()) as f64;
    KernelMeasurement {
        kernel,
        seconds,
        mteps: if seconds > 0.0 { arcs / seconds / 1e6 } else { 0.0 },
        total_reached,
        checksum,
    }
}

/// Times the classic serial top-down kernel.
pub fn measure_topdown(g: &CsrGraph, sources: &[NodeId], reps: usize) -> KernelMeasurement {
    let mut bfs = Bfs::new(g.num_nodes());
    let totals = best_of(reps, || {
        sources.iter().fold((0, 0), |(r, c), &s| {
            let (reached, sum) = bfs.run_with(g, s, |_, _| {});
            (r + reached as u64, c + sum)
        })
    });
    finish("topdown", g, sources.len(), totals)
}

/// Times the serial direction-optimizing kernel.
pub fn measure_hybrid(
    g: &CsrGraph,
    sources: &[NodeId],
    reps: usize,
    params: HybridParams,
) -> KernelMeasurement {
    let mut bfs = HybridBfs::with_params(g.num_nodes(), params);
    let totals = best_of(reps, || {
        sources.iter().fold((0, 0), |(r, c), &s| {
            let (reached, sum) = bfs.run_with(g, s, |_, _| {});
            (r + reached as u64, c + sum)
        })
    });
    finish("hybrid", g, sources.len(), totals)
}

/// Times the frontier-parallel kernel. Call inside a
/// `rayon::ThreadPool::install` to control the thread count; the caller
/// records `rayon::current_num_threads()` alongside.
pub fn measure_frontier_parallel(
    g: &CsrGraph,
    sources: &[NodeId],
    reps: usize,
    params: HybridParams,
) -> KernelMeasurement {
    let mut bfs = ParFrontierBfs::with_params(g.num_nodes(), params);
    let totals = best_of(reps, || {
        sources.iter().fold((0, 0), |(r, c), &s| {
            let (reached, sum) = bfs.run(g, s);
            (r + reached as u64, c + sum)
        })
    });
    finish("frontier-parallel", g, sources.len(), totals)
}

/// Times the bit-parallel multi-source kernel: sources run in batches of
/// up to [`MSBFS_BATCH`], one traversal per batch. Serial sweeps — call
/// inside a 1-thread pool for the apples-to-apples serial comparison, or
/// measure the scheduler end to end via the library entry points.
pub fn measure_msbfs(g: &CsrGraph, sources: &[NodeId], reps: usize) -> KernelMeasurement {
    let mut ms = MsBfs::new(g.num_nodes());
    let totals = best_of(reps, || {
        sources.chunks(MSBFS_BATCH).fold((0, 0), |(r, c), batch| {
            let rows = ms.run_batch(g, batch);
            rows.iter().fold((r, c), |(r, c), &(reached, sum)| (r + reached as u64, c + sum))
        })
    });
    finish("msbfs", g, sources.len(), totals)
}

/// One untimed, fully-recorded sweep over the same sources the timed
/// measurements use. Each kernel runs once under its own phase span
/// (`bench.topdown` / `bench.hybrid` / `bench.frontier_parallel`), every
/// pass charges the bench edge convention (`num_arcs` per source, the same
/// denominator [`KernelMeasurement::mteps`] uses), and the
/// direction-optimizing passes harvest per-source
/// [`TraversalStats`](brics_graph::traversal::TraversalStats) into the
/// kernel counters. Does nothing when the recorder is disabled. Call it
/// inside the same `rayon` pool as [`measure_frontier_parallel`] and keep
/// it *outside* the timed measurements — the recorded pass exists to
/// explain the numbers, not to perturb them.
pub fn recorded_sweep<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    params: HybridParams,
    rec: &R,
) {
    if !rec.enabled() {
        return;
    }
    let charge = |reached: usize| {
        rec.incr(Counter::BfsSources);
        rec.add(Counter::VerticesVisited, reached as u64);
        rec.add(Counter::EdgesScanned, g.num_arcs() as u64);
    };
    timed(rec, "bench.topdown", || {
        let mut bfs = Bfs::new(g.num_nodes());
        for &s in sources {
            let (reached, _) = bfs.run_with(g, s, |_, _| {});
            charge(reached);
        }
    });
    timed(rec, "bench.hybrid", || {
        let mut bfs = HybridBfs::with_params(g.num_nodes(), params);
        for &s in sources {
            let (reached, _) = bfs.run_with(g, s, |_, _| {});
            charge(reached);
            let st = bfs.last_stats();
            rec.add(Counter::FrontierLevels, st.levels);
            rec.add(Counter::BottomUpLevels, st.bottom_up_levels);
            rec.add(Counter::DirectionSwitches, st.direction_switches);
            rec.max(Counter::PeakFrontier, st.peak_frontier);
        }
    });
    timed(rec, "bench.frontier_parallel", || {
        let mut bfs = ParFrontierBfs::with_params(g.num_nodes(), params);
        for &s in sources {
            let (reached, _) = bfs.run(g, s);
            charge(reached);
            let st = bfs.last_stats();
            rec.add(Counter::FrontierLevels, st.levels);
            rec.add(Counter::BottomUpLevels, st.bottom_up_levels);
            rec.add(Counter::DirectionSwitches, st.direction_switches);
            rec.max(Counter::PeakFrontier, st.peak_frontier);
        }
    });
}

/// One timed top-k verification scan (pruned or full) over a shared
/// estimate, with the scan's actual work harvested from a fresh recorder.
pub struct TopkMeasurement {
    /// `"pruned"` (BFS-cut against the running k-th best) or `"full"`.
    pub mode: &'static str,
    /// Best-of-reps wall time of the whole scan.
    pub seconds: f64,
    /// Arcs actually probed by the verification sweeps.
    pub edges_scanned: u64,
    /// Vertices actually visited by the verification sweeps.
    pub vertices_visited: u64,
    /// Sweeps aborted early by the BFS cut (always 0 in full mode).
    pub pruned_bfs: u64,
    /// Σ levels fully expanded by cut sweeps before aborting.
    pub cut_levels: u64,
    /// Order-sensitive FNV-1a checksum over the ranked (vertex, farness)
    /// pairs — equal checksums across modes is the bit-identity verdict.
    pub ranked_checksum: u64,
}

/// Measures one verification mode of the exact top-k scan against a
/// pre-computed estimate. Share the estimate between the pruned and full
/// calls so both scans see the identical candidate order and threshold
/// evolution — only then is the checksum comparison a statement about the
/// cut, not about sampling noise.
pub fn measure_topk(
    g: &CsrGraph,
    est: &FarnessEstimate,
    k: usize,
    prune: bool,
    reps: usize,
) -> TopkMeasurement {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let rec = RunRecorder::new();
        let (seconds, res) = {
            let ctx = ExecutionContext::new().with_recorder(&rec);
            let t = Instant::now();
            let res = brics::topk::top_k_from_estimate_with(g, k, est, prune, &ctx)
                .expect("connected bench graphs cannot fail top-k");
            (t.elapsed().as_secs_f64(), res)
        };
        best = best.min(seconds);
        out = Some((res, rec));
    }
    let (res, rec) = out.expect("reps >= 1");
    let ranked_checksum = res.ranked.iter().fold(0xcbf29ce484222325u64, |h, &(v, f)| {
        let h = (h ^ v as u64).wrapping_mul(0x100000001b3);
        (h ^ f).wrapping_mul(0x100000001b3)
    });
    TopkMeasurement {
        mode: if prune { "pruned" } else { "full" },
        seconds: best,
        edges_scanned: rec.counter(Counter::EdgesScanned),
        vertices_visited: rec.counter(Counter::VerticesVisited),
        pruned_bfs: rec.counter(Counter::TopkPrunedBfs),
        cut_levels: rec.counter(Counter::TopkCutLevels),
        ranked_checksum,
    }
}

/// Whether every measurement reached the same vertices with the same
/// total distance mass — the run-time distance-equivalence verdict.
pub fn equivalent(measurements: &[KernelMeasurement]) -> bool {
    measurements
        .windows(2)
        .all(|w| w[0].total_reached == w[1].total_reached && w[0].checksum == w[1].checksum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_connected_at_tiny_scale() {
        for input in kernel_inputs(0.02) {
            assert!(
                brics_graph::connectivity::is_connected(&input.graph),
                "{}",
                input.name
            );
            assert!(input.graph.num_nodes() >= 64);
        }
    }

    #[test]
    fn measurements_agree_across_kernels() {
        let g = gnm_random_connected(300, 1200, 5);
        let sources = spread_sources(g.num_nodes(), 8);
        let ms = [
            measure_topdown(&g, &sources, 1),
            measure_hybrid(&g, &sources, 1, HybridParams::default()),
            measure_hybrid(&g, &sources, 1, HybridParams::eager_bottom_up()),
            measure_frontier_parallel(&g, &sources, 1, HybridParams::default()),
            measure_msbfs(&g, &sources, 1),
        ];
        assert!(equivalent(&ms));
        assert_eq!(ms[0].total_reached, 8 * 300);
        assert!(ms.iter().all(|m| m.checksum > 0 && m.mteps > 0.0));
    }

    #[test]
    fn msbfs_measurement_handles_full_and_ragged_plans() {
        let g = gnm_random_connected(200, 800, 3);
        // 100 sources on a 200-vertex graph: one full batch + one ragged.
        let sources = spread_sources(g.num_nodes(), 100);
        let base = measure_topdown(&g, &sources, 1);
        let ms = measure_msbfs(&g, &sources, 1);
        assert_eq!(ms.kernel, "msbfs");
        assert_eq!(ms.total_reached, base.total_reached);
        assert_eq!(ms.checksum, base.checksum);
    }

    #[test]
    fn recorded_sweep_charges_all_three_kernels() {
        use brics_graph::telemetry::{NullRecorder, RunRecorder};
        let g = gnm_random_connected(200, 1600, 9);
        let sources = spread_sources(g.num_nodes(), 6);
        let rec = RunRecorder::new();
        recorded_sweep(&g, &sources, HybridParams::default(), &rec);
        assert_eq!(rec.counter(Counter::BfsSources), 3 * 6);
        assert_eq!(rec.counter(Counter::VerticesVisited), 3 * 6 * 200);
        assert_eq!(rec.counter(Counter::EdgesScanned), (3 * 6 * g.num_arcs()) as u64);
        assert!(rec.counter(Counter::FrontierLevels) > 0);
        assert!(rec.counter(Counter::PeakFrontier) > 0);
        let report = rec.report();
        for phase in ["bench.topdown", "bench.hybrid", "bench.frontier_parallel"] {
            assert!(
                report.phases.iter().any(|p| p.name == phase && p.count == 1),
                "missing span {phase}"
            );
        }
        assert!(report.derived.mteps > 0.0);
        // Disabled recorder: the sweep must be a no-op.
        recorded_sweep(&g, &sources, HybridParams::default(), &NullRecorder);
    }

    #[test]
    fn topk_measurement_modes_agree_and_pruned_scans_less() {
        use brics::{BricsEstimator, Method, SampleSize};
        let g = brics_graph::generators::social_like(ClassParams::new(400, 4));
        // A deliberately weak estimate, so verification does real work.
        let est = BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(0.15))
            .seed(17)
            .run(&g)
            .unwrap();
        let pruned = measure_topk(&g, &est, 8, true, 1);
        let full = measure_topk(&g, &est, 8, false, 1);
        assert_eq!(pruned.ranked_checksum, full.ranked_checksum, "modes diverged");
        assert_eq!(full.pruned_bfs, 0);
        assert_eq!(full.cut_levels, 0);
        assert!(pruned.pruned_bfs > 0, "the cut never fired on a social graph");
        assert!(
            pruned.edges_scanned < full.edges_scanned,
            "cut sweeps must probe strictly fewer arcs ({} vs {})",
            pruned.edges_scanned,
            full.edges_scanned
        );
        assert!(pruned.vertices_visited < full.vertices_visited);
    }

    #[test]
    fn spread_sources_are_in_range_and_distinct() {
        let s = spread_sources(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| (v as usize) < 100));
        assert_eq!(spread_sources(3, 10).len(), 3);
    }
}
