//! The 12 synthetic counterparts of the paper's Table I datasets.

use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::CsrGraph;

/// One evaluation dataset: a named synthetic stand-in for a Table I graph.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// `synth-` name marking the substitution for the paper's graph.
    pub name: &'static str,
    /// The paper's original dataset this one stands in for.
    pub paper_name: &'static str,
    /// Graph class (Table I grouping).
    pub class: GraphClass,
    /// Target vertex count at scale 1.0.
    pub nodes: usize,
    /// Generation seed (fixed → every run sees identical graphs).
    pub seed: u64,
}

impl Dataset {
    /// Generates the graph at the given scale multiplier.
    pub fn load(&self, scale: f64) -> CsrGraph {
        let n = ((self.nodes as f64 * scale) as usize).max(64);
        self.class.generate(ClassParams::new(n, self.seed))
    }
}

/// All 12 datasets in the paper's Table I order.
pub fn all_datasets() -> Vec<Dataset> {
    use GraphClass::*;
    vec![
        // Web graphs. Paper sizes: 325 K / 685 K / 1 M vertices; scaled to
        // keep exact ground truth (one BFS per vertex) affordable.
        Dataset { name: "synth-web-notredame", paper_name: "web-NotreDame", class: Web, nodes: 12_000, seed: 101 },
        Dataset { name: "synth-web-berkstan", paper_name: "web-BerkStan", class: Web, nodes: 16_000, seed: 102 },
        Dataset { name: "synth-webbase", paper_name: "webbase-1M", class: Web, nodes: 20_000, seed: 103 },
        // Social graphs (77 K / 82 K / 131 K in the paper).
        Dataset { name: "synth-soc-slashdot0811", paper_name: "soc-Slashdot081106", class: Social, nodes: 8_000, seed: 201 },
        Dataset { name: "synth-soc-slashdot0902", paper_name: "soc-Slashdot090216", class: Social, nodes: 9_000, seed: 202 },
        Dataset { name: "synth-soc-douban", paper_name: "soc-douban", class: Social, nodes: 12_000, seed: 203 },
        // Community networks (192 K / 268 K / 334 K in the paper).
        Dataset { name: "synth-caida", paper_name: "caidaRouterLevel", class: Community, nodes: 10_000, seed: 301 },
        Dataset { name: "synth-citeseer", paper_name: "com-citationCiteseer", class: Community, nodes: 12_000, seed: 302 },
        Dataset { name: "synth-amazon", paper_name: "com-amazon", class: Community, nodes: 14_000, seed: 303 },
        // Road networks (2.6 K / 114 K / 29 K in the paper; minnesota kept
        // at its true size).
        Dataset { name: "synth-minnesota", paper_name: "osm-minnesota", class: Road, nodes: 2_642, seed: 401 },
        Dataset { name: "synth-luxembourg", paper_name: "osm-luxembourg", class: Road, nodes: 12_000, seed: 402 },
        Dataset { name: "synth-usroads", paper_name: "usroads", class: Road, nodes: 8_000, seed: 403 },
    ]
}

/// The three datasets of one class.
pub fn datasets_in_class(class: GraphClass) -> Vec<Dataset> {
    all_datasets().into_iter().filter(|d| d.class == class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::connectivity::is_connected;

    #[test]
    fn twelve_datasets_three_per_class() {
        let all = all_datasets();
        assert_eq!(all.len(), 12);
        for class in GraphClass::ALL {
            assert_eq!(datasets_in_class(class).len(), 3, "{class:?}");
        }
    }

    #[test]
    fn names_are_unique_and_marked_synthetic() {
        let all = all_datasets();
        let mut names: Vec<_> = all.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(all.iter().all(|d| d.name.starts_with("synth-")));
    }

    #[test]
    fn tiny_scale_loads_connected() {
        for d in all_datasets() {
            let g = d.load(0.05);
            assert!(is_connected(&g), "{}", d.name);
            assert!(g.num_nodes() >= 64);
        }
    }
}
