//! Measures the extensions built beyond the paper's evaluation
//! (DESIGN.md §4's extension table):
//!
//! * exact **top-k** closeness via lower-bound pruning — BFS budget vs the
//!   brute-force `n`-BFS baseline;
//! * **dynamic** edge insertions — incremental repair vs from-scratch
//!   re-estimation.
//!
//! ```text
//! cargo run --release -p brics-bench --bin extensions
//! ```

use brics::dynamic::DynamicFarness;
use brics::topk::top_k_closeness;
use brics::{BricsEstimator, Method, SampleSize};
use brics_bench::{all_datasets, scale_from_env, TableWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    println!("Extension measurements (scale {scale})\n");

    // ---- Exact top-k: pruning power across classes. ----
    println!("exact top-10 closeness via BRICS lower bounds (rate 0.3):");
    let mut t = TableWriter::new([
        "graph", "n", "pruned", "bfs-verifies", "free", "exact-baseline-bfs",
    ]);
    for d in all_datasets() {
        if !["synth-web-notredame", "synth-soc-douban", "synth-caida", "synth-usroads"]
            .contains(&d.name)
        {
            continue;
        }
        let g = d.load(scale);
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(0.3))
            .seed(42);
        let topk = top_k_closeness(&g, 10, &est).expect("connected");
        t.row([
            d.name.to_string(),
            g.num_nodes().to_string(),
            topk.pruned.to_string(),
            topk.verified_with_bfs.to_string(),
            topk.verified_for_free.to_string(),
            g.num_nodes().to_string(),
        ]);
    }
    print!("{}", t.render());

    // ---- Dynamic insertions: incremental vs rebuild. ----
    println!("\ndynamic farness under 100 edge insertions (rate 0.3):");
    let mut t = TableWriter::new(["graph", "n", "incremental-s", "rebuild-s", "ratio"]);
    for d in all_datasets() {
        if !["synth-soc-douban", "synth-caida"].contains(&d.name) {
            continue;
        }
        let g = d.load(scale);
        let n = g.num_nodes() as u32;
        let mut dynf = DynamicFarness::new(&g, SampleSize::Fraction(0.3), 7).expect("connected");
        let mut rng = StdRng::seed_from_u64(5);
        let t0 = Instant::now();
        for _ in 0..100 {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if u != v {
                dynf.insert_edge(u, v);
            }
        }
        let incremental = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        dynf.rebuild();
        let rebuild = t1.elapsed().as_secs_f64();
        t.row([
            d.name.to_string(),
            g.num_nodes().to_string(),
            format!("{incremental:.3}"),
            format!("{rebuild:.3}"),
            format!("{:.1}x", rebuild / incremental.max(1e-9)),
        ]);
    }
    print!("{}", t.render());
    println!("\n(rebuild re-runs every retained BFS; incremental repairs only changed entries)");
}
