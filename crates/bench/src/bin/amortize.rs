//! Amortization harness for the two-stage engine: how much of an
//! estimation run is query-independent structure (reduction pipeline +
//! Block-Cut Tree), and how fast repeated queries get once that structure
//! is paid for.
//!
//! For each dataset the harness builds one [`brics::PreparedGraph`] and
//! then sweeps methods × rates against it, comparing the per-query time
//! with a cold one-shot run of the same configuration. The `speedup`
//! column is the cold time divided by the warm (artifact-backed) time —
//! the factor a parameter scan gains from the engine split.
//!
//! ```text
//! cargo run --release -p brics-bench --bin amortize -- [dataset-name]
//! ```

use brics::{
    BricsEstimator, ExecutionContext, Method, PreparedGraph, ReductionConfig, SampleSize,
};
use brics_bench::{all_datasets, scale_from_env, TableWriter};
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    let want = std::env::args().nth(1);
    let datasets = match &want {
        Some(name) => {
            all_datasets().into_iter().filter(|d| d.name == name).collect::<Vec<_>>()
        }
        None => all_datasets()
            .into_iter()
            .filter(|d| ["synth-web-notredame", "synth-soc-douban", "synth-usroads"]
                .contains(&d.name))
            .collect(),
    };
    if datasets.is_empty() {
        eprintln!("unknown dataset");
        std::process::exit(2);
    }

    let rates = [0.1, 0.2, 0.3, 0.5];
    let methods = [Method::RandomSampling, Method::Cumulative];
    println!("Prepare-once/query-many amortization (scale {scale})\n");
    for d in datasets {
        let g = d.load(scale);
        let ctx = ExecutionContext::new();
        let t0 = Instant::now();
        let prepared = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx)
            .expect("registry graphs are connected");
        let prepare_s = t0.elapsed().as_secs_f64();
        println!(
            "{} ({} nodes, {} edges): prepare {:.3}s, {} survivors",
            d.name,
            g.num_nodes(),
            g.num_edges(),
            prepare_s,
            prepared.num_surviving()
        );
        let mut t = TableWriter::new(["method", "rate", "warm s", "cold s", "speedup"]);
        for method in methods {
            for rate in rates {
                let sample = SampleSize::Fraction(rate);
                let w0 = Instant::now();
                let warm = match method {
                    Method::RandomSampling => prepared.sample(sample, 1, &ctx),
                    _ => prepared.cumulative(sample, 1, &ctx),
                }
                .expect("query");
                let warm_s = w0.elapsed().as_secs_f64();
                let c0 = Instant::now();
                let cold = BricsEstimator::new(method)
                    .sample(sample)
                    .seed(1)
                    .run(&g)
                    .expect("one-shot");
                let cold_s = c0.elapsed().as_secs_f64();
                assert_eq!(warm.raw(), cold.raw(), "engine split must not change results");
                t.row([
                    method.name().to_string(),
                    format!("{rate:.2}"),
                    format!("{warm_s:.4}"),
                    format!("{cold_s:.4}"),
                    format!("{:.2}x", cold_s / warm_s.max(1e-9)),
                ]);
            }
        }
        print!("{}", t.render());
        println!();
    }
}
