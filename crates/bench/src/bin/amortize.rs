//! Amortization harness for the two-stage engine: how much of an
//! estimation run is query-independent structure (reduction pipeline +
//! Block-Cut Tree), and how fast repeated queries get once that structure
//! is paid for.
//!
//! For each dataset the harness builds one [`brics::PreparedGraph`] and
//! then sweeps methods × rates against it, comparing the per-query time
//! with a cold one-shot run of the same configuration. The `speedup`
//! column is the cold time divided by the warm (artifact-backed) time —
//! the factor a parameter scan gains from the engine split.
//!
//! The prepared state is also persisted (`PreparedGraph::save`) and
//! re-opened through both storage backends, so the report covers the
//! *cold-start* question too: time to the first answer when a process
//! starts from nothing (prepare + query) versus from an artifact on disk
//! (load + query). Every path is cross-checked bit-for-bit against the
//! in-memory build and the whole sweep lands in `BENCH_amortize.json`.
//!
//! ```text
//! cargo run --release -p brics-bench --bin amortize -- [dataset-name] [--out FILE]
//! ```

use brics::{
    BricsEstimator, ExecutionContext, Method, PreparedGraph, ReductionConfig, SampleSize,
};
use brics_bench::{all_datasets, scale_from_env, TableWriter};
use std::time::Instant;

/// Same tracking allocator as the CLI and the kernels bench: the output
/// document's `memory` block makes footprint regressions diffable, not
/// just timing ones.
#[global_allocator]
static ALLOC: brics_graph::telemetry::TrackingAllocator =
    brics_graph::telemetry::TrackingAllocator;

fn main() {
    let scale = scale_from_env();
    let mut out = "BENCH_amortize.json".to_string();
    let mut want = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                });
                i += 1;
            }
            other => want = Some(other.to_string()),
        }
        i += 1;
    }
    let datasets = match &want {
        Some(name) => {
            all_datasets().into_iter().filter(|d| d.name == *name).collect::<Vec<_>>()
        }
        None => all_datasets()
            .into_iter()
            .filter(|d| ["synth-web-notredame", "synth-soc-douban", "synth-usroads"]
                .contains(&d.name))
            .collect(),
    };
    if datasets.is_empty() {
        eprintln!("unknown dataset");
        std::process::exit(2);
    }

    let rates = [0.1, 0.2, 0.3, 0.5];
    let methods = [Method::RandomSampling, Method::Cumulative];
    let probe = SampleSize::Fraction(0.2);
    let scratch = std::env::temp_dir().join("brics-bench-amortize");
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let mut dataset_docs = Vec::new();
    println!("Prepare-once/query-many amortization (scale {scale})\n");
    for d in datasets {
        let g = d.load(scale);
        let ctx = ExecutionContext::new();
        let t0 = Instant::now();
        let prepared = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx)
            .expect("registry graphs are connected");
        let prepare_s = t0.elapsed().as_secs_f64();
        println!(
            "{} ({} nodes, {} edges): prepare {:.3}s, {} survivors",
            d.name,
            g.num_nodes(),
            g.num_edges(),
            prepare_s,
            prepared.num_surviving()
        );
        let mut t = TableWriter::new(["method", "rate", "warm s", "cold s", "speedup"]);
        let mut query_rows = Vec::new();
        for method in methods {
            for rate in rates {
                let sample = SampleSize::Fraction(rate);
                let w0 = Instant::now();
                let warm = match method {
                    Method::RandomSampling => prepared.sample(sample, 1, &ctx),
                    _ => prepared.cumulative(sample, 1, &ctx),
                }
                .expect("query");
                let warm_s = w0.elapsed().as_secs_f64();
                let c0 = Instant::now();
                let cold = BricsEstimator::new(method)
                    .sample(sample)
                    .seed(1)
                    .run(&g)
                    .expect("one-shot");
                let cold_s = c0.elapsed().as_secs_f64();
                assert_eq!(warm.raw(), cold.raw(), "engine split must not change results");
                t.row([
                    method.name().to_string(),
                    format!("{rate:.2}"),
                    format!("{warm_s:.4}"),
                    format!("{cold_s:.4}"),
                    format!("{:.2}x", cold_s / warm_s.max(1e-9)),
                ]);
                query_rows.push(serde_json::json!({
                    "method": method.name(),
                    "rate": rate,
                    "warm_s": warm_s,
                    "cold_s": cold_s,
                    "speedup": cold_s / warm_s.max(1e-9),
                }));
            }
        }
        print!("{}", t.render());

        // Cold-start rows: a fresh process answering its first query either
        // pays prepare (reduce + BCT) or an artifact load. The reference
        // estimate pins all three paths to the same bits.
        let path = scratch.join(format!("{}-{}.brics", d.name, std::process::id()));
        let s0 = Instant::now();
        let info = prepared.save(&path, d.name, &ctx).expect("save artifact");
        let save_s = s0.elapsed().as_secs_f64();
        let q0 = Instant::now();
        let reference = prepared.cumulative(probe, 1, &ctx).expect("reference query");
        let prepare_query_s = q0.elapsed().as_secs_f64();
        let prepare_total = prepare_s + prepare_query_s;
        let timed_load = |use_mmap: bool| {
            let l0 = Instant::now();
            let (loaded, _) =
                PreparedGraph::load_with(&path, use_mmap, &ctx).expect("load artifact");
            let load_s = l0.elapsed().as_secs_f64();
            let q0 = Instant::now();
            let est = loaded.cumulative(probe, 1, &ctx).expect("loaded query");
            let query_s = q0.elapsed().as_secs_f64();
            assert_eq!(est.raw(), reference.raw(), "artifact load changed results");
            (load_s, query_s)
        };
        let (mmap_load_s, mmap_query_s) = timed_load(true);
        let (heap_load_s, heap_query_s) = timed_load(false);
        let mut cold_table = TableWriter::new([
            "cold start", "structure s", "first query s", "total s", "vs prepare",
        ]);
        let mut cold_rows = Vec::new();
        for (label, structure_s, query_s) in [
            ("prepare", prepare_s, prepare_query_s),
            ("load-mmap", mmap_load_s, mmap_query_s),
            ("load-heap", heap_load_s, heap_query_s),
        ] {
            let total = structure_s + query_s;
            cold_table.row([
                label.to_string(),
                format!("{structure_s:.4}"),
                format!("{query_s:.4}"),
                format!("{total:.4}"),
                format!("{:.2}x", prepare_total / total.max(1e-9)),
            ]);
            cold_rows.push(serde_json::json!({
                "path": label,
                "structure_s": structure_s,
                "first_query_s": query_s,
                "total_s": total,
                "speedup_vs_prepare": prepare_total / total.max(1e-9),
            }));
        }
        println!(
            "cold start to first answer (cumulative @ 20%, artifact {} bytes, save {:.3}s):",
            info.bytes, save_s
        );
        print!("{}", cold_table.render());
        println!();
        std::fs::remove_file(&path).ok();

        dataset_docs.push(serde_json::json!({
            "dataset": d.name,
            "nodes": g.num_nodes(),
            "edges": g.num_edges(),
            "prepare_s": prepare_s,
            "survivors": prepared.num_surviving(),
            "queries": query_rows,
            "artifact": serde_json::json!({
                "bytes": info.bytes,
                "checksum": format!("{:016x}", info.checksum),
                "save_s": save_s,
            }),
            "cold_start": cold_rows,
        }));
    }

    let doc = serde_json::json!({
        "bench": "amortize",
        "scale": scale,
        "memory": brics_bench::memory_doc(),
        "cold_start_probe": serde_json::json!({"method": "cumulative", "rate": 0.2, "seed": 1}),
        "datasets": dataset_docs,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap_or_else(
        |e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(3);
        },
    );
    println!("wrote {out}");
}
