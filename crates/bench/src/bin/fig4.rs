//! Reproduces **Figure 4**: quality and speedup of the Cumulative method
//! versus random sampling over all 12 graphs.
//!
//! * `fig4 a` — both methods at a 40 % sampling rate (Fig. 4(a)).
//! * `fig4 b` — Cumulative at 20 % vs random sampling at 30 % (Fig. 4(b)).
//!
//! ```text
//! cargo run --release -p brics-bench --bin fig4 -- a
//! cargo run --release -p brics-bench --bin fig4 -- b
//! ```

use brics::report::compare;
use brics::{Method, SampleSize};
use brics_bench::{all_datasets, scale_from_env, TableWriter};

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "a".into());
    let (cand_rate, base_rate, title) = match variant.as_str() {
        "a" => (0.40, 0.40, "Fig. 4(a): Cumulative@40% vs Random@40%"),
        "b" => (0.20, 0.30, "Fig. 4(b): Cumulative@20% vs Random@30%"),
        other => {
            eprintln!("unknown variant '{other}' (expected 'a' or 'b')");
            std::process::exit(2);
        }
    };
    let scale = scale_from_env();
    println!("{title}  (scale {scale})\n");
    let mut t = TableWriter::new([
        "graph",
        "class",
        "rand-s",
        "cum-s",
        "speedup",
        "rand-Q",
        "cum-Q",
        "rand-Qraw",
        "cum-Qraw",
    ]);
    let mut per_class: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for d in all_datasets() {
        let g = d.load(scale);
        let c = compare(
            &g,
            Method::Cumulative,
            SampleSize::Fraction(cand_rate),
            SampleSize::Fraction(base_rate),
            42,
            true,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        per_class.entry(d.class.name()).or_default().push(c.speedup);
        t.row([
            d.name.to_string(),
            d.class.name().to_string(),
            format!("{:.3}", c.baseline.seconds),
            format!("{:.3}", c.candidate.seconds),
            format!("{:.2}x", c.speedup),
            format!("{:.3}", c.baseline.quality.unwrap()),
            format!("{:.3}", c.candidate.quality.unwrap()),
            format!("{:.3}", c.baseline.quality_raw.unwrap()),
            format!("{:.3}", c.candidate.quality_raw.unwrap()),
        ]);
    }
    print!("{}", t.render());
    println!("\nmean speedup per class:");
    for (class, speedups) in per_class {
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("  {class:<10} {mean:.2}x");
    }
    println!(
        "\npaper (Fig. 4(a), 40%): web 2.73x, social 2.0x, community 1.36x, road 1.96x; \
         Cumulative quality >= random on average."
    );
}
