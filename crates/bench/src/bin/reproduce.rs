//! One-shot reproduction driver: runs every harness in sequence and writes
//! their outputs under `results/`, mirroring what EXPERIMENTS.md records.
//!
//! ```text
//! cargo run --release -p brics-bench --bin reproduce [-- results-dir]
//! ```
//!
//! Equivalent to invoking `table1`, `fig4 a`, `fig4 b`, `fig5`,
//! `ablation all`, `sweep` and `extensions` by hand, except the harness
//! code is linked in-process (no cargo re-invocations), so it also works
//! from a bare binary distribution.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

fn main() {
    let dir = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "results".to_string()),
    );
    std::fs::create_dir_all(&dir).expect("create results dir");
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir");

    let jobs: &[(&str, &[&str], &str)] = &[
        ("table1", &[], "table1.txt"),
        ("fig4", &["a"], "fig4a.txt"),
        ("fig4", &["b"], "fig4b.txt"),
        ("fig5", &[], "fig5.txt"),
        ("ablation", &["all"], "ablation.txt"),
        ("sweep", &[], "sweep.txt"),
        ("extensions", &[], "extensions.txt"),
    ];
    let mut failures = 0;
    for (bin, args, out_name) in jobs {
        let exe = bin_dir.join(bin);
        if !exe.exists() {
            eprintln!("skip {bin}: not built (run `cargo build --release -p brics-bench` first)");
            failures += 1;
            continue;
        }
        print!("running {bin} {} -> {out_name} ... ", args.join(" "));
        std::io::stdout().flush().ok();
        let output = Command::new(&exe).args(*args).output().expect("spawn harness");
        std::fs::write(dir.join(out_name), &output.stdout).expect("write result");
        if output.status.success() {
            println!("ok ({} bytes)", output.stdout.len());
        } else {
            println!("FAILED: {}", String::from_utf8_lossy(&output.stderr));
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} harness runs failed");
        std::process::exit(1);
    }
    println!("\nall harness outputs written to {}", dir.display());
}
