//! Reproduces **Figures 6–9**: relative speedup and quality of the paper's
//! three configurations — C+R, I+C+R and Cumulative — against random
//! sampling, per graph class.
//!
//! ```text
//! cargo run --release -p brics-bench --bin ablation -- web        # Fig. 6
//! cargo run --release -p brics-bench --bin ablation -- social     # Fig. 7
//! cargo run --release -p brics-bench --bin ablation -- community  # Fig. 8
//! cargo run --release -p brics-bench --bin ablation -- road       # Fig. 9
//! cargo run --release -p brics-bench --bin ablation -- all
//! ```
//!
//! All methods run at the paper's 40 % sampling rate (of their sampling
//! population: the full graph for random, the reduced graph otherwise).

use brics::report::measure;
use brics::{exact_farness, Method, SampleSize};
use brics_bench::{datasets_in_class, scale_from_env, TableWriter};
use brics_graph::generators::GraphClass;

fn run_class(class: GraphClass, scale: f64) {
    let fig = match class {
        GraphClass::Web => 6,
        GraphClass::Social => 7,
        GraphClass::Community => 8,
        // The ablation figures exist only for the paper's Table I classes.
        GraphClass::Road | GraphClass::Rmat => 9,
    };
    println!(
        "Fig. {fig}: optimization ablation on {} graphs (40% sampling, scale {scale})\n",
        class.name()
    );
    let methods = [
        Method::RandomSampling,
        Method::CR,
        Method::ICR,
        Method::Cumulative,
    ];
    let mut t = TableWriter::new([
        "graph", "method", "seconds", "speedup", "quality", "quality-raw", "sources",
    ]);
    for d in datasets_in_class(class) {
        let g = d.load(scale);
        let exact = exact_farness(&g).expect("dataset must be connected");
        let mut base_seconds = None;
        for m in methods {
            let o = measure(&g, m, SampleSize::Fraction(0.4), 42, Some(&exact))
                .unwrap_or_else(|e| panic!("{} {}: {e}", d.name, m.name()));
            let speedup = match base_seconds {
                None => {
                    base_seconds = Some(o.seconds);
                    1.0
                }
                Some(b) => b / o.seconds,
            };
            t.row([
                d.name.to_string(),
                o.method.clone(),
                format!("{:.3}", o.seconds),
                format!("{speedup:.2}x"),
                format!("{:.3}", o.quality.unwrap()),
                format!("{:.3}", o.quality_raw.unwrap()),
                o.num_sources.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    let note = match class {
        GraphClass::Web => "paper: all reductions help; adding BiCC slightly lowers web speedup (many tiny blocks).",
        GraphClass::Social => "paper: skewed giant block limits speedup, but quality beats random sampling.",
        GraphClass::Community => "paper: I+C+R all applied; giant block (~80%) limits BiCC gains; slightly better quality.",
        GraphClass::Road => "paper: chains dominate (70-85% deg<=2); chain reduction gives the speedup; BiCC does not help quality.",
        GraphClass::Rmat => "stress class (not in the paper): no planted reducible structure.",
    };
    println!("\n{note}\n");
}

fn main() {
    let scale = scale_from_env();
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "all" => {
            for class in GraphClass::ALL {
                run_class(class, scale);
            }
        }
        other => match other.parse::<GraphClass>() {
            Ok(class) => run_class(class, scale),
            Err(e) => {
                eprintln!("{e} (expected web|social|community|road|all)");
                std::process::exit(2);
            }
        },
    }
}
