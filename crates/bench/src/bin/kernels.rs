//! Kernel benchmark driver: times the top-down, direction-optimizing
//! hybrid, frontier-parallel and bit-parallel multi-source (MS-BFS)
//! kernels on the suite from `brics_bench::kernels` and writes
//! `BENCH_kernels.json`.
//!
//! ```text
//! cargo run --release -p brics-bench --bin kernels -- \
//!     [--smoke] [--out FILE] [--reps N] [--threads N] [--sources K]
//! ```
//!
//! `--smoke` shrinks every graph and runs one repetition — the CI sanity
//! configuration. Every run cross-checks the kernels' reach counts and
//! distance checksums; a mismatch is a hard failure (exit 1), so the
//! benchmark doubles as an equivalence test.

use brics::{BricsEstimator, Method, SampleSize};
use brics_bench::kernels::{
    equivalent, kernel_inputs, measure_frontier_parallel, measure_hybrid, measure_msbfs,
    measure_topdown, measure_topk, recorded_sweep, spread_sources, KernelMeasurement,
    TopkMeasurement,
};
use brics_bench::{scale_from_env, TableWriter};
use brics_graph::telemetry::RunRecorder;
use brics_graph::traversal::HybridParams;

/// Benchmarks run under the same tracking allocator as the CLI, so the
/// emitted document carries a `memory` block (live/peak/allocation totals)
/// that `brics report diff` can gate alongside the timing counters.
#[global_allocator]
static ALLOC: brics_graph::telemetry::TrackingAllocator =
    brics_graph::telemetry::TrackingAllocator;

struct Opts {
    smoke: bool,
    out: String,
    reps: usize,
    threads: usize,
    sources: usize,
    params: HybridParams,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: "BENCH_kernels.json".into(),
        reps: 3,
        threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(4),
        // One full MS-BFS batch per graph by default, so the batched
        // kernel's headline regime is what the report shows.
        sources: 64,
        params: HybridParams::default(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = need(i);
                i += 1;
            }
            "--reps" => {
                opts.reps = need(i).parse().expect("--reps");
                i += 1;
            }
            "--threads" => {
                opts.threads = need(i).parse::<usize>().expect("--threads").max(1);
                i += 1;
            }
            "--sources" => {
                opts.sources = need(i).parse::<usize>().expect("--sources").max(1);
                i += 1;
            }
            "--alpha" => {
                opts.params.alpha = need(i).parse().expect("--alpha");
                i += 1;
            }
            "--beta" => {
                opts.params.beta = need(i).parse().expect("--beta");
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if opts.smoke {
        opts.reps = 1;
        opts.sources = opts.sources.min(4);
    }
    opts
}

fn ms(m: &KernelMeasurement) -> f64 {
    m.seconds * 1e3
}

fn main() {
    let opts = parse_opts();
    let scale = if opts.smoke { 0.02 * scale_from_env() } else { scale_from_env() };
    let params = opts.params;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads)
        .build()
        .expect("thread pool");
    let threads = pool.install(rayon::current_num_threads);

    println!(
        "BFS kernel benchmark (scale {scale}, {} reps, {} sources/graph, {threads} threads)\n",
        opts.reps, opts.sources
    );
    let mut table = TableWriter::new([
        "graph", "nodes", "arcs", "topdown-ms", "hybrid-ms", "frontier-ms", "msbfs-ms", "hyb-x",
        "fp-x", "ms-x", "equal",
    ]);
    let mut topk_table =
        TableWriter::new(["graph", "k", "pruned-ms", "full-ms", "pruned-edges", "full-edges", "cut-bfs", "equal"]);
    let mut graph_docs = Vec::new();
    let mut all_equal = true;
    let mut all_topk_equal = true;
    let mut best_hybrid = 0.0f64;
    let mut best_msbfs = 0.0f64;
    for input in kernel_inputs(scale) {
        let g = &input.graph;
        let sources = spread_sources(g.num_nodes(), opts.sources);
        let td = measure_topdown(g, &sources, opts.reps);
        let hy = measure_hybrid(g, &sources, opts.reps, params);
        let fp = pool.install(|| measure_frontier_parallel(g, &sources, opts.reps, params));
        let mb = measure_msbfs(g, &sources, opts.reps);
        // One extra, untimed recorded pass per graph: per-phase spans plus
        // direction-switch/frontier counters for the report, kept out of
        // the timed loops so it cannot perturb the measurements.
        let rec = RunRecorder::new();
        pool.install(|| recorded_sweep(g, &sources, params, &rec));
        let runs = [td, hy, fp, mb];
        let ok = equivalent(&runs);
        all_equal &= ok;
        let (td, hy, fp, mb) = (&runs[0], &runs[1], &runs[2], &runs[3]);
        // Hybrid-vs-topdown isolates the direction switch (both serial);
        // frontier-vs-hybrid isolates intra-BFS parallelism (same
        // algorithm, `threads` workers per level); msbfs-vs-hybrid
        // isolates bit-parallel batching (both serial sweeps, one
        // traversal per 64 sources).
        let hyb_speedup = td.seconds / hy.seconds;
        let fp_speedup = hy.seconds / fp.seconds;
        let ms_speedup = hy.seconds / mb.seconds;
        best_hybrid = best_hybrid.max(hyb_speedup);
        best_msbfs = best_msbfs.max(ms_speedup);
        table.row([
            input.name.clone(),
            g.num_nodes().to_string(),
            g.num_arcs().to_string(),
            format!("{:.2}", ms(td)),
            format!("{:.2}", ms(hy)),
            format!("{:.2}", ms(fp)),
            format!("{:.2}", ms(mb)),
            format!("{hyb_speedup:.2}"),
            format!("{fp_speedup:.2}"),
            format!("{ms_speedup:.2}"),
            ok.to_string(),
        ]);
        // The topk family: pruned vs full verification of the exact top-k
        // scan against ONE shared, deliberately weak estimate (random
        // sampling @ 15%), so both modes walk the identical candidate
        // order and the edge-scan delta is purely the BFS cut's doing.
        let topk_k = 8.min(g.num_nodes());
        let est = BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(0.15))
            .seed(17)
            .run(g)
            .expect("bench graphs are connected");
        let tk_pruned = measure_topk(g, &est, topk_k, true, opts.reps);
        let tk_full = measure_topk(g, &est, topk_k, false, opts.reps);
        let topk_equal = tk_pruned.ranked_checksum == tk_full.ranked_checksum;
        all_topk_equal &= topk_equal;
        topk_table.row([
            input.name.clone(),
            topk_k.to_string(),
            format!("{:.2}", tk_pruned.seconds * 1e3),
            format!("{:.2}", tk_full.seconds * 1e3),
            tk_pruned.edges_scanned.to_string(),
            tk_full.edges_scanned.to_string(),
            tk_pruned.pruned_bfs.to_string(),
            topk_equal.to_string(),
        ]);
        let topk_row = |m: &TopkMeasurement| {
            serde_json::json!({
                "mode": m.mode,
                "ms": m.seconds * 1e3,
                "edges_scanned": m.edges_scanned,
                "vertices_visited": m.vertices_visited,
                "pruned_bfs": m.pruned_bfs,
                "cut_levels": m.cut_levels,
                "ranked_checksum": m.ranked_checksum,
            })
        };
        graph_docs.push(serde_json::json!({
            "graph": input.name,
            "nodes": g.num_nodes(),
            "arcs": g.num_arcs(),
            "sources": sources.len(),
            "low_diameter": input.low_diameter,
            "equivalence_ok": ok,
            "kernels": runs.iter().map(|m| serde_json::json!({
                "kernel": m.kernel,
                "ms": ms(m),
                "mteps": m.mteps,
                "total_reached": m.total_reached,
                "checksum": m.checksum,
            })).collect::<Vec<_>>(),
            "speedup_hybrid_vs_topdown": hyb_speedup,
            "speedup_frontier_vs_serial_hybrid": fp_speedup,
            "speedup_msbfs_vs_serial_hybrid": ms_speedup,
            "topk": serde_json::json!({
                "k": topk_k,
                "ranked_equal": topk_equal,
                "rows": [topk_row(&tk_pruned), topk_row(&tk_full)],
            }),
            "telemetry": rec.report(),
        }));
    }
    print!("{}", table.render());
    println!("\ntop-k verification (pruned BFS-cut vs full sweeps, k per graph):");
    print!("{}", topk_table.render());

    let doc = serde_json::json!({
        "bench": "kernels",
        "smoke": opts.smoke,
        "scale": scale,
        "reps": opts.reps,
        "threads": threads,
        "params": serde_json::json!({"alpha": params.alpha, "beta": params.beta}),
        "memory": brics_bench::memory_doc(),
        "graphs": graph_docs,
        "summary": serde_json::json!({
            "all_kernels_equivalent": all_equal,
            "topk_ranked_equal": all_topk_equal,
            "best_hybrid_speedup_vs_topdown": best_hybrid,
            "best_msbfs_speedup_vs_serial_hybrid": best_msbfs,
        }),
    });
    std::fs::write(&opts.out, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", opts.out);
            std::process::exit(3);
        });
    println!(
        "\nwrote {} (best hybrid speedup {best_hybrid:.2}x, best msbfs {best_msbfs:.2}x)",
        opts.out
    );
    if !all_equal {
        eprintln!("FAIL: kernels disagreed on reach counts or distance checksums");
        std::process::exit(1);
    }
    if !all_topk_equal {
        eprintln!("FAIL: pruned top-k verification diverged from the full sweeps");
        std::process::exit(1);
    }
}
