//! Sampling-rate sweep: quality and time of the Cumulative method and the
//! random-sampling baseline as the sampling rate varies — the evidence
//! behind the paper's claim that "20% sample nodes are sufficient for our
//! approach to give nearly better estimates and running time than a simple
//! random sampling using 30%" (§I, Fig. 4(b)).
//!
//! ```text
//! cargo run --release -p brics-bench --bin sweep -- [dataset-name]
//! ```

use brics::report::measure;
use brics::{exact_farness, Method, SampleSize};
use brics_bench::{all_datasets, scale_from_env, TableWriter};

fn main() {
    let scale = scale_from_env();
    let want = std::env::args().nth(1);
    let datasets = match &want {
        Some(name) => all_datasets()
            .into_iter()
            .filter(|d| d.name == name)
            .collect::<Vec<_>>(),
        None => all_datasets()
            .into_iter()
            .filter(|d| {
                ["synth-web-notredame", "synth-soc-douban", "synth-caida", "synth-usroads"]
                    .contains(&d.name)
            })
            .collect(),
    };
    if datasets.is_empty() {
        eprintln!("unknown dataset");
        std::process::exit(2);
    }
    println!("Sampling-rate sweep (scale {scale})\n");
    for d in datasets {
        let g = d.load(scale);
        let exact = exact_farness(&g).expect("connected");
        println!("{} ({} nodes, {} edges):", d.name, g.num_nodes(), g.num_edges());
        let mut t = TableWriter::new([
            "rate", "rand-s", "cum-s", "rand-Q", "cum-Q", "rand-Qraw", "cum-Qraw",
        ]);
        for rate in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let r = measure(&g, Method::RandomSampling, SampleSize::Fraction(rate), 42, Some(&exact))
                .unwrap();
            let c = measure(&g, Method::Cumulative, SampleSize::Fraction(rate), 42, Some(&exact))
                .unwrap();
            t.row([
                format!("{rate:.2}"),
                format!("{:.3}", r.seconds),
                format!("{:.3}", c.seconds),
                format!("{:.3}", r.quality.unwrap()),
                format!("{:.3}", c.quality.unwrap()),
                format!("{:.3}", r.quality_raw.unwrap()),
                format!("{:.3}", c.quality_raw.unwrap()),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
    println!("paper claim: Cumulative@20% ≈ Random@30% in both quality and time.");
}
