//! Reproduces **Table I**: structural characteristics of every dataset —
//! |V|, |E|, identical nodes (plain + chain), redundant 3/4-degree nodes,
//! chain nodes, and biconnected-component count / max / average size.
//!
//! ```text
//! cargo run --release -p brics-bench --bin table1
//! ```
//! `BRICS_SCALE=<f>` scales every dataset's vertex count.

use brics_bench::table::fmt_count;
use brics_bench::{all_datasets, scale_from_env, TableWriter};
use brics_bicc::biconnected_components;
use brics_reduce::{reduce, ReductionConfig};

fn main() {
    let scale = scale_from_env();
    println!("Table I — dataset characteristics (synthetic counterparts, scale {scale})\n");
    let mut t = TableWriter::new([
        "graph", "class", "|V|", "|E|", "ident.nodes", "ident.ch", "redundant", "chain",
        "bicc#", "bicc-max", "bicc-avg",
    ]);
    for d in all_datasets() {
        let g = d.load(scale);
        let red = reduce(&g, &ReductionConfig::all());
        let bi = biconnected_components(&g);
        t.row([
            d.name.to_string(),
            d.class.name().to_string(),
            fmt_count(g.num_nodes()),
            fmt_count(g.num_edges()),
            fmt_count(red.stats.identical_nodes),
            fmt_count(red.stats.identical_chain_nodes),
            fmt_count(red.stats.redundant_nodes),
            fmt_count(red.stats.chain_nodes),
            fmt_count(bi.blocks.len()),
            fmt_count(bi.max_block_len()),
            format!("{:.0}", bi.avg_block_len()),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper rows for comparison: Table I of the paper (12 graphs, same classes).");
}
