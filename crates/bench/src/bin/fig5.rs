//! Reproduces **Figure 5**: how per-node approximation ratios distribute
//! under (a) plain random sampling versus (b) BiCC-aware sampling.
//!
//! The paper's Fig. 5 is a schematic; the measurable claim behind it is
//! that block-local sampling + exact BCT combination concentrates the AR
//! distribution near 1. This harness prints an AR histogram for both
//! methods on one graph (default: the first community dataset).
//!
//! ```text
//! cargo run --release -p brics-bench --bin fig5 -- [dataset-name]
//! ```

use brics::quality::approximation_ratio;
use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_bench::{all_datasets, scale_from_env, TableWriter};

const BUCKETS: usize = 10;

fn histogram(est_scaled: &[f64], exact: &[u64]) -> [usize; BUCKETS + 1] {
    let mut h = [0usize; BUCKETS + 1];
    for (&e, &a) in est_scaled.iter().zip(exact) {
        // Symmetric ratio in [0, 1]: min/max of scaled estimate vs actual.
        let a = a as f64;
        let r = if e <= 0.0 || a <= 0.0 {
            if e == a {
                1.0
            } else {
                0.0
            }
        } else if e < a {
            e / a
        } else {
            a / e
        };
        let b = ((r * BUCKETS as f64).floor() as usize).min(BUCKETS);
        h[b] += 1;
    }
    h
}

fn main() {
    let scale = scale_from_env();
    let want = std::env::args().nth(1);
    let dataset = match &want {
        Some(name) => all_datasets()
            .into_iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown dataset '{name}'");
                std::process::exit(2);
            }),
        None => all_datasets().into_iter().find(|d| d.name == "synth-caida").unwrap(),
    };
    println!(
        "Fig. 5: per-node accuracy distribution on {} (scale {scale}), 30% sampling\n",
        dataset.name
    );
    let g = dataset.load(scale);
    let exact = exact_farness(&g).expect("dataset must be connected");

    let rand_est = BricsEstimator::new(Method::RandomSampling)
        .sample(SampleSize::Fraction(0.3))
        .seed(7)
        .run(&g)
        .unwrap();
    let cum_est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.3))
        .seed(7)
        .run(&g)
        .unwrap();

    let hr = histogram(rand_est.scaled(), &exact);
    let hc = histogram(cum_est.scaled(), &exact);
    let mut t = TableWriter::new(["accuracy bucket", "random", "cumulative"]);
    for b in 0..=BUCKETS {
        let label = if b == BUCKETS {
            "exactly 1.0".to_string()
        } else {
            format!("[{:.1}, {:.1})", b as f64 / BUCKETS as f64, (b + 1) as f64 / BUCKETS as f64)
        };
        t.row([label, hr[b].to_string(), hc[b].to_string()]);
    }
    print!("{}", t.render());

    let mean = |est: &[u64]| -> f64 {
        est.iter().zip(&exact).map(|(&e, &a)| approximation_ratio(e, a)).sum::<f64>()
            / exact.len() as f64
    };
    println!("\nraw quality (paper AR formula): random {:.3}, cumulative {:.3}", mean(rand_est.raw()), mean(cum_est.raw()));
    println!(
        "mass in top accuracy bucket: random {}, cumulative {} (paper: BiCC sampling \
         concentrates estimates near the exact value)",
        hr[BUCKETS - 1] + hr[BUCKETS],
        hc[BUCKETS - 1] + hc[BUCKETS]
    );
}
