//! Dataset registry and shared harness utilities for reproducing the
//! paper's evaluation (Table I, Figures 4–9).
//!
//! The original SNAP / UF-collection files are unavailable offline, so each
//! of the paper's 12 graphs is replaced by a synthetic counterpart from
//! `brics_graph::generators::classes` at a laptop-tractable scale (see
//! DESIGN.md §3). Names are prefixed `synth-` to make the substitution
//! explicit in every output table.

#![warn(missing_docs)]

pub mod kernels;
pub mod registry;
pub mod table;

pub use registry::{all_datasets, datasets_in_class, Dataset};
pub use table::TableWriter;

/// Scale multiplier for dataset sizes, read from `BRICS_SCALE`
/// (e.g. `BRICS_SCALE=0.25` quarters every vertex count for smoke runs).
pub fn scale_from_env() -> f64 {
    std::env::var("BRICS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && s.is_finite())
        .unwrap_or(1.0)
}
