//! Dataset registry and shared harness utilities for reproducing the
//! paper's evaluation (Table I, Figures 4–9).
//!
//! The original SNAP / UF-collection files are unavailable offline, so each
//! of the paper's 12 graphs is replaced by a synthetic counterpart from
//! `brics_graph::generators::classes` at a laptop-tractable scale (see
//! DESIGN.md §3). Names are prefixed `synth-` to make the substitution
//! explicit in every output table.

#![warn(missing_docs)]

pub mod kernels;
pub mod registry;
pub mod table;

pub use registry::{all_datasets, datasets_in_class, Dataset};
pub use table::TableWriter;

/// Scale multiplier for dataset sizes, read from `BRICS_SCALE`
/// (e.g. `BRICS_SCALE=0.25` quarters every vertex count for smoke runs).
pub fn scale_from_env() -> f64 {
    std::env::var("BRICS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && s.is_finite())
        .unwrap_or(1.0)
}

/// Process-level memory ledger snapshot for a benchmark document's
/// `memory` block. Meaningful when the bench binary installs
/// [`brics_graph::telemetry::TrackingAllocator`] (all shipped ones do);
/// otherwise `tracking` is `false` and every figure reads zero, which
/// `brics report diff` treats like any other numeric leaf.
pub fn memory_doc() -> serde_json::Value {
    use brics_graph::telemetry::memory;
    let stats = memory::stats();
    serde_json::json!({
        "tracking": memory::tracking_active(),
        "live_bytes": stats.live_bytes(),
        "process_peak_bytes": memory::peak_bytes(),
        "allocations": stats.allocations,
    })
}
