//! Plain-text table rendering for the harness binaries.
//!
//! Output is meant to be diffed into EXPERIMENTS.md, so formatting is
//! deterministic: fixed column order, right-aligned numerics, one header.

use std::io::Write;

/// Accumulates rows and renders them with per-column widths.
#[derive(Debug, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column (names), right-align the rest.
                if c == 0 {
                    line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders to a writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(self.render().as_bytes())
    }
}

/// Formats a count with thousands separators (`12_345` → `12,345`).
pub fn fmt_count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let bytes = s.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableWriter::new(["name", "n"]);
        t.row(["alpha", "5"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_row() {
        let mut t = TableWriter::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(0), "0");
    }
}
