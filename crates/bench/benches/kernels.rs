//! Criterion micro-benchmarks for the computational kernels under the
//! estimators: BFS, biconnected decomposition, and each reduction pass.

use brics_bicc::{biconnected_components, BlockCutTree};
use brics_graph::generators::{gnm_random_connected, grid_graph, web_like, ClassParams};
use brics_graph::traversal::{
    bfs_distances, par_bfs_from_sources, HybridBfs, HybridParams, ParFrontierBfs,
};
use brics_graph::NodeId;
use brics_reduce::{reduce, ReductionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    for n in [1_000usize, 10_000, 50_000] {
        let g = gnm_random_connected(n, n * 4, 7);
        group.bench_with_input(BenchmarkId::new("single_source", n), &g, |b, g| {
            b.iter(|| black_box(bfs_distances(g, 0)))
        });
        group.bench_with_input(BenchmarkId::new("single_source_hybrid", n), &g, |b, g| {
            let mut bfs = HybridBfs::with_params(g.num_nodes(), HybridParams::default());
            b.iter(|| black_box(bfs.run_with(g, 0, |_, _| {})))
        });
        group.bench_with_input(BenchmarkId::new("single_source_frontier_par", n), &g, |b, g| {
            let mut bfs = ParFrontierBfs::with_params(g.num_nodes(), HybridParams::default());
            b.iter(|| black_box(bfs.run(g, 0)))
        });
    }
    let g = gnm_random_connected(20_000, 80_000, 7);
    let sources: Vec<NodeId> = (0..64).map(|i| i * 300).collect();
    group.bench_function("parallel_64_sources_20k", |b| {
        b.iter(|| black_box(par_bfs_from_sources(&g, &sources)))
    });
    group.finish();
}

fn bench_bicc(c: &mut Criterion) {
    let mut group = c.benchmark_group("bicc");
    for n in [5_000usize, 20_000] {
        let g = web_like(ClassParams::new(n, 3));
        group.bench_with_input(BenchmarkId::new("decompose_web", n), &g, |b, g| {
            b.iter(|| black_box(biconnected_components(g)))
        });
        group.bench_with_input(BenchmarkId::new("bct_web", n), &g, |b, g| {
            b.iter(|| black_box(BlockCutTree::build(g)))
        });
    }
    let g = grid_graph(120, 120);
    group.bench_function("decompose_grid_14k", |b| {
        b.iter(|| black_box(biconnected_components(&g)))
    });
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions");
    let g = web_like(ClassParams::new(20_000, 5));
    for (name, cfg) in [
        ("identical_only", ReductionConfig {
            identical: true,
            chains: false,
            redundant: false,
            contract: false,
            fixpoint: false,
        }),
        ("chains_only", ReductionConfig::chains_only()),
        ("cr", ReductionConfig::cr()),
        ("icr", ReductionConfig::all()),
        ("icr_fixpoint", ReductionConfig::all().with_fixpoint()),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(reduce(&g, &cfg))));
    }
    group.finish();
}

fn bench_reordering(c: &mut Criterion) {
    // Cache-locality ablation: the same multi-source BFS workload on the
    // generator's id order vs BFS-relabelled vs degree-relabelled ids.
    let mut group = c.benchmark_group("reorder");
    let g = web_like(ClassParams::new(30_000, 17));
    let sources: Vec<NodeId> = (0..64).map(|i| i * 400).collect();
    let variants = [
        ("original", g.clone()),
        ("bfs_order", brics_graph::reorder::bfs_relabel(&g, 0).graph),
        ("degree_order", brics_graph::reorder::degree_relabel(&g).graph),
    ];
    for (name, graph) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(par_bfs_from_sources(&graph, &sources)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_bicc, bench_reductions, bench_reordering);
criterion_main!(benches);
