//! Criterion benchmarks of the end-to-end estimators — one per method,
//! across the four graph classes. These are the timing kernels behind the
//! speedup bars of Figures 4 and 6–9 (the harness binaries report the
//! same comparisons with quality attached).

use brics::{BricsEstimator, Method, SampleSize};
use brics_graph::generators::GraphClass;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BENCH_NODES: usize = 8_000;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    group.sample_size(10);
    for class in GraphClass::ALL {
        let g = class.generate(brics_graph::generators::ClassParams::new(BENCH_NODES, 11));
        for method in [Method::RandomSampling, Method::CR, Method::ICR, Method::Cumulative] {
            group.bench_with_input(
                BenchmarkId::new(method.name().replace('+', "_"), class.name()),
                &g,
                |b, g| {
                    b.iter(|| {
                        black_box(
                            BricsEstimator::new(method)
                                .sample(SampleSize::Fraction(0.4))
                                .seed(3)
                                .run(g)
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sampling_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_rate");
    group.sample_size(10);
    let g = GraphClass::Community.generate(brics_graph::generators::ClassParams::new(
        BENCH_NODES,
        13,
    ));
    for rate in [0.1, 0.2, 0.3, 0.4] {
        group.bench_with_input(
            BenchmarkId::new("cumulative", format!("{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    black_box(
                        BricsEstimator::new(Method::Cumulative)
                            .sample(SampleSize::Fraction(rate))
                            .seed(3)
                            .run(&g)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_sampling_rates);
criterion_main!(benches);
