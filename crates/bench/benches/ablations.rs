//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * chain **contraction** on/off — the weighted-edge extension that makes
//!   the chain technique pay off on road networks;
//! * **fixpoint** iteration of the removal passes on/off;
//! * forced **cut-vertex sampling** is structural (cannot be disabled), so
//!   its cost shows up via the `use_bcc` toggle instead.

use brics::{BricsEstimator, Method, ReductionConfig, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};
use brics_reduce::reduce;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const N: usize = 8_000;

fn bench_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_contraction");
    group.sample_size(10);
    for class in [GraphClass::Road, GraphClass::Community] {
        let g = class.generate(ClassParams::new(N, 21));
        for (label, reductions) in [
            ("contract", ReductionConfig::all()),
            ("no_contract", ReductionConfig::all().without_contraction()),
        ] {
            let method = Method::Custom { reductions, use_bcc: false };
            group.bench_with_input(BenchmarkId::new(label, class.name()), &g, |b, g| {
                b.iter(|| {
                    black_box(
                        BricsEstimator::new(method)
                            .sample(SampleSize::Fraction(0.4))
                            .seed(5)
                            .run(g)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fixpoint");
    let g = GraphClass::Web.generate(ClassParams::new(N, 22));
    for (label, cfg) in [
        ("single_pass", ReductionConfig::all()),
        ("fixpoint", ReductionConfig::all().with_fixpoint()),
    ] {
        group.bench_function(label, |b| b.iter(|| black_box(reduce(&g, &cfg))));
    }
    group.finish();
}

fn bench_bcc_toggle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bcc");
    group.sample_size(10);
    for class in [GraphClass::Web, GraphClass::Social] {
        let g = class.generate(ClassParams::new(N, 23));
        for (label, use_bcc) in [("bcc", true), ("flat", false)] {
            let method = Method::Custom { reductions: ReductionConfig::all(), use_bcc };
            group.bench_with_input(BenchmarkId::new(label, class.name()), &g, |b, g| {
                b.iter(|| {
                    black_box(
                        BricsEstimator::new(method)
                            .sample(SampleSize::Fraction(0.4))
                            .seed(5)
                            .run(g)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_contraction, bench_fixpoint, bench_bcc_toggle);
criterion_main!(benches);
