//! Property tests for the graph substrate: builder normalisation, IO
//! round-trips, traversal agreement, and generator invariants.

use brics_graph::generators::{
    barabasi_albert, gnm_random_connected, rmat, ClassParams, GraphClass,
};
use brics_graph::io::{read_edge_list_from, read_mtx_from, write_edge_list_to, write_mtx_to};
use brics_graph::traversal::{
    bfs_distances, par_bfs_accumulate_ctl_with, DialBfs, HybridBfs, HybridParams, Kernel,
    KernelConfig, ParFrontierBfs,
};
use brics_graph::{GraphBuilder, NodeId, RunControl, RunOutcome, INFINITE_DIST};
use proptest::prelude::*;

/// Arbitrary edge soup over up to 30 vertices — may contain self-loops,
/// duplicates and both orientations.
fn edge_soup() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (1usize..30).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..3 * n);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The builder always produces a valid, simple, symmetric CSR.
    #[test]
    fn builder_normalises_any_soup((n, edges) in edge_soup()) {
        let g = GraphBuilder::from_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_nodes(), n);
        // Idempotent: rebuilding from the built edges is identity.
        let again = GraphBuilder::from_edges(n, &g.edges().collect::<Vec<_>>());
        prop_assert_eq!(again, g);
    }

    /// Edge-list IO round-trips exactly.
    #[test]
    fn edge_list_roundtrip((n, edges) in edge_soup()) {
        let g = GraphBuilder::from_edges(n, &edges);
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let g2 = read_edge_list_from(buf.as_slice()).unwrap();
        // Vertex count may shrink (trailing isolated vertices have no edges
        // to record); everything with an edge round-trips.
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    /// MatrixMarket IO round-trips exactly (it records the vertex count).
    #[test]
    fn mtx_roundtrip((n, edges) in edge_soup()) {
        let g = GraphBuilder::from_edges(n, &edges);
        let mut buf = Vec::new();
        write_mtx_to(&g, &mut buf).unwrap();
        let g2 = read_mtx_from(buf.as_slice()).unwrap();
        prop_assert_eq!(g2, g);
    }

    /// Dial with unit weights equals plain BFS from every source.
    #[test]
    fn dial_equals_bfs((n, edges) in edge_soup()) {
        let g = GraphBuilder::from_edges(n, &edges);
        let mut dial = DialBfs::new(n);
        for s in 0..n as NodeId {
            dial.run_with(&g, None, s, |_, _| {});
            prop_assert_eq!(&dial.distances()[..n], &bfs_distances(&g, s)[..]);
        }
    }

    /// The direction-optimizing and frontier-parallel kernels agree with
    /// plain BFS — identical distance arrays and `(reached, Σd)` — for
    /// every heuristic preset, on arbitrary (possibly disconnected) soups.
    #[test]
    fn kernels_agree_on_any_soup((n, edges) in edge_soup(), s_raw in 0u32..30) {
        let g = GraphBuilder::from_edges(n, &edges);
        let s = s_raw % n as u32;
        let reference = bfs_distances(&g, s);
        let finite = reference.iter().filter(|&&d| d != INFINITE_DIST);
        let expect = (finite.clone().count(), finite.map(|&d| d as u64).sum::<u64>());
        for params in [
            HybridParams::default(),
            HybridParams::always_top_down(),
            HybridParams::eager_bottom_up(),
        ] {
            let mut hy = HybridBfs::with_params(n, params);
            let got = hy.run_with(&g, s, |_, _| {});
            prop_assert_eq!(&hy.distances()[..n], &reference[..]);
            prop_assert_eq!(got, expect);
            let mut fp = ParFrontierBfs::with_params(n, params);
            let got = fp.run(&g, s);
            prop_assert_eq!(&fp.distances()[..n], &reference[..]);
            prop_assert_eq!(got, expect);
        }
    }

    /// Farness accumulation is bit-identical across every kernel config
    /// and both scheduler paths (source-parallel and, inside a 4-thread
    /// pool with fewer sources than threads, frontier-parallel).
    #[test]
    fn accumulation_invariant_across_kernels(n in 10usize..60, seed in any::<u64>()) {
        let g = gnm_random_connected(n, 2 * n, seed);
        let sources = [0 as NodeId, (n / 2) as NodeId];
        let mut baseline = vec![0u64; n];
        par_bfs_accumulate_ctl_with(
            &g, &sources, &mut baseline, &RunControl::new(),
            &KernelConfig::new(Kernel::TopDown),
        ).unwrap();
        for kernel in [Kernel::Auto, Kernel::Hybrid, Kernel::MsBfs] {
            let cfg = KernelConfig::new(kernel);
            let mut acc = vec![0u64; n];
            par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &RunControl::new(), &cfg)
                .unwrap();
            prop_assert_eq!(&acc, &baseline);
            let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            let mut acc = vec![0u64; n];
            pool.install(|| {
                par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &RunControl::new(), &cfg)
            }).unwrap();
            prop_assert_eq!(&acc, &baseline);
        }
    }

    /// MS-BFS batching is bit-identical to per-source BFS for any source
    /// multiset — including duplicated sources, ragged final batches
    /// (`sources % 64 != 0`) and multi-batch plans — on both scheduler
    /// placements (serial sweeps in a parallel batch loop, and parallel
    /// sweeps over sequential batches).
    #[test]
    fn msbfs_batches_invariant_for_ragged_multisets(
        n in 10usize..60,
        k in 1usize..150,
        seed in any::<u64>(),
    ) {
        let g = gnm_random_connected(n, 2 * n, seed);
        let sources: Vec<NodeId> =
            (0..k).map(|i| ((seed as usize + i * 7) % n) as NodeId).collect();
        let mut baseline = vec![0u64; n];
        let base = par_bfs_accumulate_ctl_with(
            &g, &sources, &mut baseline, &RunControl::new(),
            &KernelConfig::new(Kernel::TopDown),
        ).unwrap();
        let cfg = KernelConfig::new(Kernel::MsBfs);
        for threads in [1usize, 4] {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut acc = vec![0u64; n];
            let run = pool.install(|| {
                par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &RunControl::new(), &cfg)
            }).unwrap();
            prop_assert_eq!(&acc, &baseline);
            prop_assert_eq!(&run.per_source, &base.per_source);
        }
    }

    /// An already-expired deadline leaves the accumulator untouched and
    /// reports every source as skipped — the same partial-soundness
    /// contract for every kernel and both scheduler paths.
    #[test]
    fn expired_deadline_sound_across_kernels(n in 10usize..50, seed in any::<u64>()) {
        let g = gnm_random_connected(n, 2 * n, seed);
        let sources = [0 as NodeId, 1 as NodeId];
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        for kernel in [Kernel::TopDown, Kernel::Auto, Kernel::Hybrid, Kernel::MsBfs] {
            for threads in [1usize, 4] {
                let pool =
                    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let mut acc = vec![0u64; n];
                let run = pool.install(|| {
                    par_bfs_accumulate_ctl_with(
                        &g, &sources, &mut acc, &ctl, &KernelConfig::new(kernel),
                    )
                }).unwrap();
                prop_assert_eq!(run.outcome, RunOutcome::Deadline);
                prop_assert!(run.per_source.iter().all(Option::is_none));
                prop_assert!(acc.iter().all(|&x| x == 0));
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(s,u) − d(s,v)| ≤ 1 for every edge {u,v} in the same component.
    #[test]
    fn bfs_edge_lipschitz((n, edges) in edge_soup(), s_raw in 0u32..30) {
        let g = GraphBuilder::from_edges(n, &edges);
        let s = s_raw % n as u32;
        let d = bfs_distances(&g, s);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != brics_graph::INFINITE_DIST {
                prop_assert!(dv != brics_graph::INFINITE_DIST);
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({},{})", u, v);
            }
        }
    }

    /// Class generators always produce connected simple graphs near the
    /// target size, for arbitrary seeds.
    #[test]
    fn class_generators_robust(seed in any::<u64>(), which in 0usize..4, n in 64usize..600) {
        let class = GraphClass::ALL[which];
        let g = class.generate(ClassParams::new(n, seed));
        prop_assert!(g.validate().is_ok());
        prop_assert!(brics_graph::connectivity::is_connected(&g));
        prop_assert!(g.num_nodes() >= 54, "{} produced only {} nodes for target {}", class.name(), g.num_nodes(), n);
    }

    /// Model generators respect their structural contracts.
    #[test]
    fn model_generators_robust(seed in any::<u64>()) {
        let ba = barabasi_albert(120, 3, seed);
        prop_assert!(ba.nodes().all(|v| ba.degree(v) >= 3));
        prop_assert!(brics_graph::connectivity::is_connected(&ba));

        let gnm = gnm_random_connected(60, 100, seed);
        prop_assert!(brics_graph::connectivity::is_connected(&gnm));
        prop_assert!(gnm.num_edges() <= 100);

        let rm = rmat(8, 600, 0.45, 0.25, 0.15, seed);
        prop_assert!(brics_graph::connectivity::is_connected(&rm));
        prop_assert_eq!(rm.num_nodes(), 256);
    }

    /// Weighted builder: min-weight dedup and arc alignment hold for any
    /// weighted soup.
    #[test]
    fn weighted_builder_sound(
        (n, edges) in edge_soup(),
        ws in proptest::collection::vec(1u32..20, 0..90),
    ) {
        let triples: Vec<(NodeId, NodeId, u32)> = edges
            .iter()
            .zip(ws.iter().cycle())
            .map(|(&(u, v), &w)| (u, v, w))
            .collect();
        let (g, weights) = brics_graph::weighted::build_weighted(n, &triples);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(weights.len(), g.num_arcs());
        for (u, v) in g.edges() {
            let w_uv = brics_graph::weighted::edge_weight(&g, &weights, u, v).unwrap();
            let w_vu = brics_graph::weighted::edge_weight(&g, &weights, v, u).unwrap();
            prop_assert_eq!(w_uv, w_vu, "asymmetric weight on ({},{})", u, v);
            // Must be the minimum of all parallel inputs.
            let min_in = triples
                .iter()
                .filter(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
                .map(|&(_, _, w)| w)
                .min()
                .unwrap();
            prop_assert_eq!(w_uv, min_in);
        }
    }
}

#[test]
fn subgraph_extraction_preserves_distances_within_blocks() {
    // Extract a clique from a larger graph: internal distances must match.
    let g = gnm_random_connected(40, 80, 9);
    let verts: Vec<NodeId> = (0..15).collect();
    let sub = brics_graph::InducedSubgraph::extract(&g, &verts);
    for (l, &gl) in sub.local_to_global.iter().enumerate() {
        assert_eq!(sub.to_local(gl), Some(l as NodeId));
    }
}
