//! Property-based tests (proptest) for the telemetry histograms: bucket
//! boundaries tile the `u64` domain correctly, shard placement never
//! changes the merged snapshot, and reported quantiles are monotone and
//! bounded by the data on arbitrary observation streams.

use brics_graph::telemetry::histogram::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

/// Strategy: an observation stream mixing the interesting regions of the
/// domain — zero, small values, power-of-two boundaries and huge values —
/// so bucket edges actually get hit.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    let value = prop_oneof![
        Just(0u64),
        1u64..=16,
        (0u32..64).prop_map(|b| 1u64 << b),
        (1u32..64).prop_map(|b| (1u64 << b) - 1),
        any::<u64>(),
    ];
    proptest::collection::vec(value, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value falls in exactly the bucket whose bounds contain it.
    #[test]
    fn bucket_boundaries_are_correct(v in any::<u64>()) {
        let index = bucket_index(v);
        prop_assert!(index < NUM_BUCKETS);
        let (low, high) = bucket_bounds(index);
        prop_assert!(low <= v && v <= high, "{v} outside [{low}, {high}] of bucket {index}");
        // The neighbouring buckets do NOT contain it.
        if index > 0 {
            prop_assert!(bucket_bounds(index - 1).1 < v);
        }
        if index + 1 < NUM_BUCKETS {
            prop_assert!(bucket_bounds(index + 1).0 > v);
        }
    }

    /// Spraying a stream across arbitrary shards merges to exactly the
    /// single-shard reference: placement is an implementation detail.
    #[test]
    fn shard_merge_equals_single_shard(
        values in observations(),
        shards in proptest::collection::vec(any::<usize>(), 200),
    ) {
        let sharded = Histogram::new();
        let flat = Histogram::new();
        for (v, s) in values.iter().zip(shards.iter()) {
            sharded.observe_in_shard(*s, *v);
            flat.observe_in_shard(0, *v);
        }
        prop_assert_eq!(sharded.merged(), flat.merged());
    }

    /// Quantiles are monotone in q, bounded by the exact maximum, and the
    /// snapshot's aggregates match the stream.
    #[test]
    fn quantiles_are_monotone_and_bounded(values in observations()) {
        let h = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            h.observe_in_shard(i, v);
        }
        let m = h.merged();
        prop_assert_eq!(m.count, values.len() as u64);
        prop_assert_eq!(m.max, values.iter().copied().max().unwrap_or(0));
        let mut sum = 0u64;
        for &v in &values {
            sum = sum.wrapping_add(v);
        }
        prop_assert_eq!(m.sum, sum);

        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut prev = 0u64;
        for (i, &q) in qs.iter().enumerate() {
            let x = m.quantile(q);
            prop_assert!(x <= m.max, "q{q}: {x} > max {}", m.max);
            if i > 0 {
                prop_assert!(x >= prev, "quantile not monotone at q{q}: {x} < {prev}");
            }
            prev = x;
        }
        if !values.is_empty() {
            // A quantile never under-reports below the true value at that
            // rank (bucket upper bounds only round up).
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &q in &qs[1..] {
                let rank = ((q * m.count as f64).ceil() as usize).clamp(1, sorted.len());
                prop_assert!(
                    m.quantile(q) >= sorted[rank - 1],
                    "q{q} reported {} below true {}",
                    m.quantile(q),
                    sorted[rank - 1]
                );
            }
        }
    }
}
