//! Pluggable backing storage for CSR buffers: owned heap vectors or a
//! read-only memory-mapped file view.
//!
//! The artifact reader (see [`crate::artifact`]) hands out CSR sections as
//! [`Buffer`]s. On 64-bit little-endian unix hosts a section whose file
//! offset respects the element alignment is served *in place* from the
//! mapping — no deserialization, no owned copy; on other platforms (or for
//! misaligned/foreign-endian data) the section is copy-converted into an
//! owned vector. Either way the result derefs to a plain slice, so the
//! traversal kernels never know which backend they run on.
//!
//! The mapping itself is a minimal unix `mmap(2)` via direct libc FFI —
//! deliberately no new dependency, consistent with the workspace's
//! vendored-shims policy — with a read-into-`Vec` fallback used on
//! non-unix targets, for empty files, and whenever `mmap` itself fails.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod ffi {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum FileData {
    /// A live read-only `mmap` of the whole file.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// The whole file read into an owned heap buffer.
    Heap(Vec<u8>),
}

/// A file's bytes, either memory-mapped read-only or read into the heap.
///
/// Shared behind an [`Arc`] so any number of [`Buffer`]s can alias
/// disjoint sections of one mapping; the mapping is released when the last
/// reference drops.
pub struct MappedFile {
    data: FileData,
}

// SAFETY: the mapping is created PROT_READ/MAP_PRIVATE and never written
// or remapped after construction, so shared references are safe to send
// and use across threads exactly like an immutable byte slice.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only, falling back to [`MappedFile::read`] when
    /// mapping is unavailable (non-unix target, empty file, or a failed
    /// `mmap` call). Only opening the file can fail.
    pub fn map(path: &Path) -> io::Result<Arc<MappedFile>> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            // Zero-length mappings are an error per POSIX; usize::try_from
            // guards 32-bit hosts against >4 GiB files.
            if let (true, Ok(len)) = (len > 0, usize::try_from(len)) {
                let ptr = unsafe {
                    ffi::mmap(
                        std::ptr::null_mut(),
                        len,
                        ffi::PROT_READ,
                        ffi::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != ffi::MAP_FAILED {
                    return Ok(Arc::new(MappedFile {
                        data: FileData::Mapped { ptr: ptr as *const u8, len },
                    }));
                }
            }
            Self::read_open(file)
        }
        #[cfg(not(unix))]
        {
            Self::read(path)
        }
    }

    /// Reads `path` entirely into an owned heap buffer (never maps).
    pub fn read(path: &Path) -> io::Result<Arc<MappedFile>> {
        Self::read_open(File::open(path)?)
    }

    fn read_open(mut file: File) -> io::Result<Arc<MappedFile>> {
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(Arc::new(MappedFile { data: FileData::Heap(bytes) }))
    }

    /// The file's bytes, regardless of backend.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives as
            // long as `self` (munmap happens only in Drop).
            FileData::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            FileData::Heap(v) => v,
        }
    }

    /// Whether the bytes are served by a live memory mapping (as opposed
    /// to the read-into-heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            #[cfg(unix)]
            FileData::Mapped { .. } => true,
            FileData::Heap(_) => false,
        }
    }

    /// Total number of bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let FileData::Mapped { ptr, len } = self.data {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe {
                ffi::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A contiguous run of `T`s backed either by an owned vector or by a
/// section of a [`MappedFile`] served in place.
///
/// Derefs to `&[T]`, so consumers are backend-agnostic. Mapped buffers
/// are only constructed through the checked section constructors
/// ([`Buffer::u32_section`], [`Buffer::usize_section`]), which fall back
/// to an owned copy whenever in-place reinterpretation would be unsound
/// (misalignment, wrong endianness, or an element-width mismatch).
pub enum Buffer<T: Copy> {
    /// Plain owned storage — what every in-memory constructor produces.
    Owned(Vec<T>),
    /// A window into a shared file: `len` elements starting at
    /// `byte_offset`. Invariant (upheld at construction): the window is in
    /// bounds, aligned for `T`, and the bytes are a valid native-endian
    /// `[T]` representation.
    Mapped {
        /// The file whose bytes back this buffer.
        file: Arc<MappedFile>,
        /// Byte offset of the first element within the file.
        byte_offset: usize,
        /// Number of elements.
        len: usize,
    },
}

/// How a section constructor materialized its [`Buffer`]: served in place
/// from the mapping, or copied into owned memory (with the byte count, for
/// the `artifact_bytes_{mapped,copied}` telemetry counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionLoad {
    /// The buffer aliases the file mapping; no bytes were copied.
    InPlace {
        /// Section length in bytes.
        bytes: u64,
    },
    /// The buffer owns a converted copy of the section.
    Copied {
        /// Section length in bytes.
        bytes: u64,
    },
}

impl<T: Copy> Buffer<T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Buffer::Owned(v) => v,
            Buffer::Mapped { file, byte_offset, len } => {
                let bytes = &file.bytes()[*byte_offset..*byte_offset + *len * size_of::<T>()];
                // SAFETY: construction checked bounds, alignment and
                // representation validity; the file is immutable and kept
                // alive by the Arc.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, *len) }
            }
        }
    }
}

impl Buffer<u32> {
    /// Wraps `len` little-endian `u32`s at `byte_offset` of `file`.
    /// Serves them in place when the host is little-endian and the offset
    /// is 4-byte aligned within the mapping; copy-converts otherwise.
    /// Errors when the window is out of bounds.
    pub fn u32_section(
        file: &Arc<MappedFile>,
        byte_offset: usize,
        len: usize,
    ) -> Result<(Self, SectionLoad), String> {
        let bytes = section_window(file, byte_offset, len, 4)?;
        let in_place = cfg!(target_endian = "little")
            && file.is_mapped()
            && bytes.as_ptr().align_offset(align_of::<u32>()) == 0;
        if in_place {
            let buf = Buffer::Mapped { file: Arc::clone(file), byte_offset, len };
            Ok((buf, SectionLoad::InPlace { bytes: bytes.len() as u64 }))
        } else {
            let v = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect();
            Ok((Buffer::Owned(v), SectionLoad::Copied { bytes: bytes.len() as u64 }))
        }
    }
}

impl Buffer<usize> {
    /// Wraps `len` little-endian `u64`s at `byte_offset` of `file` as
    /// `usize`s. In-place service additionally requires a 64-bit host (so
    /// `usize` and the stored `u64` have the same layout); otherwise each
    /// value is range-checked and copied.
    pub fn usize_section(
        file: &Arc<MappedFile>,
        byte_offset: usize,
        len: usize,
    ) -> Result<(Self, SectionLoad), String> {
        let bytes = section_window(file, byte_offset, len, 8)?;
        let in_place = cfg!(target_endian = "little")
            && size_of::<usize>() == 8
            && file.is_mapped()
            && bytes.as_ptr().align_offset(align_of::<usize>()) == 0;
        if in_place {
            let buf = Buffer::Mapped { file: Arc::clone(file), byte_offset, len };
            Ok((buf, SectionLoad::InPlace { bytes: bytes.len() as u64 }))
        } else {
            let v = bytes
                .chunks_exact(8)
                .map(|c| {
                    let raw = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                    usize::try_from(raw).map_err(|_| format!("offset {raw} exceeds usize"))
                })
                .collect::<Result<Vec<usize>, String>>()?;
            Ok((Buffer::Owned(v), SectionLoad::Copied { bytes: bytes.len() as u64 }))
        }
    }
}

/// Bounds-checks the byte window of a `len × elem_size` section.
fn section_window(
    file: &Arc<MappedFile>,
    byte_offset: usize,
    len: usize,
    elem_size: usize,
) -> Result<&[u8], String> {
    let byte_len = len
        .checked_mul(elem_size)
        .ok_or_else(|| "section length overflows".to_string())?;
    let end = byte_offset
        .checked_add(byte_len)
        .filter(|&e| e <= file.len())
        .ok_or_else(|| {
            format!(
                "section [{byte_offset}, +{byte_len}) out of bounds of {}-byte file",
                file.len()
            )
        })?;
    Ok(&file.bytes()[byte_offset..end])
}

impl<T: Copy> Deref for Buffer<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> From<Vec<T>> for Buffer<T> {
    fn from(v: Vec<T>) -> Self {
        Buffer::Owned(v)
    }
}

impl<T: Copy> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        match self {
            Buffer::Owned(v) => Buffer::Owned(v.clone()),
            Buffer::Mapped { file, byte_offset, len } => Buffer::Mapped {
                file: Arc::clone(file),
                byte_offset: *byte_offset,
                len: *len,
            },
        }
    }
}

impl<T: Copy + PartialEq> PartialEq for Buffer<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for Buffer<T> {}

impl<T: Copy + fmt::Debug> fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("brics_storage_{name}_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn map_serves_file_bytes() {
        let path = tmp("map", b"hello mapped world");
        let file = MappedFile::map(&path).unwrap();
        assert_eq!(file.bytes(), b"hello mapped world");
        assert_eq!(file.len(), 18);
        #[cfg(unix)]
        assert!(file.is_mapped(), "unix host should mmap a non-empty file");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_fallback_serves_same_bytes() {
        let path = tmp("read", b"heap copy");
        let file = MappedFile::read(&path).unwrap();
        assert_eq!(file.bytes(), b"heap copy");
        assert!(!file.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_heap() {
        let path = tmp("empty", b"");
        let file = MappedFile::map(&path).unwrap();
        assert!(file.is_empty());
        assert!(!file.is_mapped(), "zero-length mappings are invalid; heap expected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedFile::map(Path::new("/nonexistent/brics.artifact")).is_err());
    }

    #[test]
    fn u32_section_roundtrip_both_backends() {
        let values: Vec<u32> = vec![0, 1, 7, u32::MAX];
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp("u32", &bytes);
        for file in [MappedFile::map(&path).unwrap(), MappedFile::read(&path).unwrap()] {
            let (buf, load) = Buffer::u32_section(&file, 0, values.len()).unwrap();
            assert_eq!(&*buf, values.as_slice());
            match load {
                SectionLoad::InPlace { bytes } | SectionLoad::Copied { bytes } => {
                    assert_eq!(bytes, 16);
                }
            }
            if file.is_mapped() && cfg!(target_endian = "little") {
                assert_eq!(load, SectionLoad::InPlace { bytes: 16 });
                assert!(matches!(buf, Buffer::Mapped { .. }));
            } else {
                assert_eq!(load, SectionLoad::Copied { bytes: 16 });
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_u32_section_copies() {
        let mut bytes = vec![0u8]; // 1-byte prefix breaks 4-byte alignment
        bytes.extend_from_slice(&42u32.to_le_bytes());
        let path = tmp("misaligned", &bytes);
        let file = MappedFile::map(&path).unwrap();
        let (buf, load) = Buffer::u32_section(&file, 1, 1).unwrap();
        assert_eq!(&*buf, &[42u32]);
        if file.is_mapped() {
            assert_eq!(load, SectionLoad::Copied { bytes: 4 });
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn usize_section_roundtrip_and_bounds() {
        let values: Vec<u64> = vec![0, 3, 8, 1 << 40];
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp("usize", &bytes);
        let file = MappedFile::map(&path).unwrap();
        let (buf, _) = Buffer::usize_section(&file, 0, values.len()).unwrap();
        assert_eq!(&*buf, &[0usize, 3, 8, 1 << 40]);
        assert!(Buffer::<usize>::usize_section(&file, 0, values.len() + 1).is_err());
        assert!(Buffer::<u32>::u32_section(&file, 31, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_buffer_semantics() {
        let a: Buffer<u32> = vec![1, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*a, &[1, 2, 3]);
        assert_eq!(format!("{a:?}"), "[1, 2, 3]");
    }

    #[test]
    fn mapped_and_owned_compare_by_contents() {
        let mut bytes = Vec::new();
        for v in [9u32, 8, 7] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp("eq", &bytes);
        let file = MappedFile::map(&path).unwrap();
        let (mapped, _) = Buffer::u32_section(&file, 0, 3).unwrap();
        let owned: Buffer<u32> = vec![9, 8, 7].into();
        assert_eq!(mapped, owned);
        std::fs::remove_file(&path).unwrap();
    }
}
