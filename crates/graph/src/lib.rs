//! Graph substrate for the BRICS farness-centrality estimator.
//!
//! This crate provides everything the estimator crates build on:
//!
//! * [`CsrGraph`] — a compact, immutable, undirected graph in Compressed
//!   Sparse Row form, the representation every algorithm in the workspace
//!   operates on.
//! * [`GraphBuilder`] — normalises arbitrary edge lists into simple
//!   undirected graphs (self-loops dropped, parallel edges collapsed,
//!   directions symmetrised), exactly the preprocessing the paper applies to
//!   its datasets (§IV-B).
//! * [`io`] — plain edge-list and MatrixMarket readers/writers.
//! * [`generators`] — classic random-graph models plus per-class synthetic
//!   counterparts of the paper's web / social / community / road datasets.
//! * [`traversal`] — serial BFS with reusable buffers and rayon-parallel
//!   multi-source BFS, the computational kernel of farness estimation.
//! * [`connectivity`] — connected components and the "make connected"
//!   normalisation the paper uses.
//!
//! # Example
//!
//! ```
//! use brics_graph::{GraphBuilder, traversal::Bfs};
//!
//! let mut b = GraphBuilder::new(5);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! b.add_edge(3, 4);
//! let g = b.build();
//!
//! let mut bfs = Bfs::new(g.num_nodes());
//! let dist = bfs.run(&g, 0);
//! assert_eq!(dist[4], 4);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod builder;
pub mod connectivity;
pub mod control;
pub mod csr;
pub mod degree;
pub mod eccentricity;
pub mod generators;
pub mod hash;
pub mod io;
pub mod reorder;
pub mod storage;
pub mod subgraph;
pub mod telemetry;
pub mod traversal;
pub mod weighted;

pub use builder::GraphBuilder;
pub use control::{
    CancelToken, FaultArm, FaultKind, FaultPlan, FaultSite, FaultSiteStats, FaultTrigger,
    RunControl, RunOutcome,
};
pub use csr::CsrGraph;
pub use subgraph::InducedSubgraph;
pub use telemetry::{Counter, NullRecorder, Recorder, RunRecorder, RunReport};

/// Node identifier. Graphs in this workspace are bounded to `u32::MAX - 1`
/// vertices; 32-bit ids halve the memory traffic of the BFS kernels relative
/// to `usize` on 64-bit targets (see the CSR layout notes in [`csr`]).
pub type NodeId = u32;

/// Sentinel for "no node" / "unvisited" in dense arrays.
pub const INVALID_NODE: NodeId = NodeId::MAX;

/// Distance type used by BFS. `u32::MAX` marks unreachable.
pub type Dist = u32;

/// Sentinel distance for unreachable vertices.
pub const INFINITE_DIST: Dist = Dist::MAX;
