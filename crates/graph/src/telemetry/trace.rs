//! Timestamped span traces exportable as Chrome trace-event JSON.
//!
//! While [`Recorder::span`](super::Recorder::span) aggregates phase totals,
//! a `TraceBuffer` keeps *individual* timestamped spans — phase name,
//! start offset from the recorder's epoch, duration, recording thread — so
//! a run can be replayed on a timeline. [`chrome_trace_json`] renders the
//! collected events in the Chrome trace-event format (an array of `"ph":
//! "X"` complete events with microsecond timestamps), which loads directly
//! in Perfetto or `chrome://tracing`; nesting is inferred per thread from
//! interval containment, so `prepare` visually encloses `reduce`, which
//! encloses the per-rule spans.
//!
//! Buffers are sharded by thread like the histograms: recording a span is
//! one TLS read plus a push under an uncontended per-shard mutex.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::histogram::thread_index;

/// Cap on retained trace events; one event is 32 bytes, so the cap bounds
/// a pathological run at a few megabytes. Later events are dropped (and
/// counted) — the head of the timeline is the interesting part once a run
/// is this large.
pub const MAX_TRACE_EVENTS: usize = 1 << 18;

const NUM_SHARDS: usize = 8;

/// One timestamped span, offsets relative to the owning recorder's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Phase name (same names as the aggregated spans).
    pub name: &'static str,
    /// Start of the span, nanoseconds after the recorder was created.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense index of the recording thread (the report's `tid`).
    pub tid: u32,
}

/// Sharded collector of timestamped spans.
pub(crate) struct TraceBuffer {
    epoch: Instant,
    shards: Box<[Mutex<Vec<TraceEvent>>]>,
    admitted: AtomicUsize,
    dropped: AtomicU64,
}

impl TraceBuffer {
    pub(crate) fn new(epoch: Instant) -> Self {
        TraceBuffer {
            epoch,
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            admitted: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, name: &'static str, start: Instant, end: Instant) {
        if self.admitted.fetch_add(1, Ordering::Relaxed) >= MAX_TRACE_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tid = thread_index();
        let event = TraceEvent {
            name,
            start_ns: start.saturating_duration_since(self.epoch).as_nanos() as u64,
            dur_ns: end.saturating_duration_since(start).as_nanos() as u64,
            tid: (tid % u32::MAX as usize) as u32,
        };
        self.shards[tid % NUM_SHARDS].lock().expect("trace shard lock").push(event);
    }

    /// Merges all shards, sorted by start time (ties by thread then name,
    /// for deterministic output order).
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in self.shards.iter() {
            all.extend_from_slice(&shard.lock().expect("trace shard lock"));
        }
        all.sort_by_key(|e| (e.start_ns, e.tid, e.name));
        all
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Renders trace events as a Chrome trace-event JSON array (`"ph": "X"`
/// complete events, `ts`/`dur` in microseconds). The string loads as-is in
/// Perfetto / `chrome://tracing`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Phase names are static identifiers (no quotes/backslashes), so
        // plain interpolation produces valid JSON strings.
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"brics\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03}}}",
            e.name,
            e.tid,
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn buffer_with(events: &[(&'static str, u64, u64)]) -> (TraceBuffer, Instant) {
        let epoch = Instant::now();
        let buf = TraceBuffer::new(epoch);
        for &(name, start_ns, dur_ns) in events {
            let start = epoch + Duration::from_nanos(start_ns);
            buf.record(name, start, start + Duration::from_nanos(dur_ns));
        }
        (buf, epoch)
    }

    #[test]
    fn records_offsets_and_durations() {
        let (buf, _) = buffer_with(&[("prepare", 1_000, 5_000), ("reduce", 2_000, 1_000)]);
        let events = buf.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "prepare");
        assert_eq!(events[0].start_ns, 1_000);
        assert_eq!(events[0].dur_ns, 5_000);
        assert_eq!(events[1].name, "reduce");
        // Same thread recorded both.
        assert_eq!(events[0].tid, events[1].tid);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn events_sorted_by_start_time() {
        let (buf, _) = buffer_with(&[("late", 9_000, 10), ("early", 100, 10), ("mid", 5_000, 10)]);
        let names: Vec<_> = buf.events().iter().map(|e| e.name).collect();
        assert_eq!(names, ["early", "mid", "late"]);
    }

    #[test]
    fn cap_drops_and_counts() {
        let epoch = Instant::now();
        let buf = TraceBuffer::new(epoch);
        // Pretend the buffer already admitted the maximum.
        buf.admitted.store(MAX_TRACE_EVENTS, Ordering::Relaxed);
        buf.record("x", epoch, epoch);
        assert_eq!(buf.dropped(), 1);
        assert!(buf.events().is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let (buf, _) = buffer_with(&[("prepare", 1_500, 2_000_500)]);
        let json = chrome_trace_json(&buf.events());
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let array = value.as_array().unwrap();
        assert_eq!(array.len(), 1);
        let e = &array[0];
        assert_eq!(e.get("name").unwrap().as_str().unwrap(), "prepare");
        assert_eq!(e.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(e.get("cat").unwrap().as_str().unwrap(), "brics");
        assert!((e.get("ts").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-9);
        assert!((e.get("dur").unwrap().as_f64().unwrap() - 2000.5).abs() < 1e-9);
        assert_eq!(e.get("pid").unwrap().as_f64().unwrap(), 1.0);
    }

    #[test]
    fn empty_trace_is_valid_json_array() {
        let json = chrome_trace_json(&[]);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.as_array().unwrap().is_empty());
    }
}
