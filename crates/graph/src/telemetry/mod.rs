//! Zero-dependency run telemetry: phase spans, atomic counters, value
//! histograms, timestamped traces and a stable-schema JSON run report.
//!
//! Every layer that makes an invisible runtime decision — the reduction
//! pipeline, the BCT builder, the kernel scheduler, the cumulative engine
//! and the [`RunControl`](crate::control::RunControl) machinery — accepts a
//! `&R: Recorder` and emits counters/spans/observations into it. Two
//! implementations exist:
//!
//! * [`NullRecorder`] — the default. Every method is an empty default
//!   with `enabled() == false`; under static dispatch the calls
//!   monomorphise away, so un-instrumented runs pay nothing: no clock
//!   reads, no histogram or trace allocation.
//! * [`RunRecorder`] — thread-safe collection into atomic counters,
//!   sharded span tables, lock-free log-bucketed [`histogram`]s and an
//!   optional [`trace`] timeline, snapshotted into a [`RunReport`] whose
//!   JSON schema (`brics.run_report/v3`) is stable across releases.
//!
//! When the binary installs the [`memory::TrackingAllocator`], every
//! [`timed`]/[`timed_metric`] span additionally snapshots heap state
//! (bytes live at open, peak within the span — see [`MemSpan`]) and the
//! report's `memory` block carries live/peak bytes plus the plan-vs-actual
//! figures stamped by [`RunReport::stamp_planned_bytes`]. Without the
//! allocator every memory figure is zero and nothing else changes.
//!
//! Distribution metrics ([`Metric`]) complement the monotone [`Counter`]s:
//! a counter tells you *how much* work happened, a histogram tells you how
//! it was *spread* (p50/p90/p99/max per-source BFS time, frontier sizes,
//! per-level wall time, per-query latency). Timestamped traces
//! ([`trace`]) additionally preserve *when* each span ran, exportable as
//! Chrome trace-event JSON for Perfetto. A [`progress::ProgressMeter`]
//! can watch a shared recorder and print live heartbeats.
//!
//! The contract threaded through the estimator stack: attaching a recorder
//! NEVER changes results. Recorders only observe; all instrumented code
//! paths compute bit-identical outputs with either implementation (the
//! `telemetry_invariance` integration test pins this).
//!
//! # Example
//!
//! ```
//! use brics_graph::telemetry::{Counter, Metric, Recorder, RunRecorder};
//! use std::time::Duration;
//!
//! let rec = RunRecorder::new();
//! rec.incr(Counter::BfsSources);
//! rec.add(Counter::EdgesScanned, 1_000);
//! rec.span("bfs", Duration::from_millis(5));
//! rec.observe(Metric::FrontierSize, 17);
//! let report = rec.report();
//! assert_eq!(report.counters["bfs_sources"], 1);
//! assert_eq!(report.schema, "brics.run_report/v3");
//! let frontier = report.histograms.iter().find(|h| h.metric == "frontier_size").unwrap();
//! assert_eq!(frontier.count, 1);
//! assert_eq!(frontier.max, 17);
//! ```

pub mod histogram;
pub mod memory;
pub mod progress;
pub mod trace;

pub use histogram::{Histogram, HistogramSummary, MergedHistogram};
pub use memory::TrackingAllocator;
pub use progress::{ProgressConfig, ProgressMeter};
pub use trace::{chrome_trace_json, TraceEvent};

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of one monotone counter in a run report.
///
/// The discriminant doubles as the index into [`RunRecorder`]'s atomic
/// array; [`Counter::name`] is the stable snake_case key used in the JSON
/// report. Append new counters at the end — the names, not the positions,
/// are the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// BFS runs completed (one per finished source).
    BfsSources,
    /// BFS sources skipped because the run was interrupted first.
    BfsSourcesSkipped,
    /// Vertices reached, summed over all completed BFS runs.
    VerticesVisited,
    /// Arcs scanned, summed over all completed BFS runs. The instrumented
    /// drivers charge `num_arcs()` per completed source — the same
    /// convention the kernels benchmark uses — so `derived.mteps` in the
    /// report is directly comparable with `BENCH_kernels.json`.
    EdgesScanned,
    /// BFS levels expanded, summed over completed sources.
    FrontierLevels,
    /// Levels executed bottom-up by the direction-optimizing kernels.
    BottomUpLevels,
    /// Top-down ↔ bottom-up direction switches across all BFS runs.
    DirectionSwitches,
    /// Largest frontier (vertices) seen by any instrumented BFS level
    /// (max-type: updated with [`Recorder::max`]).
    PeakFrontier,
    /// Source batches dispatched to the serial top-down kernel.
    BatchesTopdown,
    /// Source batches dispatched to the serial direction-optimizing kernel.
    BatchesHybrid,
    /// Source batches dispatched to the frontier-parallel scheduler.
    BatchesFrontierParallel,
    /// Vertices removed by the identical-nodes rule (I).
    ReduceIdenticalRemoved,
    /// Chain-shaped vertices removed alongside identical nodes.
    ReduceIdenticalChainRemoved,
    /// Vertices removed by the redundant-chains rule (C).
    ReduceChainRemoved,
    /// Vertices removed by degree-2 chain contraction.
    ReduceContractedRemoved,
    /// Vertices removed by the redundant-nodes rule (R).
    ReduceRedundantRemoved,
    /// Fixpoint rounds the reduction pipeline executed.
    ReduceRounds,
    /// Vertices surviving reduction.
    ReduceSurvivingNodes,
    /// Edges surviving reduction.
    ReduceSurvivingEdges,
    /// Blocks in the block-cut tree.
    BctBlocks,
    /// Cut vertices in the block-cut tree.
    BctCutVertices,
    /// Phase-A tasks (cut-vertex BFS runs) in the cumulative engine.
    CumulativePhaseATasks,
    /// Phase-B tasks ((block, source) BFS runs) in the cumulative engine.
    CumulativePhaseBTasks,
    /// Record-homing restore rounds in the cumulative engine.
    CumulativeHomingRounds,
    /// Runs truncated by a [`RunControl`](crate::control::RunControl)
    /// deadline.
    DeadlineHits,
    /// Runs truncated by cooperative cancellation.
    Cancellations,
    /// Worker panics isolated by the fault-tolerance layer.
    PanicsIsolated,
    /// Memory-budget admissions that succeeded.
    MemoryAdmissions,
    /// Memory-budget admissions that were rejected.
    MemoryRejections,
    /// BFS sources a driver batch set out to run (charged up front, before
    /// any source finishes). `bfs_sources + bfs_sources_skipped` converges
    /// to this; the gap is the work still in flight — what the progress
    /// heartbeat's ETA is computed from.
    BfsSourcesPlanned,
    /// Faults fired by an armed
    /// [`FaultPlan`](crate::control::FaultPlan) across all sites.
    FaultsInjected,
    /// Quarantined sources re-attempted by the degradation ladder.
    FaultRetries,
    /// Sources permanently quarantined after exhausting their retries.
    SourcesQuarantined,
    /// Source batches (≤64 sources each) dispatched to the bit-parallel
    /// multi-source BFS kernel.
    BatchesMsbfs,
    /// BFS levels fully expanded by top-k verification sweeps that ended
    /// in a cut — the total depth the pruned BFS-cut traversals paid.
    TopkCutLevels,
    /// Top-k verification sweeps aborted early by the BFS-cut bound.
    TopkPrunedBfs,
    /// Bytes written to a prepared-graph artifact file by
    /// `PreparedGraph::save` (header, section table and payloads).
    ArtifactBytesWritten,
    /// CSR-section bytes served *in place* from a memory-mapped artifact
    /// (no owned copy was made).
    ArtifactBytesMapped,
    /// CSR-section bytes copied into owned memory while loading an
    /// artifact — the read-into-heap fallback, misaligned sections, or a
    /// foreign element layout. Zero on the pure mmap path.
    ArtifactBytesCopied,
    /// Runs truncated because *live tracked bytes* grew past the
    /// configured memory budget after admission (requires the
    /// [`memory::TrackingAllocator`] to be installed).
    MemoryLimitStops,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 40] = [
        Counter::BfsSources,
        Counter::BfsSourcesSkipped,
        Counter::VerticesVisited,
        Counter::EdgesScanned,
        Counter::FrontierLevels,
        Counter::BottomUpLevels,
        Counter::DirectionSwitches,
        Counter::PeakFrontier,
        Counter::BatchesTopdown,
        Counter::BatchesHybrid,
        Counter::BatchesFrontierParallel,
        Counter::ReduceIdenticalRemoved,
        Counter::ReduceIdenticalChainRemoved,
        Counter::ReduceChainRemoved,
        Counter::ReduceContractedRemoved,
        Counter::ReduceRedundantRemoved,
        Counter::ReduceRounds,
        Counter::ReduceSurvivingNodes,
        Counter::ReduceSurvivingEdges,
        Counter::BctBlocks,
        Counter::BctCutVertices,
        Counter::CumulativePhaseATasks,
        Counter::CumulativePhaseBTasks,
        Counter::CumulativeHomingRounds,
        Counter::DeadlineHits,
        Counter::Cancellations,
        Counter::PanicsIsolated,
        Counter::MemoryAdmissions,
        Counter::MemoryRejections,
        Counter::BfsSourcesPlanned,
        Counter::FaultsInjected,
        Counter::FaultRetries,
        Counter::SourcesQuarantined,
        Counter::BatchesMsbfs,
        Counter::TopkCutLevels,
        Counter::TopkPrunedBfs,
        Counter::ArtifactBytesWritten,
        Counter::ArtifactBytesMapped,
        Counter::ArtifactBytesCopied,
        Counter::MemoryLimitStops,
    ];

    /// Stable snake_case key for this counter in the JSON report.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::BfsSources => "bfs_sources",
            Counter::BfsSourcesSkipped => "bfs_sources_skipped",
            Counter::VerticesVisited => "vertices_visited",
            Counter::EdgesScanned => "edges_scanned",
            Counter::FrontierLevels => "frontier_levels",
            Counter::BottomUpLevels => "bottom_up_levels",
            Counter::DirectionSwitches => "direction_switches",
            Counter::PeakFrontier => "peak_frontier",
            Counter::BatchesTopdown => "batches_topdown",
            Counter::BatchesHybrid => "batches_hybrid",
            Counter::BatchesFrontierParallel => "batches_frontier_parallel",
            Counter::ReduceIdenticalRemoved => "reduce_identical_removed",
            Counter::ReduceIdenticalChainRemoved => "reduce_identical_chain_removed",
            Counter::ReduceChainRemoved => "reduce_chain_removed",
            Counter::ReduceContractedRemoved => "reduce_contracted_removed",
            Counter::ReduceRedundantRemoved => "reduce_redundant_removed",
            Counter::ReduceRounds => "reduce_rounds",
            Counter::ReduceSurvivingNodes => "reduce_surviving_nodes",
            Counter::ReduceSurvivingEdges => "reduce_surviving_edges",
            Counter::BctBlocks => "bct_blocks",
            Counter::BctCutVertices => "bct_cut_vertices",
            Counter::CumulativePhaseATasks => "cumulative_phase_a_tasks",
            Counter::CumulativePhaseBTasks => "cumulative_phase_b_tasks",
            Counter::CumulativeHomingRounds => "cumulative_homing_rounds",
            Counter::DeadlineHits => "deadline_hits",
            Counter::Cancellations => "cancellations",
            Counter::PanicsIsolated => "panics_isolated",
            Counter::MemoryAdmissions => "memory_admissions",
            Counter::MemoryRejections => "memory_rejections",
            Counter::BfsSourcesPlanned => "bfs_sources_planned",
            Counter::FaultsInjected => "faults_injected_total",
            Counter::FaultRetries => "fault_retries",
            Counter::SourcesQuarantined => "sources_quarantined",
            Counter::BatchesMsbfs => "batches_msbfs",
            Counter::TopkCutLevels => "topk_cut_levels",
            Counter::TopkPrunedBfs => "topk_pruned_bfs",
            Counter::ArtifactBytesWritten => "artifact_bytes_written",
            Counter::ArtifactBytesMapped => "artifact_bytes_mapped",
            Counter::ArtifactBytesCopied => "artifact_bytes_copied",
            Counter::MemoryLimitStops => "memory_limit_stops",
        }
    }
}

/// Identifier of one distribution metric: a stream of values summarized
/// as a histogram in the run report, where a [`Counter`] would only keep
/// the total. Same schema rule as counters: the [`Metric::name`] strings,
/// not the positions, are stable; append new metrics at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Wall time of one complete single-source BFS, in nanoseconds.
    SourceBfsNanos,
    /// Vertices in the frontier fed into one BFS level.
    FrontierSize,
    /// Wall time of one frontier-parallel BFS level, in nanoseconds.
    LevelNanos,
    /// Wall time of one estimator query (an `estimate` span), nanoseconds.
    QueryNanos,
    /// Live sources (bits still spreading) fed into one MS-BFS sweep —
    /// the batching-efficiency signal: occupancy near 64 means the word
    /// ops amortize well, a long tail of near-1 sweeps means they do not.
    BatchOccupancy,
    /// Wall time of one MS-BFS level-synchronous sweep, in nanoseconds.
    SweepNanos,
    /// Depth (levels fully expanded) at which a top-k verification sweep
    /// was cut by the BFS-cut bound — shallow cuts mean cheap pruning.
    CutDepth,
}

impl Metric {
    /// Every metric, in report order.
    pub const ALL: [Metric; 7] = [
        Metric::SourceBfsNanos,
        Metric::FrontierSize,
        Metric::LevelNanos,
        Metric::QueryNanos,
        Metric::BatchOccupancy,
        Metric::SweepNanos,
        Metric::CutDepth,
    ];

    /// Stable snake_case key for this metric in the JSON report.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::SourceBfsNanos => "source_bfs_ns",
            Metric::FrontierSize => "frontier_size",
            Metric::LevelNanos => "level_ns",
            Metric::QueryNanos => "query_ns",
            Metric::BatchOccupancy => "batch_occupancy",
            Metric::SweepNanos => "sweep_ns",
            Metric::CutDepth => "cut_depth",
        }
    }

    /// Unit of the observed values, for report consumers.
    pub const fn unit(self) -> &'static str {
        match self {
            Metric::SourceBfsNanos | Metric::LevelNanos | Metric::QueryNanos => "ns",
            Metric::FrontierSize => "vertices",
            Metric::BatchOccupancy => "sources",
            Metric::SweepNanos => "ns",
            Metric::CutDepth => "levels",
        }
    }
}

const NUM_METRICS: usize = Metric::ALL.len();

/// Heap snapshot for one timed span, captured by [`timed`] /
/// [`timed_metric`] from the [`memory`] ledger (all-zero when the
/// tracking allocator is not installed).
///
/// `peak_bytes` is exact when the span advanced the process high-watermark
/// (the common case for the scratch-heavy phases the plan models); when it
/// did not, the value falls back to `max(open, close)` — a sound
/// *non-inflating* bound, never above the true in-span peak's watermark.
/// Concurrent spans each observe the shared process counters, so a span's
/// footprint attributes all threads' traffic during its window; per-phase
/// numbers are upper bounds on that phase's own allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemSpan {
    /// Tracked live bytes when the span opened.
    pub open_bytes: u64,
    /// Peak tracked live bytes within the span (see above for the exact
    /// semantics when the process watermark did not move).
    pub peak_bytes: u64,
}

impl MemSpan {
    /// Bytes the span grew the heap above its opening level — the figure
    /// compared against the planning estimates.
    pub fn footprint(&self) -> u64 {
        self.peak_bytes.saturating_sub(self.open_bytes)
    }
}

/// Observer for run telemetry. All methods default to no-ops so
/// [`NullRecorder`] costs nothing; implementors override what they store.
///
/// Call sites that would pay to *prepare* data for a recorder (formatting
/// event details, harvesting per-BFS stats, reading the clock around a
/// per-level region) must guard the preparation behind
/// [`Recorder::enabled`] — and timestamp capture for traces behind
/// [`Recorder::trace_enabled`] — so disabled recorders skip it entirely.
pub trait Recorder: Sync {
    /// Whether this recorder stores anything. `false` lets call sites
    /// skip preparing data that would be dropped.
    fn enabled(&self) -> bool {
        false
    }

    /// Add `n` to a monotone counter.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Increment a monotone counter by one.
    fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Raise a max-type counter to at least `value`.
    fn max(&self, counter: Counter, value: u64) {
        let _ = (counter, value);
    }

    /// Record one observation of a distribution metric.
    fn observe(&self, metric: Metric, value: u64) {
        let _ = (metric, value);
    }

    /// Record one timed execution of the named phase. Repeated spans for
    /// the same phase accumulate (total time + hit count).
    fn span(&self, phase: &'static str, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// [`Recorder::span`] with a heap snapshot attached. Defaults to
    /// dropping the snapshot and forwarding to `span`, so existing
    /// recorders keep working; [`RunRecorder`] overrides it to fold the
    /// snapshot into the phase table.
    fn span_mem(&self, phase: &'static str, elapsed: Duration, mem: MemSpan) {
        let _ = mem;
        self.span(phase, elapsed);
    }

    /// Whether [`Recorder::trace_span`] stores anything. Lets call sites
    /// skip the extra end-timestamp bookkeeping when only aggregated
    /// spans are collected.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Record one *timestamped* span for the trace timeline. Unlike
    /// [`Recorder::span`], occurrences are kept individually with their
    /// start time and recording thread.
    fn trace_span(&self, phase: &'static str, start: Instant, end: Instant) {
        let _ = (phase, start, end);
    }

    /// Record a discrete event (deadline hit, isolated panic, …).
    fn event(&self, kind: &'static str, detail: &str) {
        let _ = (kind, detail);
    }
}

/// Closes the heap snapshot opened before a timed region: exact when the
/// region advanced the process high-watermark, a `max(open, close)`
/// fallback (sound, never inflating) otherwise. See [`MemSpan`].
fn close_mem_span(open_bytes: u64, peak_before: u64) -> MemSpan {
    let peak_after = memory::peak_bytes();
    let peak_bytes = if peak_after > peak_before {
        peak_after
    } else {
        open_bytes.max(memory::live_bytes())
    };
    MemSpan { open_bytes, peak_bytes }
}

/// Runs `f`, recording its wall time as a span named `phase` when the
/// recorder is enabled (and as a timestamped trace event when tracing is
/// on), with a [`MemSpan`] heap snapshot attached when the tracking
/// allocator is installed. With a disabled recorder this is exactly
/// `f()` — not even the clock is read.
pub fn timed<R: Recorder, T>(rec: &R, phase: &'static str, f: impl FnOnce() -> T) -> T {
    if !rec.enabled() {
        return f();
    }
    let open_bytes = memory::live_bytes();
    let peak_before = memory::peak_bytes();
    let start = Instant::now();
    let out = f();
    let end = Instant::now();
    rec.span_mem(phase, end - start, close_mem_span(open_bytes, peak_before));
    if rec.trace_enabled() {
        rec.trace_span(phase, start, end);
    }
    out
}

/// [`timed`] that additionally feeds the elapsed nanoseconds into a
/// distribution metric — for phases whose *per-occurrence* spread matters
/// (e.g. each `estimate` query contributes one `query_ns` observation).
pub fn timed_metric<R: Recorder, T>(
    rec: &R,
    phase: &'static str,
    metric: Metric,
    f: impl FnOnce() -> T,
) -> T {
    if !rec.enabled() {
        return f();
    }
    let open_bytes = memory::live_bytes();
    let peak_before = memory::peak_bytes();
    let start = Instant::now();
    let out = f();
    let end = Instant::now();
    rec.span_mem(phase, end - start, close_mem_span(open_bytes, peak_before));
    rec.observe(metric, (end - start).as_nanos() as u64);
    if rec.trace_enabled() {
        rec.trace_span(phase, start, end);
    }
    out
}

/// Records how a controlled run ended: a no-op for complete runs, a
/// counter bump plus an event for deadline hits and cancellations.
pub fn record_outcome<R: Recorder>(rec: &R, outcome: crate::control::RunOutcome, what: &str) {
    if !rec.enabled() {
        return;
    }
    match outcome {
        crate::control::RunOutcome::Complete => {}
        crate::control::RunOutcome::Deadline => {
            rec.incr(Counter::DeadlineHits);
            rec.event("deadline", what);
        }
        crate::control::RunOutcome::Cancelled => {
            rec.incr(Counter::Cancellations);
            rec.event("cancelled", what);
        }
        crate::control::RunOutcome::MemoryLimit => {
            rec.incr(Counter::MemoryLimitStops);
            rec.event("memory_limit", what);
        }
        crate::control::RunOutcome::Degraded => {
            rec.event("degraded", what);
        }
    }
}

/// Records one isolated worker panic.
pub fn record_panic<R: Recorder>(rec: &R, detail: &str) {
    if !rec.enabled() {
        return;
    }
    rec.incr(Counter::PanicsIsolated);
    rec.event("panic_isolated", detail);
}

/// [`RunControl::admit_memory`](crate::control::RunControl::admit_memory)
/// with the verdict recorded (admission or rejection).
pub fn admit_memory_rec<R: Recorder>(
    ctl: &crate::control::RunControl,
    required_bytes: u64,
    rec: &R,
) -> Result<(), crate::control::MemoryBudgetExceeded> {
    match ctl.admit_memory(required_bytes) {
        Ok(()) => {
            if rec.enabled() {
                rec.incr(Counter::MemoryAdmissions);
            }
            Ok(())
        }
        Err(e) => {
            if rec.enabled() {
                rec.incr(Counter::MemoryRejections);
                rec.event("memory_rejected", &format!("required {required_bytes} bytes"));
            }
            Err(e)
        }
    }
}

/// The no-overhead default recorder: every method is the no-op default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Blanket impl so `&R` works wherever `R: Recorder` is expected.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn add(&self, counter: Counter, n: u64) {
        (**self).add(counter, n);
    }
    fn max(&self, counter: Counter, value: u64) {
        (**self).max(counter, value);
    }
    fn observe(&self, metric: Metric, value: u64) {
        (**self).observe(metric, value);
    }
    fn span(&self, phase: &'static str, elapsed: Duration) {
        (**self).span(phase, elapsed);
    }
    fn span_mem(&self, phase: &'static str, elapsed: Duration, mem: MemSpan) {
        (**self).span_mem(phase, elapsed, mem);
    }
    fn trace_enabled(&self) -> bool {
        (**self).trace_enabled()
    }
    fn trace_span(&self, phase: &'static str, start: Instant, end: Instant) {
        (**self).trace_span(phase, start, end);
    }
    fn event(&self, kind: &'static str, detail: &str) {
        (**self).event(kind, detail);
    }
}

/// An optional recorder: `None` behaves exactly like [`NullRecorder`]
/// (every method a no-op, `enabled()` false), `Some(r)` delegates to `r`.
/// Lets call sites choose at runtime whether to record without giving up
/// static dispatch — e.g. a CLI that only builds a [`RunRecorder`] when
/// `--metrics` was passed.
impl<R: Recorder> Recorder for Option<R> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(Recorder::enabled)
    }
    fn add(&self, counter: Counter, n: u64) {
        if let Some(r) = self {
            r.add(counter, n);
        }
    }
    fn max(&self, counter: Counter, value: u64) {
        if let Some(r) = self {
            r.max(counter, value);
        }
    }
    fn observe(&self, metric: Metric, value: u64) {
        if let Some(r) = self {
            r.observe(metric, value);
        }
    }
    fn span(&self, phase: &'static str, elapsed: Duration) {
        if let Some(r) = self {
            r.span(phase, elapsed);
        }
    }
    fn span_mem(&self, phase: &'static str, elapsed: Duration, mem: MemSpan) {
        if let Some(r) = self {
            r.span_mem(phase, elapsed, mem);
        }
    }
    fn trace_enabled(&self) -> bool {
        self.as_ref().is_some_and(Recorder::trace_enabled)
    }
    fn trace_span(&self, phase: &'static str, start: Instant, end: Instant) {
        if let Some(r) = self {
            r.trace_span(phase, start, end);
        }
    }
    fn event(&self, kind: &'static str, detail: &str) {
        if let Some(r) = self {
            r.event(kind, detail);
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

/// Cap on stored events so a pathological run cannot balloon the report.
/// Split into a keep-head half (the run's opening) and a keep-tail ring
/// (its most recent events), so late events — deadline expiry, isolated
/// panics — survive even when millions of events fire in between.
const MAX_EVENTS: usize = 64;
const EVENT_HEAD: usize = MAX_EVENTS / 2;
const EVENT_TAIL: usize = MAX_EVENTS - EVENT_HEAD;

/// Number of independent span tables. Spans are recorded once per *phase
/// execution* (potentially once per BFS level under frontier parallelism),
/// so the table is sharded by thread like the histograms; a recording is
/// a push/scan under an uncontended per-shard mutex.
const SPAN_SHARDS: usize = 8;

/// Accumulated observations of one phase within one shard: elapsed time,
/// occurrence count and — when the tracking allocator is installed — the
/// heap envelope across occurrences. `mem_open` keeps the *minimum*
/// bytes-at-open (`u64::MAX` until a snapshot arrives), `mem_peak` the
/// maximum in-span peak, and `mem_footprint` the maximum *per-occurrence*
/// growth (tracked per occurrence rather than recomputed from the
/// aggregates, which would pair one occurrence's low open with another's
/// high peak and overstate the phase).
#[derive(Clone, Copy)]
struct SpanEntry {
    name: &'static str,
    total: Duration,
    count: u64,
    mem_open: u64,
    mem_peak: u64,
    mem_footprint: u64,
}

impl SpanEntry {
    fn new(name: &'static str) -> Self {
        SpanEntry {
            name,
            total: Duration::ZERO,
            count: 0,
            mem_open: u64::MAX,
            mem_peak: 0,
            mem_footprint: 0,
        }
    }

    fn fold(&mut self, elapsed: Duration, count: u64, mem: Option<MemSpan>) {
        self.total += elapsed;
        self.count += count;
        if let Some(m) = mem {
            self.mem_open = self.mem_open.min(m.open_bytes);
            self.mem_peak = self.mem_peak.max(m.peak_bytes);
            self.mem_footprint = self.mem_footprint.max(m.footprint());
        }
    }

    fn merge(&mut self, other: &SpanEntry) {
        self.total += other.total;
        self.count += other.count;
        self.mem_open = self.mem_open.min(other.mem_open);
        self.mem_peak = self.mem_peak.max(other.mem_peak);
        self.mem_footprint = self.mem_footprint.max(other.mem_footprint);
    }
}

#[derive(Default)]
struct EventLog {
    head: Vec<(String, String)>,
    tail: VecDeque<(String, String)>,
    dropped_total: u64,
    dropped_by_kind: BTreeMap<String, u64>,
}

impl EventLog {
    fn push(&mut self, kind: &'static str, detail: &str) {
        if self.head.len() < EVENT_HEAD {
            self.head.push((kind.to_string(), detail.to_string()));
            return;
        }
        self.tail.push_back((kind.to_string(), detail.to_string()));
        if self.tail.len() > EVENT_TAIL {
            let (evicted_kind, _) = self.tail.pop_front().expect("tail non-empty");
            self.dropped_total += 1;
            *self.dropped_by_kind.entry(evicted_kind).or_insert(0) += 1;
        }
    }
}

/// Thread-safe telemetry collector: atomic counters, sharded accumulated
/// phase spans, per-metric [`Histogram`]s, a head+tail bounded event log
/// and (when created via [`RunRecorder::with_trace`]) a timestamped trace
/// buffer — snapshotted via [`RunRecorder::report`].
pub struct RunRecorder {
    counters: [AtomicU64; NUM_COUNTERS],
    span_shards: Box<[Mutex<Vec<SpanEntry>>]>,
    histograms: Box<[Histogram]>,
    events: Mutex<EventLog>,
    trace: Option<trace::TraceBuffer>,
    started: Instant,
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRecorder").field("tracing", &self.trace.is_some()).finish_non_exhaustive()
    }
}

impl RunRecorder {
    /// Creates an empty recorder without a trace buffer; the report's
    /// `elapsed_seconds` is measured from this call.
    pub fn new() -> Self {
        Self::build(false)
    }

    /// Creates a recorder that additionally retains individual timestamped
    /// spans for [`RunRecorder::chrome_trace_json`]. Tracing is decided at
    /// construction so untraced recorders allocate no buffers and skip
    /// timestamp capture entirely.
    pub fn with_trace() -> Self {
        Self::build(true)
    }

    fn build(tracing: bool) -> Self {
        let started = Instant::now();
        RunRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            span_shards: (0..SPAN_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            histograms: (0..NUM_METRICS).map(|_| Histogram::new()).collect(),
            events: Mutex::new(EventLog::default()),
            trace: tracing.then(|| trace::TraceBuffer::new(started)),
            started,
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Merged snapshot of one metric's histogram.
    pub fn histogram(&self, metric: Metric) -> MergedHistogram {
        self.histograms[metric as usize].merged()
    }

    /// All timestamped trace events collected so far, sorted by start
    /// time. Empty unless the recorder was built with
    /// [`RunRecorder::with_trace`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.as_ref().map(|t| t.events()).unwrap_or_default()
    }

    /// Number of trace events discarded after the internal cap.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// The collected trace as Chrome trace-event JSON (loads in Perfetto /
    /// `chrome://tracing`). An empty array unless built with
    /// [`RunRecorder::with_trace`].
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.trace_events())
    }

    fn record_span(&self, phase: &'static str, elapsed: Duration, mem: Option<MemSpan>) {
        let shard = histogram::thread_index() % SPAN_SHARDS;
        let mut spans = self.span_shards[shard].lock().expect("telemetry span lock");
        match spans.iter_mut().find(|e| e.name == phase) {
            Some(entry) => entry.fold(elapsed, 1, mem),
            None => {
                let mut entry = SpanEntry::new(phase);
                entry.fold(elapsed, 1, mem);
                spans.push(entry);
            }
        }
    }

    fn merged_phases(&self) -> Vec<SpanEntry> {
        let mut merged: Vec<SpanEntry> = Vec::new();
        for shard in self.span_shards.iter() {
            for entry in shard.lock().expect("telemetry span lock").iter() {
                match merged.iter_mut().find(|e| e.name == entry.name) {
                    Some(m) => m.merge(entry),
                    None => merged.push(*entry),
                }
            }
        }
        merged
    }

    /// Snapshot everything recorded so far into a serializable report.
    pub fn report(&self) -> RunReport {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), self.counter(c)))
            .collect();
        let phases: Vec<PhaseSpan> = self
            .merged_phases()
            .into_iter()
            .map(|e| PhaseSpan {
                name: e.name.to_string(),
                total_seconds: e.total.as_secs_f64(),
                count: e.count,
                mem_open_bytes: if e.mem_open == u64::MAX { 0 } else { e.mem_open },
                mem_peak_bytes: e.mem_peak,
                mem_footprint_bytes: e.mem_footprint,
            })
            .collect();
        let histograms = Metric::ALL
            .iter()
            .map(|&m| self.histogram(m).summarize(m.name(), m.unit()))
            .collect();
        let (events, dropped_events, dropped_events_by_kind) = {
            let log = self.events.lock().expect("telemetry event lock");
            let events = log
                .head
                .iter()
                .chain(log.tail.iter())
                .map(|(kind, detail)| ReportEvent { kind: kind.clone(), detail: detail.clone() })
                .collect();
            (events, log.dropped_total, log.dropped_by_kind.clone())
        };
        let elapsed = self.started.elapsed().as_secs_f64();
        let edges = self.counter(Counter::EdgesScanned) as f64;
        let estimate_seconds = phases
            .iter()
            .find(|p| p.name == "estimate")
            .map(|p| p.total_seconds)
            .unwrap_or(0.0);
        // Query throughput should not be diluted by prepare/IO time: rate
        // edge work against the estimate-phase total when one was
        // recorded, against whole-run wall time otherwise (benches time
        // their own phases and record no `estimate` span).
        let mteps_basis = if estimate_seconds > 0.0 { estimate_seconds } else { elapsed };
        let observed_peak_bytes = phases
            .iter()
            .filter(|p| PLANNED_PHASES.contains(&p.name.as_str()))
            .map(|p| p.mem_footprint_bytes)
            .max()
            .unwrap_or(0);
        let mem_stats = memory::stats();
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            counters,
            phases,
            histograms,
            events,
            dropped_events,
            dropped_events_by_kind,
            faults_injected: Vec::new(),
            retries: self.counter(Counter::FaultRetries),
            degradation_path: Vec::new(),
            artifact: None,
            memory: MemoryBlock {
                tracking: memory::tracking_active(),
                planned_bytes: 0,
                observed_peak_bytes,
                live_bytes: memory::live_bytes(),
                process_peak_bytes: memory::peak_bytes(),
                allocations: mem_stats.allocations,
                plan_accuracy: None,
            },
            derived: DerivedMetrics {
                elapsed_seconds: elapsed,
                estimate_seconds,
                mteps: if mteps_basis > 0.0 { edges / mteps_basis / 1e6 } else { 0.0 },
                whole_run_mteps: if elapsed > 0.0 { edges / elapsed / 1e6 } else { 0.0 },
            },
        }
    }
}

impl Recorder for RunRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn max(&self, counter: Counter, value: u64) {
        self.counters[counter as usize].fetch_max(value, Ordering::Relaxed);
    }

    fn observe(&self, metric: Metric, value: u64) {
        self.histograms[metric as usize].observe(value);
    }

    fn span(&self, phase: &'static str, elapsed: Duration) {
        self.record_span(phase, elapsed, None);
    }

    fn span_mem(&self, phase: &'static str, elapsed: Duration, mem: MemSpan) {
        self.record_span(phase, elapsed, Some(mem));
    }

    fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn trace_span(&self, phase: &'static str, start: Instant, end: Instant) {
        if let Some(trace) = &self.trace {
            trace.record(phase, start, end);
        }
    }

    fn event(&self, kind: &'static str, detail: &str) {
        self.events.lock().expect("telemetry event lock").push(kind, detail);
    }
}

/// Accumulated time for one named phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name. Report order follows first use per recording thread,
    /// merged shard-by-shard at snapshot; look phases up by name.
    pub name: String,
    /// Total wall time across all executions of the phase.
    pub total_seconds: f64,
    /// How many times the phase executed.
    pub count: u64,
    /// Minimum tracked live bytes at span open across executions (0 when
    /// tracking was off — added in v3).
    #[serde(default)]
    pub mem_open_bytes: u64,
    /// Maximum in-span peak of tracked live bytes across executions (0
    /// when tracking was off — added in v3).
    #[serde(default)]
    pub mem_peak_bytes: u64,
    /// Largest single-execution heap growth (`peak − open`, computed per
    /// occurrence) — the phase's footprint, compared against the planning
    /// figures (added in v3).
    #[serde(default)]
    pub mem_footprint_bytes: u64,
}

/// One discrete event captured during the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportEvent {
    /// Event kind (`deadline`, `cancelled`, `panic_isolated`, …).
    pub kind: String,
    /// Free-form detail string.
    pub detail: String,
}

/// Per-failpoint audit entry in the run report: how often the site was
/// reached and how often an armed fault fired there. Serialized form of
/// [`FaultSiteStats`](crate::control::FaultSiteStats).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSiteRecord {
    /// The failpoint's stable dotted name (e.g. `bfs.source`).
    pub site: String,
    /// Times the site was evaluated.
    pub hits: u64,
    /// Times an armed fault fired at the site.
    pub fired: u64,
}

/// Provenance of a prepared-graph artifact that served this run — stamped
/// into the report when a query started from `--artifact` instead of a
/// fresh prepare.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactProvenance {
    /// The container format version (`brics.artifact/v1` → 1).
    pub version: u32,
    /// Hex digest of all section checksums, identifying the exact bytes
    /// the run loaded.
    pub checksum: String,
    /// Path of the artifact file.
    pub source: String,
}

/// Phases whose footprint the planning figures in `budget.rs` model:
/// query-time traversal scratch, not the prepare-phase CSR/reduction
/// structures. `observed_peak_bytes` is the max footprint over these.
const PLANNED_PHASES: [&str; 3] = ["estimate", "bfs.batch", "topk.verify"];

/// Memory accounting for one run — the plan-vs-actual block of a v3
/// report. All-zero (with `tracking: false`) when the
/// [`memory::TrackingAllocator`] is not installed in the process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryBlock {
    /// Whether the tracking allocator was installed (all other fields are
    /// zero/absent when it was not).
    pub tracking: bool,
    /// Bytes the planning model budgeted for query scratch; 0 until
    /// [`RunReport::stamp_planned_bytes`] runs.
    pub planned_bytes: u64,
    /// Largest observed footprint (`peak − open`) of any planned phase —
    /// see [`PhaseSpan::mem_footprint_bytes`].
    pub observed_peak_bytes: u64,
    /// Tracked live bytes at snapshot time.
    pub live_bytes: u64,
    /// Process-lifetime high-watermark of tracked live bytes.
    pub process_peak_bytes: u64,
    /// Successful allocations since process start.
    pub allocations: u64,
    /// `observed_peak_bytes / planned_bytes`; `None` until stamped or when
    /// no plan was made. Values ≤ 1.0 mean the plan was an upper bound, as
    /// intended; > 1.0 fires a `memory.overrun` event.
    pub plan_accuracy: Option<f64>,
}

/// Metrics derived from the raw counters at snapshot time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Wall time from recorder construction to the snapshot.
    pub elapsed_seconds: f64,
    /// Total time recorded under the `estimate` phase (0 when none ran).
    pub estimate_seconds: f64,
    /// Millions of traversed arcs per second, rated against the
    /// estimate-phase span total when one exists (so prepare/IO time does
    /// not deflate query throughput), against `elapsed_seconds` otherwise.
    /// Comparable with the kernels benchmark because both charge
    /// `num_arcs()` per source.
    pub mteps: f64,
    /// Millions of traversed arcs per second of *whole-run* wall time
    /// (`edges_scanned / elapsed_seconds / 1e6`) — the v1 `mteps`.
    pub whole_run_mteps: f64,
}

/// Snapshot of one run's telemetry, serialized with the stable schema tag
/// `brics.run_report/v3`. All counter keys and all histogram metrics are
/// always present (zeros included) so downstream tooling can rely on the
/// key set.
///
/// v2 → v3 migration: the top-level `memory` block ([`MemoryBlock`]) and
/// the per-phase `mem_open_bytes` / `mem_peak_bytes` /
/// `mem_footprint_bytes` fields are new (all zero when the tracking
/// allocator is not installed), and the counter set gained
/// `memory_limit_stops`. Nothing was removed or renamed, so v2 consumers
/// that look fields up by name keep working; v2 documents deserialize into
/// this struct with the new fields defaulted (`brics report check
/// --schema v2` accepts them explicitly).
///
/// v1 → v2 migration: `histograms`, `dropped_events_by_kind`,
/// `derived.estimate_seconds` and `derived.whole_run_mteps` are new;
/// `derived.mteps` now rates against the estimate phase (v1's
/// whole-run-rated value moved to `derived.whole_run_mteps`); the event
/// log keeps the first and last `MAX_EVENTS`/2 events instead of the
/// first `MAX_EVENTS`.
///
/// The fault-injection fields (`faults_injected`, `retries`,
/// `degradation_path`) were added *within* v2: they are always present,
/// empty/zero on fault-free runs, so existing v2 consumers keep working.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema identifier; always [`RunReport::SCHEMA`].
    pub schema: String,
    /// Every counter by stable name (all keys present, zeros included).
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Accumulated phase spans; look up by name (see [`PhaseSpan::name`]).
    pub phases: Vec<PhaseSpan>,
    /// Quantile summaries of every distribution metric, in [`Metric::ALL`]
    /// order (all metrics present, zero-count included).
    pub histograms: Vec<HistogramSummary>,
    /// Discrete events: the run's first events followed by its most recent
    /// ones once the cap is exceeded.
    pub events: Vec<ReportEvent>,
    /// Number of events discarded after the cap was reached.
    pub dropped_events: u64,
    /// Discarded events broken down by event kind.
    pub dropped_events_by_kind: std::collections::BTreeMap<String, u64>,
    /// Per-site fault-injection audit trail (empty on fault-free runs).
    /// Stamped by the CLI from the run's
    /// [`FaultPlan`](crate::control::FaultPlan) — the recorder itself only
    /// sees fire totals through the `faults_injected_total` counter.
    pub faults_injected: Vec<FaultSiteRecord>,
    /// Quarantined-source retry attempts made by the degradation ladder
    /// (mirror of the `fault_retries` counter, hoisted for `jq`).
    pub retries: u64,
    /// Degradation rungs walked while answering, in order (prepare-stage
    /// fallbacks such as `reduce:skipped` first); the last entry is the
    /// rung that produced the result. Empty when the degradation ladder
    /// was not armed.
    pub degradation_path: Vec<String>,
    /// Provenance of the prepared-graph artifact the run loaded — added
    /// within v2 like the fault fields: always present, `null` on runs
    /// that prepared from scratch. Stamped by the CLI.
    pub artifact: Option<ArtifactProvenance>,
    /// Memory accounting (new in v3): tracked live/peak bytes and the
    /// plan-vs-actual figures. Defaults so v2 documents still parse.
    #[serde(default)]
    pub memory: MemoryBlock,
    /// Metrics derived from the counters at snapshot time.
    pub derived: DerivedMetrics,
}

impl RunReport {
    /// The stable schema tag emitted in every report.
    pub const SCHEMA: &'static str = "brics.run_report/v3";

    /// The previous schema tag, still accepted by `brics report check
    /// --schema v2` (v3 is a strict superset).
    pub const SCHEMA_V2: &'static str = "brics.run_report/v2";

    /// Closes the plan-vs-actual loop: records what the planning model
    /// budgeted for query scratch, derives
    /// [`MemoryBlock::plan_accuracy`], and — when tracking is on and the
    /// observed footprint exceeded the plan — appends a `memory.overrun`
    /// event. Call after the report is snapshotted (the CLI does this in
    /// its metrics-emission path so `compare`/`topk` rows get it too).
    pub fn stamp_planned_bytes(&mut self, planned_bytes: u64) {
        self.memory.planned_bytes = planned_bytes;
        let observed = self.memory.observed_peak_bytes;
        self.memory.plan_accuracy =
            (planned_bytes > 0).then(|| observed as f64 / planned_bytes as f64);
        if self.memory.tracking && planned_bytes > 0 && observed > planned_bytes {
            self.events.push(ReportEvent {
                kind: "memory.overrun".to_string(),
                detail: format!(
                    "observed peak {observed} bytes exceeds planned {planned_bytes} bytes"
                ),
            });
        }
    }

    /// Renders a compact human-readable table (for `--metrics-summary`):
    /// phases with times, histogram quantiles, then all non-zero counters,
    /// then events.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("run report\n");
        out.push_str(&format!(
            "  elapsed {:.3}s  mteps {:.2} (whole-run {:.2})\n",
            self.derived.elapsed_seconds, self.derived.mteps, self.derived.whole_run_mteps
        ));
        if !self.phases.is_empty() {
            out.push_str("  phases:\n");
            for p in &self.phases {
                out.push_str(&format!(
                    "    {:<28} {:>10.3} ms  x{}\n",
                    p.name,
                    p.total_seconds * 1e3,
                    p.count
                ));
            }
        }
        let observed: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !observed.is_empty() {
            out.push_str("  histograms:\n");
            for h in observed {
                out.push_str(&format!(
                    "    {:<28} n={} p50={} p90={} p99={} max={} {}\n",
                    h.metric, h.count, h.p50, h.p90, h.p99, h.max, h.unit
                ));
            }
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|(_, &v)| v != 0).collect();
        if !nonzero.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in nonzero {
                out.push_str(&format!("    {name:<28} {value:>12}\n"));
            }
        }
        if !self.faults_injected.is_empty() {
            out.push_str("  faults:\n");
            for f in &self.faults_injected {
                out.push_str(&format!(
                    "    {:<28} hits={} fired={}\n",
                    f.site, f.hits, f.fired
                ));
            }
            if self.retries > 0 {
                out.push_str(&format!("    retries {}\n", self.retries));
            }
        }
        if !self.degradation_path.is_empty() {
            out.push_str(&format!("  degradation: {}\n", self.degradation_path.join(" -> ")));
        }
        if let Some(a) = &self.artifact {
            out.push_str(&format!("  artifact: v{} {} ({})\n", a.version, a.checksum, a.source));
        }
        if self.memory.tracking {
            let m = &self.memory;
            out.push_str(&format!(
                "  memory: live {} peak {} observed-span-peak {}",
                m.live_bytes, m.process_peak_bytes, m.observed_peak_bytes
            ));
            if m.planned_bytes > 0 {
                out.push_str(&format!(" planned {}", m.planned_bytes));
                if let Some(acc) = m.plan_accuracy {
                    out.push_str(&format!(" (accuracy {acc:.2})"));
                }
            }
            out.push('\n');
        }
        if !self.events.is_empty() {
            out.push_str("  events:\n");
            for e in &self.events {
                out.push_str(&format!("    {}: {}\n", e.kind, e.detail));
            }
            if self.dropped_events > 0 {
                out.push_str(&format!("    … {} more dropped\n", self.dropped_events));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_match_all() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, NUM_COUNTERS);
    }

    #[test]
    fn metric_names_are_unique_and_match_all() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, NUM_METRICS);
        for m in Metric::ALL {
            assert!(!m.unit().is_empty());
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        assert!(!rec.trace_enabled());
        rec.incr(Counter::BfsSources);
        rec.observe(Metric::FrontierSize, 3);
        rec.span("x", Duration::from_secs(1));
        rec.event("k", "d");
    }

    #[test]
    fn run_recorder_accumulates() {
        let rec = RunRecorder::new();
        rec.incr(Counter::BfsSources);
        rec.add(Counter::BfsSources, 2);
        rec.add(Counter::EdgesScanned, 100);
        rec.max(Counter::PeakFrontier, 7);
        rec.max(Counter::PeakFrontier, 3);
        rec.span("bfs", Duration::from_millis(2));
        rec.span("bfs", Duration::from_millis(3));
        rec.span("reduce", Duration::from_millis(1));
        rec.event("deadline", "hit after 2 sources");
        let report = rec.report();
        assert_eq!(report.counters["bfs_sources"], 3);
        assert_eq!(report.counters["edges_scanned"], 100);
        assert_eq!(report.counters["peak_frontier"], 7);
        // Untouched counters still present, zero-valued.
        assert_eq!(report.counters["reduce_rounds"], 0);
        assert_eq!(report.counters.len(), NUM_COUNTERS);
        let bfs = report.phases.iter().find(|p| p.name == "bfs").unwrap();
        assert_eq!(bfs.count, 2);
        assert!((bfs.total_seconds - 0.005).abs() < 1e-9);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.dropped_events, 0);
        assert!(report.derived.elapsed_seconds >= 0.0);
    }

    #[test]
    fn observations_land_in_the_right_histogram() {
        let rec = RunRecorder::new();
        rec.observe(Metric::FrontierSize, 10);
        rec.observe(Metric::FrontierSize, 1000);
        rec.observe(Metric::SourceBfsNanos, 5_000);
        let report = rec.report();
        assert_eq!(report.histograms.len(), NUM_METRICS);
        let frontier = report.histograms.iter().find(|h| h.metric == "frontier_size").unwrap();
        assert_eq!(frontier.count, 2);
        assert_eq!(frontier.max, 1000);
        assert_eq!(frontier.unit, "vertices");
        assert!(frontier.p50 <= frontier.p90 && frontier.p90 <= frontier.p99);
        let source = report.histograms.iter().find(|h| h.metric == "source_bfs_ns").unwrap();
        assert_eq!(source.count, 1);
        assert_eq!(source.sum, 5_000);
        // Unobserved metrics are still present with zero counts.
        let level = report.histograms.iter().find(|h| h.metric == "level_ns").unwrap();
        assert_eq!(level.count, 0);
    }

    #[test]
    fn spans_merge_across_threads() {
        let rec = std::sync::Arc::new(RunRecorder::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        rec.span("worker", Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        rec.span("main", Duration::from_millis(2));
        let report = rec.report();
        let worker = report.phases.iter().find(|p| p.name == "worker").unwrap();
        assert_eq!(worker.count, 40);
        assert!((worker.total_seconds - 0.040).abs() < 1e-9);
        assert_eq!(report.phases.iter().find(|p| p.name == "main").unwrap().count, 1);
    }

    #[test]
    fn event_cap_keeps_head_and_tail() {
        let rec = RunRecorder::new();
        for i in 0..(MAX_EVENTS + 5) {
            rec.event("e", &i.to_string());
        }
        rec.event("deadline", "late but important");
        let report = rec.report();
        assert_eq!(report.events.len(), MAX_EVENTS);
        assert_eq!(report.dropped_events, 6);
        assert_eq!(report.dropped_events_by_kind["e"], 6);
        // The opening of the run survives…
        assert_eq!(report.events[0].detail, "0");
        assert_eq!(report.events[EVENT_HEAD - 1].detail, (EVENT_HEAD - 1).to_string());
        // …and so does the most recent event, unlike first-N-wins.
        let last = report.events.last().unwrap();
        assert_eq!(last.kind, "deadline");
        assert_eq!(last.detail, "late but important");
    }

    #[test]
    fn timed_records_span_and_trace() {
        let rec = RunRecorder::with_trace();
        assert!(rec.trace_enabled());
        let out = timed(&rec, "prepare", || {
            timed(&rec, "reduce", || 7)
        });
        assert_eq!(out, 7);
        let report = rec.report();
        assert!(report.phases.iter().any(|p| p.name == "prepare"));
        let events = rec.trace_events();
        assert_eq!(events.len(), 2);
        // Inner span closes first but starts later: containment holds.
        let prepare = events.iter().find(|e| e.name == "prepare").unwrap();
        let reduce = events.iter().find(|e| e.name == "reduce").unwrap();
        assert!(reduce.start_ns >= prepare.start_ns);
        assert!(reduce.start_ns + reduce.dur_ns <= prepare.start_ns + prepare.dur_ns);
        let json = rec.chrome_trace_json();
        assert!(json.contains("\"name\":\"reduce\""));
        assert_eq!(rec.trace_dropped(), 0);
    }

    #[test]
    fn untraced_recorder_collects_no_trace() {
        let rec = RunRecorder::new();
        assert!(!rec.trace_enabled());
        timed(&rec, "prepare", || ());
        assert!(rec.trace_events().is_empty());
        assert_eq!(rec.chrome_trace_json().trim(), "[\n]");
    }

    #[test]
    fn timed_metric_feeds_histogram_and_span() {
        let rec = RunRecorder::new();
        let out = timed_metric(&rec, "estimate", Metric::QueryNanos, || 42);
        assert_eq!(out, 42);
        let report = rec.report();
        let span = report.phases.iter().find(|p| p.name == "estimate").unwrap();
        assert_eq!(span.count, 1);
        let hist = report.histograms.iter().find(|h| h.metric == "query_ns").unwrap();
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn mteps_rated_against_estimate_phase_when_present() {
        let rec = RunRecorder::new();
        rec.add(Counter::EdgesScanned, 10_000_000);
        rec.span("prepare", Duration::from_secs(100));
        rec.span("estimate", Duration::from_secs(2));
        let report = rec.report();
        assert!((report.derived.estimate_seconds - 2.0).abs() < 1e-12);
        assert!((report.derived.mteps - 5.0).abs() < 1e-9);
        // Whole-run rate uses actual wall time since new(), which is tiny
        // here — so it vastly exceeds the estimate-phase rate.
        assert!(report.derived.whole_run_mteps > report.derived.mteps);
    }

    #[test]
    fn mteps_falls_back_to_elapsed_without_estimate_span() {
        let rec = RunRecorder::new();
        rec.add(Counter::EdgesScanned, 1_000_000);
        std::thread::sleep(Duration::from_millis(2));
        let report = rec.report();
        assert_eq!(report.derived.estimate_seconds, 0.0);
        assert!(report.derived.mteps > 0.0);
        assert!((report.derived.mteps - report.derived.whole_run_mteps).abs() < 1e-9);
    }

    #[test]
    fn report_round_trips_through_json() {
        let rec = RunRecorder::new();
        rec.add(Counter::EdgesScanned, 42);
        rec.span("assemble", Duration::from_micros(10));
        rec.observe(Metric::QueryNanos, 1234);
        let report = rec.report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("brics.run_report/v3"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters["edges_scanned"], 42);
        assert_eq!(back.schema, RunReport::SCHEMA);
        assert_eq!(back.histograms.len(), NUM_METRICS);
        assert_eq!(
            back.histograms.iter().find(|h| h.metric == "query_ns").unwrap().max,
            1234
        );
        // The v3 memory block round-trips; this binary does not install
        // the tracking allocator, so it reports all-off.
        assert!(!back.memory.tracking);
        assert_eq!(back.memory, report.memory);
    }

    #[test]
    fn v2_document_without_memory_fields_still_parses() {
        // A v3 reader must accept v2 documents: serialize, strip the new
        // fields, deserialize — serde fills the defaults back in.
        let report = RunRecorder::new().report();
        let serde_json::Value::Object(mut pairs) = serde_json::to_value(&report) else {
            panic!("report must serialize to an object");
        };
        pairs.retain(|(k, _)| k != "memory");
        for (k, v) in pairs.iter_mut() {
            if k == "schema" {
                *v = serde_json::Value::Str(RunReport::SCHEMA_V2.to_string());
            }
        }
        let back: RunReport =
            serde_json::from_value(&serde_json::Value::Object(pairs)).unwrap();
        assert_eq!(back.schema, RunReport::SCHEMA_V2);
        assert_eq!(back.memory, MemoryBlock::default());
    }

    #[test]
    fn span_mem_folds_heap_envelope_per_occurrence() {
        let rec = RunRecorder::new();
        rec.span_mem(
            "estimate",
            Duration::from_millis(1),
            MemSpan { open_bytes: 100, peak_bytes: 400 },
        );
        rec.span_mem(
            "estimate",
            Duration::from_millis(1),
            MemSpan { open_bytes: 50, peak_bytes: 300 },
        );
        let report = rec.report();
        let p = report.phases.iter().find(|p| p.name == "estimate").unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.mem_open_bytes, 50);
        assert_eq!(p.mem_peak_bytes, 400);
        // Per-occurrence footprints are 300 and 250; pairing min-open with
        // max-peak across occurrences would claim 350. The ledger keeps
        // the honest per-occurrence max.
        assert_eq!(p.mem_footprint_bytes, 300);
        assert_eq!(report.memory.observed_peak_bytes, 300);
    }

    #[test]
    fn observed_peak_only_counts_planned_phases() {
        let rec = RunRecorder::new();
        rec.span_mem(
            "prepare",
            Duration::from_millis(1),
            MemSpan { open_bytes: 0, peak_bytes: 10_000 },
        );
        rec.span_mem(
            "bfs.batch",
            Duration::from_millis(1),
            MemSpan { open_bytes: 100, peak_bytes: 600 },
        );
        let report = rec.report();
        // prepare's CSR build dwarfs query scratch but is not what the
        // plan models; the observed peak tracks the planned phases only.
        assert_eq!(report.memory.observed_peak_bytes, 500);
    }

    #[test]
    fn stamp_planned_bytes_sets_accuracy_and_overrun_event() {
        let rec = RunRecorder::new();
        rec.span_mem(
            "estimate",
            Duration::from_millis(1),
            MemSpan { open_bytes: 0, peak_bytes: 1_500 },
        );
        let mut report = rec.report();
        report.memory.tracking = true; // as if the allocator were installed
        report.stamp_planned_bytes(1_000);
        assert_eq!(report.memory.planned_bytes, 1_000);
        assert!((report.memory.plan_accuracy.unwrap() - 1.5).abs() < 1e-12);
        assert!(report.events.iter().any(|e| e.kind == "memory.overrun"));

        // Within plan: accuracy ≤ 1, no event.
        let mut ok = rec.report();
        ok.memory.tracking = true;
        ok.stamp_planned_bytes(3_000);
        assert!(ok.memory.plan_accuracy.unwrap() <= 1.0);
        assert!(!ok.events.iter().any(|e| e.kind == "memory.overrun"));

        // No plan: accuracy stays None and nothing fires.
        let mut unplanned = rec.report();
        unplanned.stamp_planned_bytes(0);
        assert_eq!(unplanned.memory.plan_accuracy, None);
        assert!(!unplanned.events.iter().any(|e| e.kind == "memory.overrun"));
    }

    #[test]
    fn plain_span_never_invents_memory_figures() {
        let rec = RunRecorder::new();
        rec.span("estimate", Duration::from_millis(1));
        let report = rec.report();
        let p = report.phases.iter().find(|p| p.name == "estimate").unwrap();
        assert_eq!(p.mem_open_bytes, 0);
        assert_eq!(p.mem_peak_bytes, 0);
        assert_eq!(p.mem_footprint_bytes, 0);
    }

    #[test]
    fn summary_table_shows_nonzero_counters_phases_and_histograms() {
        let rec = RunRecorder::new();
        rec.add(Counter::BfsSources, 4);
        rec.span("estimate", Duration::from_millis(1));
        rec.observe(Metric::SourceBfsNanos, 900);
        rec.event("deadline", "expired");
        let table = rec.report().summary_table();
        assert!(table.contains("bfs_sources"));
        assert!(table.contains("estimate"));
        assert!(table.contains("source_bfs_ns"));
        assert!(table.contains("deadline: expired"));
        assert!(!table.contains("reduce_rounds"));
        assert!(!table.contains("level_ns"), "zero-count histograms are omitted from the table");
    }

    #[test]
    fn recorder_by_reference_forwards() {
        fn takes<R: Recorder>(rec: &R) {
            rec.incr(Counter::BfsSources);
            rec.observe(Metric::FrontierSize, 2);
        }
        let rec = RunRecorder::new();
        takes(&&rec);
        assert_eq!(rec.counter(Counter::BfsSources), 1);
        assert_eq!(rec.histogram(Metric::FrontierSize).count, 1);
    }

    #[test]
    fn optional_recorder_forwards_tracing() {
        let rec = Some(RunRecorder::with_trace());
        assert!(rec.trace_enabled());
        timed(&rec, "prepare", || ());
        assert_eq!(rec.as_ref().unwrap().trace_events().len(), 1);
        let none: Option<RunRecorder> = None;
        assert!(!none.trace_enabled());
    }
}
