//! Live progress heartbeat for long runs.
//!
//! A [`ProgressMeter`] spawns one sampling thread that periodically reads a
//! shared [`RunRecorder`]'s atomic counters and prints a single-line
//! heartbeat to stderr: sources done / planned, current MTEPS over the last
//! window, an ETA extrapolated from the average completion rate, and the
//! reduction round count. The estimators themselves are untouched — the
//! heartbeat is entirely derivative of counters they already charge.
//!
//! The meter also watches for stalls: when *no* counter advances for a
//! configurable window it prints a warning, consults the attached
//! [`RunControl`] to say whether execution limits have already tripped
//! (a stalled run whose deadline expired is a worker failing to observe
//! cancellation — a bug, not slowness), and records a `stall` event in the
//! run report.
//!
//! [`ProgressMeter::stop`] always prints one final heartbeat, so even a run
//! that finishes (or times out) faster than the sampling interval leaves
//! evidence of its shape on stderr.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::{memory, Counter, Recorder, RunRecorder};
use crate::control::{RunControl, RunOutcome};

/// Tuning for a [`ProgressMeter`].
#[derive(Debug, Clone, Copy)]
pub struct ProgressConfig {
    /// Time between heartbeat lines.
    pub interval: Duration,
    /// How long all counters must stay frozen before a stall is reported.
    pub stall_after: Duration,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig { interval: Duration::from_secs(1), stall_after: Duration::from_secs(10) }
    }
}

/// Counter snapshot the heartbeat derives its line from.
#[derive(Debug, Clone, Copy)]
struct Sample {
    done: u64,
    skipped: u64,
    planned: u64,
    edges: u64,
    reduce_rounds: u64,
    /// Tracked live heap bytes (0 when the tracking allocator is absent).
    /// Deliberately excluded from the fingerprint — background allocator
    /// churn must not mask a genuinely stalled run.
    mem_live: u64,
    /// Process peak of tracked live bytes (0 without the allocator).
    mem_peak: u64,
    /// Wrapping sum of every counter — advances iff anything advanced.
    fingerprint: u64,
}

impl Sample {
    fn take(rec: &RunRecorder) -> Self {
        let mut fingerprint = 0u64;
        for &c in Counter::ALL.iter() {
            fingerprint = fingerprint.wrapping_add(rec.counter(c));
        }
        Sample {
            done: rec.counter(Counter::BfsSources),
            skipped: rec.counter(Counter::BfsSourcesSkipped),
            planned: rec.counter(Counter::BfsSourcesPlanned),
            edges: rec.counter(Counter::EdgesScanned),
            reduce_rounds: rec.counter(Counter::ReduceRounds),
            mem_live: memory::live_bytes(),
            mem_peak: memory::peak_bytes(),
            fingerprint,
        }
    }
}

/// Renders a byte count with a binary-unit suffix, one decimal place.
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

/// Formats one heartbeat line. `prev`/`window` give the rate over the last
/// sampling window; without them the line falls back to the whole-run
/// average rate.
fn format_heartbeat(now: &Sample, prev: Option<(&Sample, Duration)>, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64();
    let mut line = String::from("progress:");
    let finished = now.done + now.skipped;
    if now.planned > 0 {
        line.push_str(&format!(
            " sources {}/{} ({:.1}%)",
            finished,
            now.planned,
            100.0 * finished as f64 / now.planned as f64
        ));
    } else {
        line.push_str(&format!(" sources {finished}/?"));
    }
    let mteps = match prev {
        Some((p, window)) if window.as_secs_f64() > 0.0 => {
            (now.edges.saturating_sub(p.edges)) as f64 / window.as_secs_f64() / 1e6
        }
        _ if secs > 0.0 => now.edges as f64 / secs / 1e6,
        _ => 0.0,
    };
    line.push_str(&format!(" | {mteps:.2} MTEPS"));
    if now.planned > finished && now.done > 0 && secs > 0.0 {
        let eta = (now.planned - finished) as f64 * secs / finished as f64;
        line.push_str(&format!(" | eta {eta:.1}s"));
    }
    if now.reduce_rounds > 0 {
        line.push_str(&format!(" | reduce rounds {}", now.reduce_rounds));
    }
    // Only rendered when the tracking allocator is installed (peak > 0) —
    // uninstrumented binaries keep the pre-v3 line shape. The final
    // heartbeat goes through here too, so peak bytes always close the run.
    if now.mem_peak > 0 {
        line.push_str(&format!(
            " | mem {} (peak {})",
            fmt_bytes(now.mem_live),
            fmt_bytes(now.mem_peak)
        ));
    }
    line.push_str(&format!(" | elapsed {secs:.1}s"));
    line
}

fn control_state(ctl: &RunControl) -> &'static str {
    match ctl.should_stop() {
        None => "limits ok",
        Some(RunOutcome::Deadline) => "deadline already expired",
        Some(RunOutcome::Cancelled) => "run already cancelled",
        Some(RunOutcome::MemoryLimit) => "memory budget already exceeded",
        Some(RunOutcome::Complete) | Some(RunOutcome::Degraded) => "limits ok",
    }
}

fn worker(rec: Arc<RunRecorder>, ctl: RunControl, cfg: ProgressConfig, stop: Arc<AtomicBool>) {
    let started = Instant::now();
    let mut prev = Sample::take(&rec);
    let mut prev_at = started;
    let mut last_change = started;
    let mut stall_reported = false;
    loop {
        let wake = Instant::now() + cfg.interval;
        loop {
            if stop.load(Ordering::Relaxed) {
                let now = Sample::take(&rec);
                eprintln!("{}", format_heartbeat(&now, None, started.elapsed()));
                return;
            }
            let now = Instant::now();
            if now >= wake {
                break;
            }
            std::thread::sleep((wake - now).min(Duration::from_millis(25)));
        }
        let sample = Sample::take(&rec);
        let at = Instant::now();
        if sample.fingerprint != prev.fingerprint {
            last_change = at;
            stall_reported = false;
        } else if !stall_reported && at.duration_since(last_change) >= cfg.stall_after {
            stall_reported = true;
            let detail = format!(
                "no counter advanced in {:.1}s ({})",
                at.duration_since(last_change).as_secs_f64(),
                control_state(&ctl)
            );
            eprintln!("progress: STALL — {detail}");
            rec.event("stall", &detail);
        }
        eprintln!("{}", format_heartbeat(&sample, Some((&prev, at - prev_at)), started.elapsed()));
        prev = sample;
        prev_at = at;
    }
}

/// Handle to the background heartbeat thread. Stopping (or dropping) the
/// meter joins the thread after it prints a final heartbeat line.
pub struct ProgressMeter {
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMeter").finish_non_exhaustive()
    }
}

impl ProgressMeter {
    /// Starts the heartbeat thread sampling `rec`. The `ctl` clone shares
    /// the run's limit state and is only consulted for stall diagnostics.
    pub fn start(rec: Arc<RunRecorder>, ctl: RunControl, cfg: ProgressConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("brics-progress".to_string())
            .spawn(move || worker(rec, ctl, cfg, thread_stop))
            .expect("spawn progress thread");
        ProgressMeter { stop, handle: Mutex::new(Some(handle)) }
    }

    /// Signals the thread to emit its final heartbeat and joins it.
    /// Idempotent; also invoked on drop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handle = self.handle.lock().expect("progress handle lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressMeter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(done: u64, planned: u64, edges: u64) -> Sample {
        Sample {
            done,
            skipped: 0,
            planned,
            edges,
            reduce_rounds: 0,
            mem_live: 0,
            mem_peak: 0,
            fingerprint: 0,
        }
    }

    #[test]
    fn heartbeat_reports_fraction_rate_and_eta() {
        let prev = sample(10, 100, 1_000_000);
        let now = sample(20, 100, 3_000_000);
        let line =
            format_heartbeat(&now, Some((&prev, Duration::from_secs(1))), Duration::from_secs(2));
        assert!(line.contains("sources 20/100 (20.0%)"), "{line}");
        assert!(line.contains("2.00 MTEPS"), "{line}");
        assert!(line.contains("eta 8.0s"), "{line}");
        assert!(line.contains("elapsed 2.0s"), "{line}");
    }

    #[test]
    fn heartbeat_without_plan_skips_eta() {
        let now = sample(5, 0, 500_000);
        let line = format_heartbeat(&now, None, Duration::from_secs(1));
        assert!(line.contains("sources 5/?"), "{line}");
        assert!(!line.contains("eta"), "{line}");
        assert!(line.contains("0.50 MTEPS"), "{line}");
    }

    #[test]
    fn heartbeat_counts_skipped_sources_as_finished() {
        let now = Sample {
            done: 3,
            skipped: 7,
            planned: 10,
            edges: 0,
            reduce_rounds: 2,
            mem_live: 0,
            mem_peak: 0,
            fingerprint: 0,
        };
        let line = format_heartbeat(&now, None, Duration::from_secs(1));
        assert!(line.contains("sources 10/10 (100.0%)"), "{line}");
        assert!(line.contains("reduce rounds 2"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn heartbeat_shows_memory_only_when_tracking() {
        // Untracked (peak 0): no memory segment at all.
        let plain = format_heartbeat(&sample(1, 10, 0), None, Duration::from_secs(1));
        assert!(!plain.contains("mem"), "{plain}");
        // Tracked: live and peak render with binary units.
        let mut s = sample(1, 10, 0);
        s.mem_live = 3 * 1024 * 1024;
        s.mem_peak = 2 * 1024 * 1024 * 1024;
        let line = format_heartbeat(&s, None, Duration::from_secs(1));
        assert!(line.contains("mem 3.0MiB (peak 2.0GiB)"), "{line}");
    }

    #[test]
    fn bytes_format_picks_sane_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 + 512 * 1024), "5.5MiB");
        assert_eq!(fmt_bytes(u64::MAX), format!("{:.1}GiB", u64::MAX as f64 / (1u64 << 30) as f64));
    }

    #[test]
    fn meter_stops_quickly_and_is_idempotent() {
        let rec = Arc::new(RunRecorder::new());
        let meter = ProgressMeter::start(
            rec,
            RunControl::new(),
            ProgressConfig { interval: Duration::from_millis(5), ..Default::default() },
        );
        std::thread::sleep(Duration::from_millis(20));
        meter.stop();
        meter.stop();
    }

    #[test]
    fn frozen_counters_record_a_stall_event() {
        let rec = Arc::new(RunRecorder::new());
        let meter = ProgressMeter::start(
            rec.clone(),
            RunControl::new(),
            ProgressConfig {
                interval: Duration::from_millis(2),
                stall_after: Duration::from_millis(1),
            },
        );
        std::thread::sleep(Duration::from_millis(50));
        meter.stop();
        let report = rec.report();
        assert!(
            report.events.iter().any(|e| e.kind == "stall"),
            "expected a stall event, got {:?}",
            report.events
        );
        assert!(report.events.iter().any(|e| e.detail.contains("limits ok")));
    }
}
