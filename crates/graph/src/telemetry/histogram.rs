//! Lock-free sharded log-bucketed histograms.
//!
//! A [`Histogram`] accepts concurrent [`Histogram::observe`] calls from any
//! number of threads without a lock: each thread hashes into one of a small
//! fixed set of shards (by a cached per-thread index) and bumps plain
//! relaxed atomics there. Shards are merged only at snapshot time.
//!
//! Values are bucketed by position of their highest set bit, so the 65
//! buckets cover the full `u64` range with ≤ 2× relative error per bucket:
//! bucket 0 holds the value `0`, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
//! Quantiles are reported as the upper bound of the covering bucket,
//! clamped to the exact maximum observed value — which both tightens the
//! tail estimate and guarantees `p50 ≤ p90 ≤ p99 ≤ max`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of logarithmic buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Number of independent shards per histogram. A small power of two:
/// enough to keep same-cache-line contention rare at typical pool sizes
/// without bloating the merge.
pub const NUM_SHARDS: usize = 8;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` range of values mapping to bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// Process-wide dense thread index used to pick a shard. Cached in a
/// thread-local after the first call so the steady-state cost of an
/// observation is one TLS read plus two relaxed RMWs.
pub(crate) fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    INDEX.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(idx);
        }
        idx
    })
}

struct Shard {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A lock-free log-bucketed histogram sharded across [`NUM_SHARDS`]
/// independent atomic bucket arrays.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("merged", &self.merged()).finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect() }
    }

    /// Records one observation in the calling thread's shard.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.observe_in_shard(thread_index(), value);
    }

    /// Records one observation in an explicit shard (any `usize`; reduced
    /// modulo [`NUM_SHARDS`]). Exists so tests can exercise arbitrary
    /// shard interleavings deterministically.
    #[inline]
    pub fn observe_in_shard(&self, shard: usize, value: u64) {
        self.shards[shard % NUM_SHARDS].observe(value);
    }

    /// Merges all shards into one consistent snapshot. Safe to call while
    /// observations continue; the snapshot then reflects some interleaving
    /// of the concurrent updates.
    pub fn merged(&self) -> MergedHistogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (acc, bucket) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += bucket.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        MergedHistogram { buckets, count, sum, max }
    }
}

/// A merged, immutable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedHistogram {
    /// Observation count per bucket (see [`bucket_bounds`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping only beyond u64::MAX total).
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl MergedHistogram {
    /// Value at quantile `q ∈ [0, 1]`: the upper bound of the first bucket
    /// whose cumulative count reaches `ceil(q · count)` (at least 1),
    /// clamped to the exact observed maximum. Returns 0 when empty.
    /// Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Condenses the snapshot into the summary shape embedded in run
    /// reports, labelled with the metric's stable name and unit.
    pub fn summarize(&self, metric: &str, unit: &str) -> HistogramSummary {
        HistogramSummary {
            metric: metric.to_string(),
            unit: unit.to_string(),
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Quantile summary of one metric's histogram, as serialized in
/// `brics.run_report/v2` under `histograms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Stable metric name (see `Metric::name`).
    pub metric: String,
    /// Unit of the recorded values (`"ns"`, `"vertices"`, …).
    pub unit: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Median (bucket upper bound, clamped to the exact max).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for index in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(bucket_index(low), index);
            assert_eq!(bucket_index(high), index);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        let mut expected_low = 0u64;
        for index in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low);
            assert!(high >= low);
            expected_low = high.wrapping_add(1);
        }
        assert_eq!(expected_low, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new().merged();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0);
        assert_eq!(h.max, 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn single_value_reports_itself_everywhere() {
        let h = Histogram::new();
        h.observe(1000);
        let m = h.merged();
        assert_eq!(m.count, 1);
        assert_eq!(m.sum, 1000);
        assert_eq!(m.max, 1000);
        // The covering bucket's upper bound is 1023, but clamping to the
        // exact max yields the value itself.
        assert_eq!(m.quantile(0.5), 1000);
        assert_eq!(m.quantile(0.99), 1000);
    }

    #[test]
    fn quantiles_order_on_spread_values() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..9 {
            h.observe(1_000);
        }
        h.observe(1_000_000);
        let m = h.merged();
        assert_eq!(m.count, 100);
        let (p50, p90, p99) = (m.quantile(0.5), m.quantile(0.9), m.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= m.max);
        assert_eq!(bucket_index(p50), bucket_index(10));
        assert_eq!(bucket_index(p99), bucket_index(1_000));
        assert_eq!(m.quantile(1.0), 1_000_000);
    }

    #[test]
    fn shards_merge_identically_to_single_shard() {
        let sharded = Histogram::new();
        let flat = Histogram::new();
        for (i, v) in [0u64, 1, 5, 17, 300, 300, 65_536, u64::MAX].iter().enumerate() {
            sharded.observe_in_shard(i, *v);
            flat.observe_in_shard(0, *v);
        }
        assert_eq!(sharded.merged(), flat.merged());
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let m = h.merged();
        assert_eq!(m.count, 8000);
        assert_eq!(m.max, 7999);
        assert_eq!(m.sum, (0..8000u64).sum());
    }

    #[test]
    fn summary_carries_labels() {
        let h = Histogram::new();
        h.observe(3);
        let s = h.merged().summarize("level_ns", "ns");
        assert_eq!(s.metric, "level_ns");
        assert_eq!(s.unit, "ns");
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 3);
    }
}
