//! Zero-dependency tracking allocator and process-wide memory ledger.
//!
//! [`TrackingAllocator`] wraps [`std::alloc::System`] and maintains three
//! views of the heap, all updated with relaxed atomics so the hot path is
//! two `fetch_add`s and a `fetch_max` per allocation:
//!
//! - a global **live** counter (`allocated − freed`, exact at every
//!   instant) and a global **peak** high-watermark derived from it — the
//!   two numbers [`RunControl`](crate::control::RunControl) enforcement
//!   and the `--progress` heartbeat read;
//! - a [`ShardedCounters`] ledger of allocated/freed bytes and allocation
//!   counts, split over [`NUM_SHARDS`] relaxed-atomic shards that are only
//!   merged at snapshot time ([`stats`]) — the same
//!   shard-then-merge discipline as the latency histograms in
//!   [`super::histogram`]. The histograms shard by *thread*; the
//!   allocator cannot (looking up a `thread_local!` from inside
//!   `alloc`/`dealloc` re-enters the allocator during TLS setup and
//!   teardown), so it shards by a hash of the **block address** instead,
//!   which spreads contention just as well and makes an allocation and
//!   its matching free land in the same shard.
//!
//! Installing the allocator is the binary's choice (the CLI and the bench
//! drivers do; library unit tests do not), so every reader below degrades
//! to zero when tracking is not installed: [`live_bytes`] reports `0`,
//! [`tracking_active`] reports `false`, and the budget enforcement in
//! `RunControl::should_stop` never trips.
//!
//! Per-span snapshots (bytes live at span open, peak within the span) are
//! captured by [`super::timed`]/[`super::timed_metric`] and attached to
//! the phase spans of the run report; see [`super::MemSpan`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter shards. Kept equal to the histogram shard count so
/// the two subsystems have the same contention profile.
pub const NUM_SHARDS: usize = 8;

/// One shard of the allocation ledger.
#[derive(Debug, Default)]
struct Shard {
    allocated_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    allocations: AtomicU64,
}

/// Merged snapshot of a [`ShardedCounters`] ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes handed out since process start.
    pub allocated_bytes: u64,
    /// Total bytes returned since process start.
    pub freed_bytes: u64,
    /// Number of successful allocations (incl. the allocating half of
    /// every `realloc`).
    pub allocations: u64,
}

impl AllocStats {
    /// Bytes currently live according to this ledger
    /// (`allocated − freed`, saturating).
    pub fn live_bytes(&self) -> u64 {
        self.allocated_bytes.saturating_sub(self.freed_bytes)
    }
}

/// A bank of [`NUM_SHARDS`] relaxed-atomic allocation counters, merged
/// only at snapshot time. Instantiable so tests can drive a private
/// ledger without racing the process-global one.
#[derive(Debug)]
pub struct ShardedCounters {
    shards: [Shard; NUM_SHARDS],
}

impl Default for ShardedCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounters {
    /// An all-zero ledger.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Shard = Shard {
            allocated_bytes: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
        };
        ShardedCounters { shards: [ZERO; NUM_SHARDS] }
    }

    /// Records an allocation of `bytes` in an explicit shard (test hook —
    /// mirrors `observe_in_shard` on the histograms).
    pub fn record_alloc_in(&self, shard: usize, bytes: u64) {
        let s = &self.shards[shard % NUM_SHARDS];
        s.allocated_bytes.fetch_add(bytes, Ordering::Relaxed);
        s.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a free of `bytes` in an explicit shard (test hook).
    pub fn record_free_in(&self, shard: usize, bytes: u64) {
        self.shards[shard % NUM_SHARDS].freed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Merges every shard into one snapshot. The counters are only ever
    /// added to, so a merged snapshot is exact for all operations that
    /// happened-before the call and at worst misses in-flight ones.
    pub fn merged(&self) -> AllocStats {
        let mut out = AllocStats::default();
        for s in &self.shards {
            out.allocated_bytes += s.allocated_bytes.load(Ordering::Relaxed);
            out.freed_bytes += s.freed_bytes.load(Ordering::Relaxed);
            out.allocations += s.allocations.load(Ordering::Relaxed);
        }
        out
    }
}

/// The process-global ledger fed by [`TrackingAllocator`].
static COUNTERS: ShardedCounters = ShardedCounters::new();

/// Exact live bytes (single relaxed counter — sharding a value that must
/// be read coherently at every budget checkpoint would force a merge per
/// read).
static LIVE: AtomicU64 = AtomicU64::new(0);

/// High-watermark of [`LIVE`]. A fully sharded peak is not well-defined
/// (the max of per-shard peaks is not the peak of the sum), so the
/// watermark is maintained with one `fetch_max` against the post-update
/// live value.
static PEAK: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 — the same mix the fault-injection triggers use; here it
/// spreads block addresses over the shards.
#[inline]
fn shard_of(ptr: *mut u8) -> usize {
    let mut x = ptr as usize as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) as usize % NUM_SHARDS
}

#[inline]
fn on_alloc(ptr: *mut u8, bytes: u64) {
    COUNTERS.record_alloc_in(shard_of(ptr), bytes);
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_free(ptr: *mut u8, bytes: u64) {
    COUNTERS.record_free_in(shard_of(ptr), bytes);
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes currently live on the tracked heap (0 when the allocator is not
/// installed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-watermark of [`live_bytes`] since process start.
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Whether the tracking allocator is installed in this process (i.e. at
/// least one allocation has been accounted — with the allocator installed
/// as `#[global_allocator]` that is true before `main` runs).
pub fn tracking_active() -> bool {
    PEAK.load(Ordering::Relaxed) > 0
}

/// Merged snapshot of the process-global allocation ledger.
pub fn stats() -> AllocStats {
    COUNTERS.merged()
}

/// `System`-backed allocator that feeds the ledger above. Install it per
/// binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: brics_graph::telemetry::memory::TrackingAllocator =
///     brics_graph::telemetry::memory::TrackingAllocator;
/// ```
///
/// Accounting uses `layout.size()` (requested bytes, not the allocator's
/// internal rounding) so the numbers line up with the planning figures,
/// and only counts allocations that actually succeeded.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

// SAFETY: defers every allocation to `System` unchanged; the bookkeeping
// around it touches only static relaxed atomics (no TLS, no locks, no
// re-entrant allocation).
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(p, layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(p, layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_free(ptr, layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_free(ptr, layout.size() as u64);
            on_alloc(p, new_size as u64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The process-global statics are exercised end-to-end by the CLI and
    // by `tests/memory_tracking.rs` (which install the allocator); lib
    // tests only cover the instantiable ledger and the pure helpers.

    #[test]
    fn ledger_accumulates_and_merges() {
        let c = ShardedCounters::new();
        c.record_alloc_in(0, 100);
        c.record_alloc_in(3, 50);
        c.record_free_in(0, 30);
        c.record_alloc_in(NUM_SHARDS + 1, 7); // wraps to shard 1
        let s = c.merged();
        assert_eq!(s.allocated_bytes, 157);
        assert_eq!(s.freed_bytes, 30);
        assert_eq!(s.allocations, 3);
        assert_eq!(s.live_bytes(), 127);
    }

    #[test]
    fn live_bytes_saturates_rather_than_underflows() {
        let s = AllocStats { allocated_bytes: 10, freed_bytes: 20, allocations: 1 };
        assert_eq!(s.live_bytes(), 0);
    }

    #[test]
    fn shard_hash_spreads_and_is_stable() {
        // The same pointer always lands in the same shard (alloc and free
        // must agree), and distinct addresses spread over several shards.
        let base = 0x7f00_0000_1000usize;
        let mut seen = [false; NUM_SHARDS];
        for i in 0..64 {
            let p = (base + i * 16) as *mut u8;
            let s = shard_of(p);
            assert_eq!(s, shard_of(p));
            seen[s] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() >= 2, "hash collapsed to one shard");
    }

    #[test]
    fn uninstalled_process_reads_zero() {
        // This test binary does not install the allocator, so the global
        // ledger stays silent — the exact property the budget enforcement
        // in `RunControl::should_stop` relies on to stay inert.
        assert_eq!(live_bytes(), 0);
        assert_eq!(peak_bytes(), 0);
        assert!(!tracking_active());
        assert_eq!(stats(), AllocStats::default());
    }
}
