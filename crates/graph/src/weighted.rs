//! Weighted-graph support for chain contraction.
//!
//! The workspace's graphs are unweighted; the single place weights appear
//! is the *contracted* reduced graph, where a surviving degree-2 chain is
//! replaced by one edge carrying the chain's path length. Weights are
//! stored as a `Vec<u32>` aligned with [`CsrGraph::targets`] so the CSR
//! type itself (and everything structural built on it — biconnectivity,
//! subgraphs) stays untouched.

use crate::{CsrGraph, NodeId};

/// Builds a simple undirected weighted graph from `(u, v, w)` triples.
/// Parallel edges collapse to the *minimum* weight (the only semantics
/// under which collapsing preserves shortest-path distances); self-loops
/// are dropped.
///
/// Returns the CSR graph and the arc-aligned weight array.
pub fn build_weighted(num_nodes: usize, edges: &[(NodeId, NodeId, u32)]) -> (CsrGraph, Vec<u32>) {
    let mut canon: Vec<(NodeId, NodeId, u32)> = edges
        .iter()
        .filter(|&&(u, v, _)| u != v)
        .map(|&(u, v, w)| if u <= v { (u, v, w) } else { (v, u, w) })
        .collect();
    // Sort so equal endpoints group together with smallest weight first.
    canon.sort_unstable();
    canon.dedup_by(|next, prev| {
        // prev comes earlier (smaller weight for same endpoints): drop next.
        next.0 == prev.0 && next.1 == prev.1
    });
    let mut b = crate::GraphBuilder::with_capacity(num_nodes, canon.len());
    for &(u, v, _) in &canon {
        b.add_edge(u, v);
    }
    let g = b.build();
    // Weight lookup aligned to CSR arcs via binary search in canon.
    let mut weights = Vec::with_capacity(g.num_arcs());
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            let key = if u <= v { (u, v) } else { (v, u) };
            let idx = canon
                .binary_search_by(|&(a, b2, _)| (a, b2).cmp(&key))
                .expect("arc missing from canonical edge list");
            weights.push(canon[idx].2);
        }
    }
    (g, weights)
}

/// The weight of the undirected edge `{u, v}` in an arc-aligned weight
/// array, or `None` when the edge does not exist.
pub fn edge_weight(g: &CsrGraph, weights: &[u32], u: NodeId, v: NodeId) -> Option<u32> {
    let nbrs = g.neighbors(u);
    let pos = nbrs.binary_search(&v).ok()?;
    Some(weights[g.offsets()[u as usize] + pos])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::DialBfs;

    #[test]
    fn builds_and_aligns() {
        let (g, w) = build_weighted(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 7), (3, 0, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(w.len(), 8);
        assert_eq!(edge_weight(&g, &w, 0, 1), Some(3));
        assert_eq!(edge_weight(&g, &w, 1, 0), Some(3));
        assert_eq!(edge_weight(&g, &w, 2, 3), Some(7));
        assert_eq!(edge_weight(&g, &w, 0, 2), None);
    }

    #[test]
    fn parallel_edges_take_min() {
        let (g, w) = build_weighted(2, &[(0, 1, 9), (1, 0, 4), (0, 1, 6)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(edge_weight(&g, &w, 0, 1), Some(4));
    }

    #[test]
    fn self_loops_dropped() {
        let (g, _) = build_weighted(2, &[(0, 0, 5), (0, 1, 2)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dial_runs_on_built_weights() {
        // Square with one heavy side: 0-1 (1), 1-2 (1), 2-3 (1), 3-0 (10).
        let (g, w) =
            build_weighted(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 10)]);
        let mut dial = DialBfs::new(4);
        dial.run_with(&g, Some(&w), 0, |_, _| {});
        assert_eq!(dial.distances(), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let (g, w) = build_weighted(3, &[]);
        assert_eq!(g.num_nodes(), 3);
        assert!(w.is_empty());
    }
}
