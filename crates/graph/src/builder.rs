//! Edge-list accumulation and normalisation into [`CsrGraph`].
//!
//! The paper preprocesses every dataset into a *simple, undirected,
//! unweighted, connected* graph (§IV-B): self-loops are dropped, parallel
//! edges collapsed, directed edges symmetrised, and a few edges are added to
//! connect disconnected inputs. [`GraphBuilder`] implements the first three;
//! [`crate::connectivity::make_connected`] implements the last.

use crate::{CsrGraph, NodeId};

/// Accumulates edges and produces a normalised [`CsrGraph`].
///
/// Accepts arbitrary input: duplicate edges, both orientations of the same
/// edge, and self-loops are all tolerated and normalised away in
/// [`GraphBuilder::build`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` vertices
    /// (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes < NodeId::MAX as usize,
            "node count {num_nodes} exceeds u32 id space"
        );
        Self { num_nodes, edges: Vec::new() }
    }

    /// Creates a builder with a capacity hint for the expected edge count.
    ///
    /// The hint is clamped (64 Mi entries ≈ 512 MB) so untrusted counts —
    /// e.g. a corrupt size line in a graph file — cannot abort the process
    /// through a failed up-front allocation; the vector still grows to any
    /// real size on demand.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        const MAX_HINT: usize = 1 << 26;
        let mut b = Self::new(num_nodes);
        b.edges.reserve(num_edges.min(MAX_HINT));
        b
    }

    /// Number of vertices the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of raw (pre-normalisation) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Orientation is irrelevant; duplicates and
    /// self-loops are allowed here and removed at build time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u},{v}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
    }

    /// Adds every edge from an iterator of pairs.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Grows the vertex set so ids up to `id` are valid, returning the new count.
    pub fn ensure_node(&mut self, id: NodeId) -> usize {
        if (id as usize) >= self.num_nodes {
            self.num_nodes = id as usize + 1;
        }
        self.num_nodes
    }

    /// Normalises and builds the CSR graph: drops self-loops, collapses
    /// parallel edges, symmetrises, and sorts every neighbour list.
    ///
    /// Runs in `O(m log m)` for `m` raw edges.
    pub fn build(mut self) -> CsrGraph {
        // Canonical ordering, then dedup, then drop loops.
        self.edges.sort_unstable();
        self.edges.dedup();
        self.edges.retain(|&(u, v)| u != v);

        let n = self.num_nodes;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were globally sorted by (u, v); the second insertion pass
        // (v side) is not globally sorted, so sort each list. Lists are
        // typically tiny; this is cheaper than a second counting pass.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts_unchecked(offsets, targets)
    }

    /// Builds a graph directly from an edge list. Convenience wrapper.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
        let mut b = Self::with_capacity(num_nodes, edges.len());
        b.extend_edges(edges.iter().copied());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_self_loops() {
        let g = GraphBuilder::from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn collapses_parallel_and_reversed_edges() {
        let g = GraphBuilder::from_edges(2, &[(0, 1), (1, 0), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn isolated_nodes_kept() {
        let g = GraphBuilder::from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn ensure_node_grows() {
        let mut b = GraphBuilder::new(1);
        b.ensure_node(9);
        b.add_edge(0, 9);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert!(g.has_edge(0, 9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn build_is_valid_csr() {
        let g = GraphBuilder::from_edges(
            6,
            &[(3, 1), (5, 0), (2, 4), (1, 0), (4, 1), (0, 3), (3, 0)],
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_builder() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
    }
}
