//! Compressed Sparse Row graph representation.
//!
//! The whole workspace operates on immutable, simple, undirected graphs.
//! CSR keeps each vertex's neighbour list contiguous, which is the layout
//! the BFS kernels want: one cache-friendly slice scan per frontier vertex.

use crate::storage::Buffer;
use crate::{Dist, NodeId};
use serde::{Deserialize, Serialize, Value};

/// An immutable, simple, undirected graph in CSR form.
///
/// Invariants (maintained by [`crate::GraphBuilder`] and checked by
/// [`CsrGraph::validate`]):
///
/// * every undirected edge `{u, v}` is stored twice, once per direction;
/// * no self-loops, no parallel edges;
/// * each neighbour list is sorted ascending.
///
/// The two CSR arrays live in [`Buffer`]s, so a graph is backed either by
/// owned vectors (everything built in memory) or by sections of a
/// memory-mapped artifact file served in place — the algorithms above see
/// plain slices either way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` delimits `v`'s neighbour list in `targets`.
    offsets: Buffer<usize>,
    /// Concatenated neighbour lists (length = 2 · number of undirected edges).
    targets: Buffer<NodeId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays violate the CSR invariants listed on the type.
    /// Use [`crate::GraphBuilder`] to construct graphs from edge lists.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        validate_parts(&offsets, &targets).expect("invalid CSR arrays");
        Self { offsets: offsets.into(), targets: targets.into() }
    }

    /// Builds without validation. Caller must uphold the CSR invariants.
    /// Used by trusted internal constructors (builder, subgraph extraction).
    pub(crate) fn from_parts_unchecked(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(validate_parts(&offsets, &targets).is_ok());
        Self { offsets: offsets.into(), targets: targets.into() }
    }

    /// Builds over pre-loaded storage buffers — the artifact load path.
    ///
    /// Runs only the `O(n)` structural checks (offset shape and
    /// monotonicity); the expensive per-edge invariants (sortedness,
    /// symmetry, no self-loops) are trusted, because artifact sections are
    /// integrity-checked end to end and were validated when first built.
    pub fn from_storage(
        offsets: Buffer<usize>,
        targets: Buffer<NodeId>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err("offsets must end at targets.len()".into());
        }
        if offsets.len() - 1 > (NodeId::MAX as usize) {
            return Err("too many nodes for u32 node ids".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        Ok(Self { offsets, targets })
    }

    /// The empty graph.
    pub fn empty() -> Self {
        Self { offsets: vec![0].into(), targets: Vec::new().into() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of stored directed arcs (`2 · num_edges`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Raw CSR offsets (length `num_nodes() + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated neighbour lists.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Number of arcs stored before `v`'s neighbour list — the CSR prefix
    /// sum `offsets[v]`. The direction-optimizing switch heuristic uses
    /// prefix differences to price frontier chunks in arcs rather than
    /// vertices.
    #[inline]
    pub fn arc_prefix(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// Total arcs in the half-open vertex range `lo..hi` — `O(1)` via the
    /// offset prefix sums.
    #[inline]
    pub fn arcs_in_range(&self, lo: NodeId, hi: NodeId) -> usize {
        self.offsets[hi as usize] - self.offsets[lo as usize]
    }

    /// Relabels vertices by descending degree (ties by original id) —
    /// opt-in cache-locality preprocessing for the BFS kernels: hubs land
    /// at small ids, concentrating the hot distance-array and bitmap
    /// entries on a few cache lines. Returns the relabeled graph together
    /// with both id maps; translate per-vertex results back with
    /// [`crate::reorder::Relabeling::to_original_order`].
    pub fn reorder_by_degree(&self) -> crate::reorder::Relabeling {
        crate::reorder::degree_relabel(self)
    }

    /// Checks every CSR invariant; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        validate_parts(&self.offsets, &self.targets)
    }

    /// Sum of distances `Σ_w d(v, w)` given a distance array, skipping
    /// unreachable vertices. Convenience for tests and oracles.
    pub fn sum_distances(dist: &[Dist]) -> u64 {
        dist.iter()
            .filter(|&&d| d != crate::INFINITE_DIST)
            .map(|&d| d as u64)
            .sum()
    }
}

/// Checks every CSR invariant against raw arrays, by reference — shared by
/// [`CsrGraph::validate`] and the debug assertion in the unchecked
/// constructor (which must not clone multi-GB arrays just to check them).
fn validate_parts(offsets: &[usize], targets: &[NodeId]) -> Result<(), String> {
    if offsets.is_empty() {
        return Err("offsets must have at least one entry".into());
    }
    if offsets[0] != 0 {
        return Err("offsets[0] must be 0".into());
    }
    if *offsets.last().unwrap() != targets.len() {
        return Err("offsets must end at targets.len()".into());
    }
    let n = offsets.len() - 1;
    if n > (NodeId::MAX as usize) {
        return Err("too many nodes for u32 node ids".into());
    }
    let has_arc = |u: usize, v: NodeId| targets[offsets[u]..offsets[u + 1]].binary_search(&v).is_ok();
    for v in 0..n {
        if offsets[v] > offsets[v + 1] {
            return Err(format!("offsets not monotone at {v}"));
        }
        let nbrs = &targets[offsets[v]..offsets[v + 1]];
        for w in nbrs.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("neighbour list of {v} not strictly sorted"));
            }
        }
        for &t in nbrs {
            if t as usize >= n {
                return Err(format!("edge target {t} out of range at {v}"));
            }
            if t as usize == v {
                return Err(format!("self-loop at {v}"));
            }
        }
    }
    // Symmetry: every arc has its reverse.
    for v in 0..n {
        for &t in &targets[offsets[v]..offsets[v + 1]] {
            if !has_arc(t as usize, v as NodeId) {
                return Err(format!("missing reverse arc {t}->{v}"));
            }
        }
    }
    Ok(())
}

// Manual serde impls: the JSON shape stays `{"offsets": [...], "targets":
// [...]}` exactly as the former derive emitted, so reports and round-trip
// fixtures are byte-compatible; deserialization always produces owned
// buffers.
impl Serialize for CsrGraph {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("offsets".to_string(), self.offsets().to_value()),
            ("targets".to_string(), self.targets().to_value()),
        ])
    }
}

impl Deserialize for CsrGraph {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let offsets: Vec<usize> = serde::__field(v, "offsets")?;
        let targets: Vec<NodeId> = serde::__field(v, "targets")?;
        Ok(Self { offsets: offsets.into(), targets: targets.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path5() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn path_counts() {
        let g = path5();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path5();
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path5();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = CsrGraph { offsets: vec![0, 1].into(), targets: vec![0].into() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let g = CsrGraph { offsets: vec![0, 1, 1].into(), targets: vec![1].into() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_unsorted() {
        let g = CsrGraph {
            offsets: vec![0, 2, 3, 4].into(),
            targets: vec![2, 1, 0, 0].into(),
        };
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn from_parts_panics_on_bad_input() {
        CsrGraph::from_parts(vec![0, 1], vec![5]);
    }

    #[test]
    fn arc_prefix_matches_offsets() {
        let g = path5();
        assert_eq!(g.arc_prefix(0), 0);
        for v in 0..5u32 {
            assert_eq!(g.arc_prefix(v), g.offsets()[v as usize]);
        }
        assert_eq!(g.arcs_in_range(0, 5), g.num_arcs());
        assert_eq!(g.arcs_in_range(1, 4), g.degree(1) + g.degree(2) + g.degree(3));
        assert_eq!(g.arcs_in_range(2, 2), 0);
    }

    #[test]
    fn reorder_by_degree_sorts_hubs_first() {
        let mut b = GraphBuilder::new(5);
        // Star centred on 4 plus one extra edge: degrees [2,1,1,1,5... ]
        for leaf in 0..4 {
            b.add_edge(4, leaf);
        }
        b.add_edge(0, 1);
        let g = b.build();
        let r = g.reorder_by_degree();
        assert_eq!(r.graph.num_nodes(), 5);
        assert!(r.graph.validate().is_ok());
        // Highest-degree vertex (old 4) becomes new 0.
        assert_eq!(r.old_of_new[0], 4);
        assert_eq!(r.new_of_old[4], 0);
        let degs: Vec<usize> = r.graph.nodes().map(|v| r.graph.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degrees descending: {degs:?}");
    }

    #[test]
    fn serde_roundtrip() {
        let g = path5();
        let json = serde_json::to_string(&g).unwrap();
        let g2: CsrGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn from_storage_checks_structure_only() {
        let g = path5();
        let rebuilt = CsrGraph::from_storage(
            g.offsets().to_vec().into(),
            g.targets().to_vec().into(),
        )
        .unwrap();
        assert_eq!(g, rebuilt);
        // Structural violations are caught…
        assert!(CsrGraph::from_storage(vec![].into(), vec![].into()).is_err());
        assert!(CsrGraph::from_storage(vec![1, 1].into(), vec![].into()).is_err());
        assert!(CsrGraph::from_storage(vec![0, 2].into(), vec![1].into()).is_err());
        assert!(CsrGraph::from_storage(vec![0, 1, 0].into(), vec![0].into()).is_err());
        // …but per-edge invariants are trusted (checksummed sections).
        let asym = CsrGraph::from_storage(vec![0, 1, 1].into(), vec![1].into()).unwrap();
        assert!(asym.validate().is_err());
    }
}
