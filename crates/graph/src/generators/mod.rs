//! Graph generators.
//!
//! Two layers:
//!
//! * `classic` and the random models (`gnm`, Barabási–Albert, R-MAT) — used by
//!   unit/property tests and micro-benchmarks.
//! * [`classes`] — synthetic counterparts of the paper's four dataset
//!   classes (web / social / community / road, Table I). The real SNAP and
//!   UF-collection files are not available offline, so these generators are
//!   parameterised to reproduce the *structural fingerprints* the paper's
//!   analysis (§IV-C2) attributes each technique's benefit to: the fraction
//!   of identical nodes, of degree-1/2 chain nodes, of redundant 3/4-degree
//!   nodes, and the count/skew of biconnected components. See DESIGN.md §3.
//!
//! Every generator takes an explicit seed and is deterministic for a given
//! (parameters, seed) pair.

mod ba;
pub mod classes;
mod classic;
mod random;
mod rmat;

pub use ba::barabasi_albert;
pub use classes::{community_like, road_like, social_like, web_like, ClassParams, GraphClass};
pub use classic::{
    caterpillar, complete_graph, cycle_graph, grid_graph, lollipop, path_graph, star_graph,
};
pub use random::{gnm_random_connected, random_tree};
pub use rmat::rmat;
