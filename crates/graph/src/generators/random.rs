//! Uniform-ish random models.

use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random labelled tree: vertex `i > 0` attaches to a uniformly random
/// earlier vertex. (A random recursive tree — not Prüfer-uniform, but cheap,
/// connected by construction, and adequate for tests.)
pub fn random_tree(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as NodeId, i as NodeId);
    }
    b.build()
}

/// Connected `G(n, m)`-style graph: a random recursive tree plus
/// `m - (n-1)` extra distinct uniformly random edges (best effort — the
/// final edge count can be slightly below `m` if duplicates are drawn
/// repeatedly; it is never above).
///
/// # Panics
/// Panics if `m < n - 1` (cannot be connected) for `n > 0`.
pub fn gnm_random_connected(n: usize, m: usize, seed: u64) -> CsrGraph {
    if n == 0 {
        return CsrGraph::empty();
    }
    assert!(m + 1 >= n, "m = {m} too small to connect {n} vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as NodeId, i as NodeId);
    }
    let extra = m.saturating_sub(n.saturating_sub(1));
    let mut attempts = 0usize;
    let max_attempts = extra.saturating_mul(20) + 100;
    let mut added = 0usize;
    while added < extra && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn tree_is_connected_tree() {
        let g = random_tree(50, 7);
        assert_eq!(g.num_edges(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnm_connected_and_sized() {
        let g = gnm_random_connected(100, 300, 42);
        assert!(is_connected(&g));
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() >= 99);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(gnm_random_connected(40, 80, 5), gnm_random_connected(40, 80, 5));
        assert_ne!(gnm_random_connected(40, 80, 5), gnm_random_connected(40, 80, 6));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn gnm_rejects_underconnected() {
        gnm_random_connected(10, 3, 1);
    }

    #[test]
    fn degenerate() {
        assert_eq!(random_tree(0, 1).num_nodes(), 0);
        assert_eq!(random_tree(1, 1).num_nodes(), 1);
        assert_eq!(gnm_random_connected(0, 0, 1).num_nodes(), 0);
        assert_eq!(gnm_random_connected(1, 0, 1).num_nodes(), 1);
    }
}
