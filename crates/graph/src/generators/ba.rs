//! Barabási–Albert preferential attachment.

use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert model: starts from a small clique of `m + 1` vertices;
/// each new vertex attaches `m` edges to existing vertices chosen with
/// probability proportional to degree (implemented with the standard
/// repeated-endpoint urn). Produces the heavy-tailed degree distributions
/// characteristic of web and social graphs.
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "m must be positive");
    assert!(n > m, "need n > m");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // Urn of edge endpoints: sampling uniformly from it is degree-biased.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed clique on m + 1 vertices.
    for i in 0..=m {
        for j in (i + 1)..=m {
            b.add_edge(i as NodeId, j as NodeId);
            urn.push(i as NodeId);
            urn.push(j as NodeId);
        }
    }
    let mut picked = Vec::with_capacity(m);
    for v in (m + 1)..n {
        picked.clear();
        // Draw m distinct degree-biased targets.
        let mut guard = 0;
        while picked.len() < m && guard < 50 * m {
            guard += 1;
            let t = urn[rng.gen_range(0..urn.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        // Extremely unlikely fallback: fill with arbitrary earlier vertices.
        let mut fill = 0 as NodeId;
        while picked.len() < m {
            if !picked.contains(&fill) {
                picked.push(fill);
            }
            fill += 1;
        }
        for &t in &picked {
            b.add_edge(v as NodeId, t);
            urn.push(v as NodeId);
            urn.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::degree::degree_stats;

    #[test]
    fn connected_with_expected_size() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.num_nodes(), 500);
        assert!(is_connected(&g));
        // clique(4) has 6 edges; each of the 496 remaining vertices adds 3.
        assert_eq!(g.num_edges(), 6 + 496 * 3);
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(200, 4, 3);
        let s = degree_stats(&g);
        assert!(s.min >= 4);
    }

    #[test]
    fn heavy_tail_exists() {
        let g = barabasi_albert(2000, 2, 9);
        let s = degree_stats(&g);
        // Hubs should be far above the mean for a BA graph of this size.
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_m() {
        barabasi_albert(10, 0, 1);
    }
}
