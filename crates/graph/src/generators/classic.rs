//! Deterministic structured graphs.
//!
//! These exercise exactly the structures the BRICS reductions target:
//! paths and caterpillars (chains), stars (identical leaves), cliques
//! (redundant nodes), lollipops (biconnected block + pendant chain).

use crate::{CsrGraph, GraphBuilder, NodeId};

/// Path `0 - 1 - … - (n-1)`.
pub fn path_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// Cycle `0 - 1 - … - (n-1) - 0`. Requires `n >= 3`.
pub fn cycle_graph(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// Star with centre `0` and `n - 1` leaves.
pub fn star_graph(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        b.add_edge(0, i as NodeId);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as NodeId, j as NodeId);
        }
    }
    b.build()
}

/// `rows × cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols as NodeId);
            }
        }
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` vertices with `legs` pendant leaves
/// on every spine vertex. Spine ids come first.
pub fn caterpillar(spine: usize, legs: usize) -> CsrGraph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..spine {
        b.add_edge((i - 1) as NodeId, i as NodeId);
    }
    let mut next = spine as NodeId;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s as NodeId, next);
            next += 1;
        }
    }
    b.build()
}

/// Lollipop: clique `K_m` (ids `0..m`) plus a pendant path of `tail`
/// vertices attached to vertex `0`.
pub fn lollipop(m: usize, tail: usize) -> CsrGraph {
    assert!(m >= 1);
    let n = m + tail;
    let mut b = GraphBuilder::with_capacity(n, m * m / 2 + tail);
    for i in 0..m {
        for j in (i + 1)..m {
            b.add_edge(i as NodeId, j as NodeId);
        }
    }
    let mut prev = 0 as NodeId;
    for t in 0..tail {
        let v = (m + t) as NodeId;
        b.add_edge(prev, v);
        prev = v;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn path_shape() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle_graph(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    #[should_panic]
    fn cycle_too_small() {
        cycle_graph(2);
    }

    #[test]
    fn star_shape() {
        let g = star_graph(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete_graph(5);
        assert_eq!(g.num_edges(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn grid_shape() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(is_connected(&g));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 11); // a tree
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 3); // end of spine + 2 legs
        assert_eq!(g.degree(1), 4); // interior spine + 2 legs
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.degree(0), 4); // clique + tail
        assert_eq!(g.degree(6), 1); // tail end
        assert!(is_connected(&g));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path_graph(0).num_nodes(), 0);
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(star_graph(1).num_edges(), 0);
        assert_eq!(complete_graph(1).num_edges(), 0);
    }
}
