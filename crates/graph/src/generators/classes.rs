//! Synthetic counterparts of the paper's four dataset classes.
//!
//! The paper evaluates on 12 real graphs (Table I) grouped into web, social,
//! community and road classes, and its per-class analysis (§IV-C2) explains
//! each technique's benefit through four structural fingerprints:
//!
//! | class     | identical | deg-1/2 chains | redundant 3/4 | BiCC structure |
//! |-----------|-----------|----------------|---------------|----------------|
//! | web       | ~44 %     | ~54 %          | ~2.4 %        | very many tiny BiCCs + one large |
//! | social    | ~38 %     | ~50 %          | ≈ 0           | skewed: largest ≈ 72 % after I+C |
//! | community | moderate  | moderate       | ~5–7 %        | largest ≈ 80 % |
//! | road      | few       | 70–85 %        | ≈ 0           | largest > 90 %, few BiCCs |
//!
//! These generators reproduce those fingerprints at configurable scale, so
//! the per-class conclusions — *which* technique pays off *where* — can be
//! reproduced without the original files (unavailable offline; see
//! DESIGN.md §3).

use super::{barabasi_albert, grid_graph};
use crate::connectivity::make_connected;
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four dataset classes of the paper (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphClass {
    /// Hyperlink graphs (web-NotreDame, web-BerkStan, webbase-1M).
    Web,
    /// Social networks (soc-Slashdot*, soc-douban).
    Social,
    /// Community / collaboration networks (caidaRouterLevel, citationCiteseer, com-amazon).
    Community,
    /// Road networks (osm-minnesota, osm-luxembourg, usroads).
    Road,
    /// Plain Graph500-parameter R-MAT (a=0.57, b=c=0.19) at ~8 edges per
    /// vertex. Not one of the paper's Table I classes — provided as a
    /// stress generator with none of the planted reducible structure.
    Rmat,
}

impl GraphClass {
    /// The paper's Table I classes, in order (excludes the synthetic-only
    /// [`GraphClass::Rmat`] stress class).
    pub const ALL: [GraphClass; 4] =
        [GraphClass::Web, GraphClass::Social, GraphClass::Community, GraphClass::Road];

    /// Generates a synthetic member of this class.
    pub fn generate(self, params: ClassParams) -> CsrGraph {
        match self {
            GraphClass::Web => web_like(params),
            GraphClass::Social => social_like(params),
            GraphClass::Community => community_like(params),
            GraphClass::Road => road_like(params),
            GraphClass::Rmat => {
                let n = params.target_nodes.max(16);
                let scale = (usize::BITS - (n - 1).leading_zeros()).max(4);
                super::rmat(scale, 8 * n, 0.57, 0.19, 0.19, params.seed)
            }
        }
    }

    /// Lower-case name as used in harness CLIs.
    pub fn name(self) -> &'static str {
        match self {
            GraphClass::Web => "web",
            GraphClass::Social => "social",
            GraphClass::Community => "community",
            GraphClass::Road => "road",
            GraphClass::Rmat => "rmat",
        }
    }
}

impl std::str::FromStr for GraphClass {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "web" => Ok(GraphClass::Web),
            "social" => Ok(GraphClass::Social),
            "community" => Ok(GraphClass::Community),
            "road" => Ok(GraphClass::Road),
            "rmat" => Ok(GraphClass::Rmat),
            other => Err(format!("unknown graph class '{other}'")),
        }
    }
}

/// Scale and seed for a class generator. The generators treat
/// `target_nodes` as approximate (± a few percent): structure, not exact
/// size, is what the experiments depend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassParams {
    /// Approximate vertex count of the generated graph.
    pub target_nodes: usize,
    /// RNG seed; generation is deterministic per (class, params).
    pub seed: u64,
}

impl ClassParams {
    /// Convenience constructor.
    pub fn new(target_nodes: usize, seed: u64) -> Self {
        Self { target_nodes, seed }
    }
}

/// Rebuilds `core` into a [`GraphBuilder`] with headroom for `extra` vertices.
fn builder_from(core: &CsrGraph, extra: usize) -> GraphBuilder {
    // Node ids beyond the core are claimed lazily via `ensure_node` so no
    // isolated padding vertices are ever created.
    let mut b = GraphBuilder::with_capacity(core.num_nodes(), core.num_edges() + 2 * extra);
    b.extend_edges(core.edges());
    b
}

/// Attaches `count` degree-1 leaves to hubs of `core`, in identical groups
/// of `group_lo..=group_hi` leaves per hub. Returns the next free id.
fn attach_identical_leaf_groups(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    core_nodes: usize,
    mut next: NodeId,
    count: usize,
    group_lo: usize,
    group_hi: usize,
) -> NodeId {
    let mut remaining = count;
    while remaining > 0 {
        let hub = rng.gen_range(0..core_nodes) as NodeId;
        let size = rng.gen_range(group_lo..=group_hi).min(remaining);
        for _ in 0..size {
            b.ensure_node(next);
            b.add_edge(hub, next);
            next += 1;
        }
        remaining -= size;
    }
    next
}

/// Attaches pendant chains (paper Type-1) of length `len_lo..=len_hi` to
/// random core vertices until `count` chain vertices are added.
fn attach_pendant_chains(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    core_nodes: usize,
    mut next: NodeId,
    count: usize,
    len_lo: usize,
    len_hi: usize,
) -> NodeId {
    let mut remaining = count;
    while remaining > 0 {
        let mut anchor = rng.gen_range(0..core_nodes) as NodeId;
        let len = rng.gen_range(len_lo..=len_hi).min(remaining);
        for _ in 0..len {
            b.ensure_node(next);
            b.add_edge(anchor, next);
            anchor = next;
            next += 1;
        }
        remaining -= len;
    }
    next
}

/// Attaches parallel 2-vertex "identical chain" pairs: two fresh vertices,
/// both adjacent to the same random pair `(a, b)` of core vertices — each is
/// a degree-2 chain of length 1 between the same endpoints (paper Type-4 /
/// Fig. 1(c)).
fn attach_identical_chain_pairs(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    core_nodes: usize,
    mut next: NodeId,
    pairs: usize,
) -> NodeId {
    for _ in 0..pairs {
        let a = rng.gen_range(0..core_nodes) as NodeId;
        let mut c = rng.gen_range(0..core_nodes) as NodeId;
        if c == a {
            c = (c + 1) % core_nodes as NodeId;
        }
        for _ in 0..2 {
            b.ensure_node(next);
            b.add_edge(a, next);
            b.add_edge(c, next);
            next += 1;
        }
    }
    next
}

/// Adds `count` redundant degree-3 apexes (paper Fig. 1(e)): closes a wedge
/// of `core` into a triangle and attaches a fresh vertex to all three
/// corners. Wedges are read from `core`, so apexes never stack on apexes.
fn attach_redundant3(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    core: &CsrGraph,
    mut next: NodeId,
    count: usize,
) -> NodeId {
    let n = core.num_nodes();
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < count && guard < 50 * count + 100 {
        guard += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let nbrs = core.neighbors(u);
        if nbrs.len() < 2 {
            continue;
        }
        let i = rng.gen_range(0..nbrs.len());
        let mut j = rng.gen_range(0..nbrs.len());
        if i == j {
            j = (j + 1) % nbrs.len();
        }
        let (v, w) = (nbrs[i], nbrs[j]);
        b.add_edge(v, w); // close the wedge (no-op if already an edge)
        b.ensure_node(next);
        b.add_edge(next, u);
        b.add_edge(next, v);
        b.add_edge(next, w);
        next += 1;
        added += 1;
    }
    next
}

/// Adds `count` redundant degree-4 apexes (paper Fig. 1(f)): picks a wedge,
/// closes it into a triangle `u,v,w`, adds one helper vertex `y` adjacent to
/// all of `u,v,w` (forming a K4), then the apex adjacent to all four — every
/// apex neighbour is adjacent to ≥ 2 other apex neighbours.
fn attach_redundant4(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    core: &CsrGraph,
    mut next: NodeId,
    count: usize,
) -> NodeId {
    let n = core.num_nodes();
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < count && guard < 50 * count + 100 {
        guard += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let nbrs = core.neighbors(u);
        if nbrs.len() < 2 {
            continue;
        }
        let i = rng.gen_range(0..nbrs.len());
        let mut j = rng.gen_range(0..nbrs.len());
        if i == j {
            j = (j + 1) % nbrs.len();
        }
        let (v, w) = (nbrs[i], nbrs[j]);
        b.add_edge(v, w);
        let y = next;
        b.ensure_node(y);
        b.add_edge(y, u);
        b.add_edge(y, v);
        b.add_edge(y, w);
        let apex = next + 1;
        b.ensure_node(apex);
        b.add_edge(apex, u);
        b.add_edge(apex, v);
        b.add_edge(apex, w);
        b.add_edge(apex, y);
        next += 2;
        added += 1;
    }
    next
}

/// Web-class generator: scale-free hyperlink-like core plus a dominant
/// fringe of identical leaf groups and pendant chains, and a sprinkle of
/// redundant 3-degree apexes. Roughly 44 % of vertices end up in identical
/// groups and over half have degree ≤ 2, matching Table I's web rows.
pub fn web_like(params: ClassParams) -> CsrGraph {
    let n = params.target_nodes.max(64);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let core_n = (n as f64 * 0.28) as usize;
    let core = barabasi_albert(core_n.max(8), 3, rng.gen());

    let identical = (n as f64 * 0.38) as usize;
    let chains = (n as f64 * 0.24) as usize;
    // Table I: web graphs carry ~7 % identical *chain* nodes (22 K/325 K).
    let ident_chain_pairs = (n as f64 * 0.033) as usize;
    let redundant = (n as f64 * 0.025) as usize;

    let mut b = builder_from(&core, identical + chains + 2 * ident_chain_pairs + redundant);
    let mut next = core.num_nodes() as NodeId;
    next = attach_identical_leaf_groups(&mut b, &mut rng, core.num_nodes(), next, identical, 2, 6);
    next = attach_pendant_chains(&mut b, &mut rng, core.num_nodes(), next, chains, 2, 6);
    next = attach_identical_chain_pairs(&mut b, &mut rng, core.num_nodes(), next, ident_chain_pairs);
    let _ = attach_redundant3(&mut b, &mut rng, &core, next, redundant);
    make_connected(&b.build()).0
}

/// Social-class generator: a large preferential-attachment core (the skewed
/// giant BiCC the paper reports), a heavy degree-1/2 fringe with identical
/// leaf groups, and essentially no redundant 3/4-degree structure — which is
/// why the paper *skips* the R technique on this class.
pub fn social_like(params: ClassParams) -> CsrGraph {
    let n = params.target_nodes.max(64);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let core_n = (n as f64 * 0.45) as usize;
    let core = barabasi_albert(core_n.max(10), 4, rng.gen());

    let identical = (n as f64 * 0.33) as usize;
    let chains = (n as f64 * 0.18) as usize;
    let ident_chain_pairs = (n as f64 * 0.005) as usize;

    let mut b = builder_from(&core, identical + chains + 2 * ident_chain_pairs);
    let mut next = core.num_nodes() as NodeId;
    next = attach_identical_leaf_groups(&mut b, &mut rng, core.num_nodes(), next, identical, 2, 4);
    next = attach_pendant_chains(&mut b, &mut rng, core.num_nodes(), next, chains, 1, 3);
    let _ = attach_identical_chain_pairs(&mut b, &mut rng, core.num_nodes(), next, ident_chain_pairs);
    make_connected(&b.build()).0
}

/// Community-class generator: dense planted communities bridged by sparse
/// inter-community edges (one dominant BiCC covering ~80 % of the reduced
/// graph), with moderate identical / chain fringes and a visible population
/// of redundant 3/4-degree vertices — the class where the paper applies
/// *all* of I+C+R.
pub fn community_like(params: ClassParams) -> CsrGraph {
    let n = params.target_nodes.max(128);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let core_n = (n as f64 * 0.62) as usize;
    let comm_size = 60usize.min(core_n / 4).max(8);
    let num_comm = (core_n / comm_size).max(2);

    let mut b = GraphBuilder::with_capacity(core_n, core_n * 4);
    b.ensure_node((core_n - 1) as NodeId);
    // Dense intra-community wiring: ring + random chords.
    for c in 0..num_comm {
        let lo = c * comm_size;
        let hi = ((c + 1) * comm_size).min(core_n);
        if hi - lo < 2 {
            continue;
        }
        for v in lo..hi {
            let w = if v + 1 < hi { v + 1 } else { lo };
            b.add_edge(v as NodeId, w as NodeId);
        }
        let chords = (hi - lo) * 2;
        for _ in 0..chords {
            let u = rng.gen_range(lo..hi) as NodeId;
            let v = rng.gen_range(lo..hi) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    // Inter-community bridges: ring of communities + random extra pairs,
    // two edges per link so the union stays biconnected (one giant BiCC).
    let link = |b: &mut GraphBuilder, rng: &mut StdRng, c1: usize, c2: usize| {
        for _ in 0..2 {
            let u = (c1 * comm_size + rng.gen_range(0..comm_size.min(core_n - c1 * comm_size)))
                as NodeId;
            let v = (c2 * comm_size + rng.gen_range(0..comm_size.min(core_n - c2 * comm_size)))
                as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
    };
    for c in 0..num_comm {
        link(&mut b, &mut rng, c, (c + 1) % num_comm);
    }
    for _ in 0..num_comm {
        let c1 = rng.gen_range(0..num_comm);
        let c2 = rng.gen_range(0..num_comm);
        if c1 != c2 {
            link(&mut b, &mut rng, c1, c2);
        }
    }
    let core = b.build();

    let identical = (n as f64 * 0.12) as usize;
    let chains = (n as f64 * 0.17) as usize;
    let redundant3 = (n as f64 * 0.045) as usize;
    let redundant4_sites = (n as f64 * 0.01) as usize;

    let mut b = builder_from(&core, identical + chains + redundant3 + 2 * redundant4_sites);
    let mut next = core.num_nodes() as NodeId;
    next = attach_identical_leaf_groups(&mut b, &mut rng, core.num_nodes(), next, identical, 2, 3);
    next = attach_pendant_chains(&mut b, &mut rng, core.num_nodes(), next, chains, 1, 4);
    next = attach_redundant3(&mut b, &mut rng, &core, next, redundant3);
    let _ = attach_redundant4(&mut b, &mut rng, &core, next, redundant4_sites);
    make_connected(&b.build()).0
}

/// Road-class generator: a planar-ish grid whose edges are subdivided into
/// degree-2 runs (streets between junctions) plus dead-end pendant chains —
/// 70–85 % of vertices end up with degree ≤ 2 and one biconnected component
/// covers the overwhelming majority of the graph, matching Table I's road
/// rows. Identical and redundant nodes are nearly absent, which is why the
/// paper applies only the chain technique to this class.
pub fn road_like(params: ClassParams) -> CsrGraph {
    let n = params.target_nodes.max(64);
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Expected vertices per grid edge after subdivision: 1 + E[extra] with
    // extra uniform in 0..=3 (mean 1.5). A rows*cols grid has ~2*r*c edges.
    // Solve r*c * (1 + 2*1.5) ≈ 0.9 n  →  r*c ≈ 0.225 n.
    let junctions = ((n as f64 * 0.225) as usize).max(9);
    let side = (junctions as f64).sqrt() as usize;
    let (rows, cols) = (side.max(3), (junctions / side.max(1)).max(3));
    let grid = grid_graph(rows, cols);

    let pendant = (n as f64 * 0.08) as usize;
    let mut b = GraphBuilder::with_capacity(grid.num_nodes(), 2 * n);
    let mut next = grid.num_nodes() as NodeId;
    // Subdivide each grid edge into a path with 0..=3 interior vertices.
    for (u, v) in grid.edges() {
        let interior = rng.gen_range(0..=3usize);
        let mut prev = u;
        for _ in 0..interior {
            b.ensure_node(next);
            b.add_edge(prev, next);
            prev = next;
            next += 1;
        }
        b.add_edge(prev, v);
    }
    // Dead-end streets.
    next = attach_pendant_chains(&mut b, &mut rng, grid.num_nodes(), next, pendant, 1, 5);
    // Rounding in the junction/subdivision arithmetic can undershoot small
    // targets; top up with extra dead ends so the output stays near `n`.
    if (next as usize) < n * 17 / 20 {
        let deficit = n * 17 / 20 - next as usize;
        let _ = attach_pendant_chains(&mut b, &mut rng, grid.num_nodes(), next, deficit, 1, 4);
    }
    make_connected(&b.build()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::degree::degree_stats;

    fn params(n: usize) -> ClassParams {
        ClassParams::new(n, 12345)
    }

    #[test]
    fn all_classes_connected_and_sized() {
        for class in GraphClass::ALL {
            let g = class.generate(params(3000));
            assert!(is_connected(&g), "{class:?} not connected");
            let n = g.num_nodes();
            assert!(
                (2000..=4500).contains(&n),
                "{class:?} size {n} far from target 3000"
            );
        }
    }

    #[test]
    fn road_is_low_degree_dominated() {
        let g = road_like(params(4000));
        let frac = degree_stats(&g).low_degree_fraction();
        assert!(
            (0.55..=0.95).contains(&frac),
            "road deg<=2 fraction {frac} outside paper's band"
        );
    }

    #[test]
    fn web_has_majority_low_degree_fringe() {
        let g = web_like(params(4000));
        let frac = degree_stats(&g).low_degree_fraction();
        assert!(frac > 0.45, "web deg<=2 fraction {frac} too small");
    }

    #[test]
    fn generators_deterministic() {
        for class in GraphClass::ALL {
            assert_eq!(class.generate(params(1500)), class.generate(params(1500)));
        }
    }

    #[test]
    fn seeds_differ() {
        let a = web_like(ClassParams::new(1500, 1));
        let b = web_like(ClassParams::new(1500, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn class_parsing() {
        assert_eq!("web".parse::<GraphClass>().unwrap(), GraphClass::Web);
        assert_eq!("ROAD".parse::<GraphClass>().unwrap(), GraphClass::Road);
        assert!("metro".parse::<GraphClass>().is_err());
        for c in GraphClass::ALL {
            assert_eq!(c.name().parse::<GraphClass>().unwrap(), c);
        }
    }

    #[test]
    fn tiny_targets_clamped() {
        for class in GraphClass::ALL {
            let g = class.generate(ClassParams::new(10, 3));
            assert!(is_connected(&g));
            assert!(g.num_nodes() >= 10);
        }
    }
}
