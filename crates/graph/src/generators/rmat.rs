//! R-MAT recursive matrix generator (Chakrabarti–Zhan–Faloutsos).

use crate::{connectivity::make_connected, CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT generator over `2^scale` vertices with `edges` undirected edge
/// draws and quadrant probabilities `(a, b, c)` (`d = 1 - a - b - c`).
/// The classic skewed setting is `(0.57, 0.19, 0.19)`.
///
/// The result is normalised to a simple graph and made connected (isolated
/// padding vertices are linked in), so the final edge count can differ
/// slightly from `edges`.
///
/// # Panics
/// Panics if the probabilities are invalid or `scale` is 0.
pub fn rmat(scale: u32, edges: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale out of range");
    let d = 1.0 - a - b - c;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be a distribution"
    );
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, edges);
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            builder.add_edge(u as NodeId, v as NodeId);
        }
    }
    let (g, _) = make_connected(&builder.build());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::degree::degree_stats;

    #[test]
    fn size_and_connectivity() {
        let g = rmat(10, 4000, 0.57, 0.19, 0.19, 1);
        assert_eq!(g.num_nodes(), 1024);
        assert!(is_connected(&g));
        assert!(g.num_edges() <= 4000 + 1024);
    }

    #[test]
    fn skewed_quadrants_give_skewed_degrees() {
        let g = rmat(11, 10000, 0.57, 0.19, 0.19, 7);
        let s = degree_stats(&g);
        assert!(s.max as f64 > 5.0 * s.mean);
    }

    #[test]
    fn uniform_quadrants_roughly_flat() {
        let g = rmat(10, 8000, 0.25, 0.25, 0.25, 7);
        let s = degree_stats(&g);
        assert!((s.max as f64) < 4.0 * s.mean.max(4.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            rmat(8, 1000, 0.57, 0.19, 0.19, 3),
            rmat(8, 1000, 0.57, 0.19, 0.19, 3)
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        rmat(8, 100, 0.9, 0.2, 0.2, 1);
    }
}
