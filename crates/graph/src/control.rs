//! Run control: wall-clock deadlines, cooperative cancellation, memory
//! budgets, panic capture and deterministic fault injection for
//! long-running traversal loops.
//!
//! A [`RunControl`] is threaded through the parallel BFS kernels (see
//! [`crate::traversal`]) and the estimator loops in the `brics` crate. The
//! contract is *per-source granularity*: the control is consulted **before**
//! each BFS source is started, and a source that has started always runs to
//! completion. This keeps interrupted accumulations sound — shared
//! accumulators only ever contain complete per-source contributions, so a
//! partial farness sum is still a valid lower bound of the true farness
//! (every distance is non-negative and sources are independent).
//!
//! Cancellation is shared: clones of a `RunControl` (and [`CancelToken`]s
//! handed out by [`RunControl::cancel_token`]) observe the same flag, so a
//! supervisor thread can stop an estimation it started elsewhere.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] arms named failpoints ([`FaultSite`]) with deterministic
//! triggers. The engine consults the plan at each site via
//! [`RunControl::fault_apply`]; when a trigger matches, the requested
//! [`FaultKind`] is returned for the call site to enact (panic, sleep, deny
//! an allocation, force the deadline, fake an I/O error). Hit and fired
//! counters are shared across clones, so a chaos run is fully auditable
//! after the fact through [`FaultPlan::site_records`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a controlled run finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every scheduled BFS source ran.
    Complete,
    /// The wall-clock deadline expired; remaining sources were skipped.
    Deadline,
    /// The run was cancelled through a [`CancelToken`]; remaining sources
    /// were skipped.
    Cancelled,
    /// Live tracked bytes grew past the configured memory budget after
    /// admission; remaining sources were skipped. Only reachable when the
    /// tracking allocator is installed (see
    /// [`crate::telemetry::memory`]) — without it live bytes read as zero
    /// and the budget is enforced against the planning figures alone.
    MemoryLimit,
    /// The run answered, but through a degradation fallback: a cheaper rung
    /// of the quality ladder, or with some sources permanently quarantined
    /// after worker failures. The values returned are still sound lower
    /// bounds, but they are not the requested estimate.
    Degraded,
}

impl RunOutcome {
    /// Whether the run processed all scheduled work as requested.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }

    /// Whether the run was stopped early by a deadline, cancellation or
    /// the live-memory limit (degradation is an answer, not an
    /// interruption).
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            RunOutcome::Deadline | RunOutcome::Cancelled | RunOutcome::MemoryLimit
        )
    }

    /// Merges two outcomes from consecutive phases of one run: the first
    /// interruption wins. Degradation is weaker than an interruption — a
    /// degraded phase followed by a deadline/cancel reports the
    /// interruption, because work was both degraded *and* cut short — but
    /// stronger than completeness.
    pub fn merge(self, later: RunOutcome) -> RunOutcome {
        match (self, later) {
            (RunOutcome::Complete, l) => l,
            (RunOutcome::Degraded, l) if l.is_interrupted() => l,
            (RunOutcome::Degraded, _) => RunOutcome::Degraded,
            (s, _) => s,
        }
    }
}

/// Handle for cancelling a run from another thread. Cheap to clone; all
/// clones (and the originating [`RunControl`]) share one flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Workers notice before starting their next
    /// BFS source.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Budget exceeded up-front: a run would allocate more memory than allowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudgetExceeded {
    /// Bytes the run would need to allocate.
    pub required_bytes: u64,
    /// The configured cap.
    pub budget_bytes: u64,
}

/// Number of named failpoints (length of [`FaultSite::ALL`]).
const NUM_SITES: usize = 9;

/// A named failpoint in the engine. Sites are stable identifiers — the
/// `--fault` CLI grammar and the run report both refer to them by
/// [`FaultSite::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Between reduction-rule passes in the reduce pipeline
    /// (argument: rule ordinal).
    ReduceRule,
    /// Before building the block-cut-tree state for the cumulative method.
    BctBuild,
    /// When a worker picks up a BFS source (argument: source vertex id).
    BfsSource,
    /// At each level of a frontier-parallel BFS (argument: level).
    BfsLevel,
    /// When a worker picks up a batch of sources for the bit-parallel
    /// multi-source BFS kernel (argument: batch ordinal within the call).
    BfsBatch,
    /// When a phase-B block task starts in the cumulative engine
    /// (argument: global source id).
    EstimatePhaseB,
    /// When the CLI reads a graph from disk.
    IoRead,
    /// In [`RunControl::admit_memory`] (argument: requested bytes).
    AllocAdmit,
    /// During prepared-graph artifact validation (argument: stage —
    /// 0 = header, 1 = section table, 2 = checksum).
    IoArtifact,
}

impl FaultSite {
    /// Every site, in internal index order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::ReduceRule,
        FaultSite::BctBuild,
        FaultSite::BfsSource,
        FaultSite::BfsLevel,
        FaultSite::BfsBatch,
        FaultSite::EstimatePhaseB,
        FaultSite::IoRead,
        FaultSite::AllocAdmit,
        FaultSite::IoArtifact,
    ];

    /// The stable dotted name used by the `--fault` grammar and the report.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ReduceRule => "reduce.rule",
            FaultSite::BctBuild => "bct.build",
            FaultSite::BfsSource => "bfs.source",
            FaultSite::BfsLevel => "bfs.level",
            FaultSite::BfsBatch => "bfs.batch",
            FaultSite::EstimatePhaseB => "estimate.phase_b",
            FaultSite::IoRead => "io.read",
            FaultSite::AllocAdmit => "alloc.admit",
            FaultSite::IoArtifact => "io.artifact",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::ReduceRule => 0,
            FaultSite::BctBuild => 1,
            FaultSite::BfsSource => 2,
            FaultSite::BfsLevel => 3,
            FaultSite::BfsBatch => 4,
            FaultSite::EstimatePhaseB => 5,
            FaultSite::IoRead => 6,
            FaultSite::AllocAdmit => 7,
            FaultSite::IoArtifact => 8,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| format!("unknown fault site `{s}` (sites: reduce.rule, bct.build, bfs.source, bfs.level, bfs.batch, estimate.phase_b, io.read, alloc.admit, io.artifact)"))
    }
}

/// What an armed failpoint does when its trigger matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker at the site panics (exercises `catch_unwind` isolation).
    Panic,
    /// The site sleeps ~1ms before continuing (latency injection).
    Slow,
    /// The control's deadline is forced to expire: every later
    /// [`RunControl::should_stop`] reports [`RunOutcome::Deadline`].
    DeadlineExpire,
    /// The next [`RunControl::admit_memory`] call is denied (immediately,
    /// when armed at [`FaultSite::AllocAdmit`]).
    MemDeny,
    /// The site behaves as if an I/O error occurred (workers treat it like
    /// a panic; the CLI maps it to an input error).
    IoError,
}

impl FaultKind {
    /// The stable dashed name used by the `--fault` grammar and the report.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Slow => "slow",
            FaultKind::DeadlineExpire => "deadline-expire",
            FaultKind::MemDeny => "mem-deny",
            FaultKind::IoError => "io-error",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "slow" => Ok(FaultKind::Slow),
            "deadline-expire" => Ok(FaultKind::DeadlineExpire),
            "mem-deny" => Ok(FaultKind::MemDeny),
            "io-error" => Ok(FaultKind::IoError),
            other => Err(format!(
                "unknown fault kind `{other}` (kinds: panic, slow, deadline-expire, mem-deny, io-error)"
            )),
        }
    }
}

/// When an armed failpoint fires. Hit counts are per-site and 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fires on exactly the `n`-th hit of the site (`nth:N`, 1-based).
    Nth(u64),
    /// Fires on every `k`-th hit of the site (`every:K`).
    Every(u64),
    /// Fires on each hit independently with probability `permille`/1000,
    /// decided by a seeded hash of the hit ordinal (`prob:P[:SEED]`) —
    /// deterministic for a given seed and hit sequence.
    Prob {
        /// Firing probability in thousandths (0..=1000).
        permille: u32,
        /// Seed for the per-hit decision hash.
        seed: u64,
    },
    /// Fires whenever the site's argument equals `arg` (`on:ARG`); for
    /// [`FaultSite::BfsSource`] the argument is the source vertex id.
    OnArg(u64),
}

/// SplitMix64: cheap, well-mixed hash for the seeded-probability trigger.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultTrigger {
    fn matches(&self, hit: u64, arg: u64) -> bool {
        match *self {
            FaultTrigger::Nth(n) => hit == n,
            FaultTrigger::Every(k) => k > 0 && hit % k == 0,
            FaultTrigger::Prob { permille, seed } => {
                splitmix64(seed ^ hit.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1000
                    < u64::from(permille)
            }
            FaultTrigger::OnArg(a) => arg == a,
        }
    }
}

/// One armed failpoint: fire `kind` at `site` when `trigger` matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultArm {
    /// Where the fault is armed.
    pub site: FaultSite,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: FaultTrigger,
}

impl fmt::Display for FaultArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.site, self.kind)?;
        match self.trigger {
            FaultTrigger::Nth(n) => write!(f, "@nth:{n}"),
            FaultTrigger::Every(k) => write!(f, "@every:{k}"),
            FaultTrigger::Prob { permille, seed } => {
                write!(f, "@prob:{}:{seed}", permille as f64 / 1000.0)
            }
            FaultTrigger::OnArg(a) => write!(f, "@on:{a}"),
        }
    }
}

#[derive(Debug)]
struct FaultShared {
    hits: [AtomicU64; NUM_SITES],
    fired: [AtomicU64; NUM_SITES],
    force_deadline: AtomicBool,
    deny_admission: AtomicBool,
}

impl Default for FaultShared {
    fn default() -> Self {
        Self {
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            force_deadline: AtomicBool::new(false),
            deny_admission: AtomicBool::new(false),
        }
    }
}

/// Accounting snapshot for one failpoint: how often it was reached and how
/// often an arm fired there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSiteStats {
    /// The site's stable dotted name.
    pub site: &'static str,
    /// Times the site was evaluated.
    pub hits: u64,
    /// Times an arm fired at the site.
    pub fired: u64,
}

/// A deterministic fault-injection plan: a set of [`FaultArm`]s plus shared
/// hit/fired counters. Clones share the counters (and the sticky
/// deadline/denial effects), so the plan attached to a [`RunControl`] can
/// be audited from the original handle after a run.
///
/// The `--fault` grammar accepted by [`FaultPlan::parse`] is a
/// comma-separated list of `site=kind[@trigger]` specs:
///
/// ```
/// use brics_graph::control::{FaultKind, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::parse("bfs.source=panic@nth:2,alloc.admit=mem-deny").unwrap();
/// assert_eq!(plan.arms().len(), 2);
/// assert_eq!(plan.trip(FaultSite::BfsSource, 7), None); // hit 1: no fire
/// assert_eq!(plan.trip(FaultSite::BfsSource, 9), Some(FaultKind::Panic)); // hit 2
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    arms: Arc<Vec<FaultArm>>,
    shared: Arc<FaultShared>,
}

impl FaultPlan {
    /// A plan from explicit arms, with fresh counters.
    pub fn new(arms: Vec<FaultArm>) -> Self {
        Self { arms: Arc::new(arms), shared: Arc::new(FaultShared::default()) }
    }

    /// Parses a comma-separated `site=kind[@trigger]` list. Triggers:
    /// `nth:N` (default `nth:1`), `every:K`, `prob:P[:SEED]` with `P` a
    /// fraction in `[0,1]`, and `on:ARG`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut arms = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            arms.push(Self::parse_arm(part)?);
        }
        if arms.is_empty() {
            return Err("empty fault spec (expected site=kind[@trigger])".to_string());
        }
        Ok(FaultPlan::new(arms))
    }

    fn parse_arm(s: &str) -> Result<FaultArm, String> {
        let (site_s, rest) = s
            .split_once('=')
            .ok_or_else(|| format!("fault spec `{s}`: expected site=kind[@trigger]"))?;
        let site: FaultSite = site_s.trim().parse()?;
        let (kind_s, trig_s) = match rest.split_once('@') {
            Some((k, t)) => (k, Some(t)),
            None => (rest, None),
        };
        let kind: FaultKind = kind_s.trim().parse()?;
        let trigger = match trig_s {
            None => FaultTrigger::Nth(1),
            Some(t) => Self::parse_trigger(t.trim())?,
        };
        Ok(FaultArm { site, kind, trigger })
    }

    fn parse_trigger(s: &str) -> Result<FaultTrigger, String> {
        let (head, rest) = s.split_once(':').ok_or_else(|| {
            format!("trigger `{s}`: expected nth:N, every:K, prob:P[:SEED] or on:ARG")
        })?;
        let bad_num = |what: &str| format!("trigger `{s}`: `{what}` is not a number");
        match head {
            "nth" => {
                let n: u64 = rest.parse().map_err(|_| bad_num(rest))?;
                if n == 0 {
                    return Err(format!("trigger `{s}`: nth is 1-based"));
                }
                Ok(FaultTrigger::Nth(n))
            }
            "every" => {
                let k: u64 = rest.parse().map_err(|_| bad_num(rest))?;
                if k == 0 {
                    return Err(format!("trigger `{s}`: every:K needs K >= 1"));
                }
                Ok(FaultTrigger::Every(k))
            }
            "on" => {
                let a: u64 = rest.parse().map_err(|_| bad_num(rest))?;
                Ok(FaultTrigger::OnArg(a))
            }
            "prob" => {
                let (p_s, seed) = match rest.split_once(':') {
                    Some((p, seed_s)) => {
                        (p, seed_s.parse::<u64>().map_err(|_| bad_num(seed_s))?)
                    }
                    None => (rest, 0x5eed_5eed_5eed_5eedu64),
                };
                let p: f64 = p_s.parse().map_err(|_| bad_num(p_s))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("trigger `{s}`: probability must be in [0,1]"));
                }
                Ok(FaultTrigger::Prob { permille: (p * 1000.0).round() as u32, seed })
            }
            other => Err(format!(
                "unknown trigger `{other}` (triggers: nth:N, every:K, prob:P[:SEED], on:ARG)"
            )),
        }
    }

    /// Returns `self` with one more arm appended (fresh shared counters
    /// are kept — arms are armed before the run starts).
    pub fn with_arm(self, arm: FaultArm) -> Self {
        let mut arms = (*self.arms).clone();
        arms.push(arm);
        Self { arms: Arc::new(arms), shared: self.shared }
    }

    /// The armed failpoints, in arming order.
    pub fn arms(&self) -> &[FaultArm] {
        &self.arms
    }

    /// Whether no failpoints are armed.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Evaluates the site: counts the hit, then fires the first matching
    /// arm (if any), applying sticky plan-level effects
    /// (deadline-expire / mem-deny) and returning the fired kind for the
    /// call site to enact.
    pub fn trip(&self, site: FaultSite, arg: u64) -> Option<FaultKind> {
        let i = site.index();
        let hit = self.shared.hits[i].fetch_add(1, Ordering::Relaxed) + 1;
        for arm in self.arms.iter().filter(|a| a.site == site) {
            if arm.trigger.matches(hit, arg) {
                self.shared.fired[i].fetch_add(1, Ordering::Relaxed);
                match arm.kind {
                    FaultKind::DeadlineExpire => {
                        self.shared.force_deadline.store(true, Ordering::Relaxed);
                    }
                    FaultKind::MemDeny => {
                        self.shared.deny_admission.store(true, Ordering::Relaxed);
                    }
                    _ => {}
                }
                return Some(arm.kind);
            }
        }
        None
    }

    /// Checks whether an `on:ARG` arm targets (`site`, `arg`) without
    /// counting a hit. Back-compat support for the old targeted-panic hook.
    pub fn peek_on_arg(&self, site: FaultSite, arg: u64) -> Option<FaultKind> {
        self.arms
            .iter()
            .find(|a| a.site == site && a.trigger == FaultTrigger::OnArg(arg))
            .map(|a| a.kind)
    }

    /// Times `site` was evaluated.
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.shared.hits[site.index()].load(Ordering::Relaxed)
    }

    /// Times an arm fired at `site`.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.shared.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total fires across all sites.
    pub fn total_fired(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.fired(s)).sum()
    }

    /// Per-site accounting for every site that is armed or was reached —
    /// the audit trail stamped into the run report.
    pub fn site_records(&self) -> Vec<FaultSiteStats> {
        FaultSite::ALL
            .into_iter()
            .filter(|&s| self.hits(s) > 0 || self.arms.iter().any(|a| a.site == s))
            .map(|s| FaultSiteStats { site: s.name(), hits: self.hits(s), fired: self.fired(s) })
            .collect()
    }

    /// Whether a deadline-expire arm has fired (sticky).
    pub fn deadline_forced(&self) -> bool {
        self.shared.force_deadline.load(Ordering::Relaxed)
    }

    /// Consumes a pending mem-deny effect set by a fire at another site.
    pub fn take_denial(&self) -> bool {
        self.shared.deny_admission.swap(false, Ordering::Relaxed)
    }
}

/// Execution limits for an estimation run. The default is unbounded.
///
/// ```
/// use brics_graph::control::RunControl;
/// use std::time::Duration;
///
/// let ctl = RunControl::new().with_timeout(Duration::from_secs(30));
/// assert!(ctl.should_stop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct RunControl {
    deadline: Option<Instant>,
    cancel: CancelToken,
    max_mem_bytes: Option<u64>,
    faults: Option<FaultPlan>,
    /// Tracked live bytes at the last successful budgeted admission —
    /// the reference level live-bytes enforcement measures growth from.
    /// `u64::MAX` (shared across clones) until armed; enforcement is
    /// inert before the first admission so a plain `should_stop` loop
    /// with no admission call keeps v2 semantics.
    mem_baseline: Arc<AtomicU64>,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            deadline: None,
            cancel: CancelToken::default(),
            max_mem_bytes: None,
            faults: None,
            mem_baseline: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }
}

impl RunControl {
    /// An unbounded control: never stops, never rejects.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops scheduling new BFS sources once `budget` has elapsed
    /// (measured from this call).
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Stops scheduling new BFS sources after `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Rejects runs whose planned allocations exceed `bytes`
    /// (see [`RunControl::admit_memory`]).
    pub fn with_memory_budget_bytes(mut self, bytes: u64) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// Rejects runs whose planned allocations exceed `mb` mebibytes.
    pub fn with_memory_budget_mb(self, mb: u64) -> Self {
        self.with_memory_budget_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// Attaches a fault-injection plan; sites consult it via
    /// [`RunControl::fault_apply`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any (clones share its counters).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Injects a panic when a worker starts the given BFS source.
    ///
    /// Superseded by [`RunControl::with_fault_plan`] — this is a
    /// back-compat shim for `bfs.source=panic@on:SOURCE` and will be
    /// removed once callers migrate.
    #[doc(hidden)]
    pub fn with_injected_panic(mut self, source: crate::NodeId) -> Self {
        let arm = FaultArm {
            site: FaultSite::BfsSource,
            kind: FaultKind::Panic,
            trigger: FaultTrigger::OnArg(u64::from(source)),
        };
        self.faults = Some(self.faults.take().unwrap_or_default().with_arm(arm));
        self
    }

    /// A token that cancels this run (shared with every clone of `self`).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Checks the cancel flag, then the (possibly fault-forced) deadline,
    /// then — once a budgeted [`RunControl::admit_memory`] has armed the
    /// baseline — live tracked heap growth against the memory budget.
    /// `None` means keep going; otherwise the cause of the stop. Called
    /// once per BFS source / level / batch — an `Instant::now()` and two
    /// relaxed loads per source are noise next to a BFS.
    pub fn should_stop(&self) -> Option<RunOutcome> {
        if self.cancel.is_cancelled() {
            return Some(RunOutcome::Cancelled);
        }
        if let Some(plan) = &self.faults {
            if plan.deadline_forced() {
                return Some(RunOutcome::Deadline);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(RunOutcome::Deadline);
            }
        }
        if let Some(budget) = self.max_mem_bytes {
            let baseline = self.mem_baseline.load(Ordering::Relaxed);
            if baseline != u64::MAX {
                let live = crate::telemetry::memory::live_bytes();
                if live.saturating_sub(baseline) > budget {
                    return Some(RunOutcome::MemoryLimit);
                }
            }
        }
        None
    }

    /// Evaluates the fault plan at `site` with a site-specific argument
    /// (source id, level, bytes…). Returns the fired kind, if any, for the
    /// caller to enact; `Slow` is already enacted here (≈1ms sleep).
    pub fn fault_apply(&self, site: FaultSite, arg: u64) -> Option<FaultKind> {
        let kind = self.faults.as_ref()?.trip(site, arg)?;
        if kind == FaultKind::Slow {
            std::thread::sleep(Duration::from_millis(1));
        }
        Some(kind)
    }

    /// Admits or rejects a run that plans to allocate `required_bytes`.
    /// Call before the large `O(n·k)` / per-block allocations. A fired
    /// `mem-deny` fault (here or sticky from another site) denies the
    /// admission regardless of the configured budget.
    ///
    /// A *successful* admission against a configured budget additionally
    /// arms live-bytes enforcement: the tracked heap level at this moment
    /// becomes the baseline, and [`RunControl::should_stop`] reports
    /// [`RunOutcome::MemoryLimit`] once live bytes grow more than the
    /// budget above it. With the tracking allocator absent live bytes
    /// read zero and the check never fires.
    pub fn admit_memory(&self, required_bytes: u64) -> Result<(), MemoryBudgetExceeded> {
        if let Some(plan) = &self.faults {
            let fired_here =
                plan.trip(FaultSite::AllocAdmit, required_bytes) == Some(FaultKind::MemDeny);
            // One denial per fire: consuming the sticky flag here also
            // clears the copy set by a fire at this very site.
            let sticky = plan.take_denial();
            if fired_here || sticky {
                return Err(MemoryBudgetExceeded {
                    required_bytes,
                    budget_bytes: self.max_mem_bytes.unwrap_or(0),
                });
            }
        }
        match self.max_mem_bytes {
            Some(budget) if required_bytes > budget => {
                Err(MemoryBudgetExceeded { required_bytes, budget_bytes: budget })
            }
            Some(_) => {
                self.mem_baseline
                    .store(crate::telemetry::memory::live_bytes(), Ordering::Relaxed);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// The configured memory cap, if any.
    pub fn memory_budget_bytes(&self) -> Option<u64> {
        self.max_mem_bytes
    }

    /// Whether a worker processing `source` should panic (back-compat view
    /// of a `bfs.source=panic@on:SOURCE` arm).
    #[doc(hidden)]
    pub fn injected_panic_for(&self, source: crate::NodeId) -> bool {
        self.faults.as_ref().is_some_and(|p| {
            p.peek_on_arg(FaultSite::BfsSource, u64::from(source)) == Some(FaultKind::Panic)
        })
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let ctl = RunControl::new();
        assert_eq!(ctl.should_stop(), None);
        assert!(ctl.admit_memory(u64::MAX).is_ok());
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = RunControl::new().with_timeout(Duration::ZERO);
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Deadline));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let ctl = RunControl::new().with_timeout(Duration::from_secs(3600));
        assert_eq!(ctl.should_stop(), None);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let ctl = RunControl::new();
        let clone = ctl.clone();
        let token = ctl.cancel_token();
        assert_eq!(clone.should_stop(), None);
        token.cancel();
        assert_eq!(clone.should_stop(), Some(RunOutcome::Cancelled));
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Cancelled));
    }

    #[test]
    fn cancel_beats_deadline() {
        let ctl = RunControl::new().with_timeout(Duration::ZERO);
        ctl.cancel_token().cancel();
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Cancelled));
    }

    #[test]
    fn memory_budget_boundary() {
        let ctl = RunControl::new().with_memory_budget_bytes(1000);
        assert!(ctl.admit_memory(1000).is_ok());
        let err = ctl.admit_memory(1001).unwrap_err();
        assert_eq!(err.required_bytes, 1001);
        assert_eq!(err.budget_bytes, 1000);
        let mb = RunControl::new().with_memory_budget_mb(2);
        assert!(mb.admit_memory(2 * 1024 * 1024).is_ok());
        assert!(mb.admit_memory(2 * 1024 * 1024 + 1).is_err());
    }

    #[test]
    fn outcome_merge_keeps_first_interruption() {
        use RunOutcome::*;
        assert_eq!(Complete.merge(Deadline), Deadline);
        assert_eq!(Deadline.merge(Cancelled), Deadline);
        assert_eq!(Cancelled.merge(Complete), Cancelled);
        assert_eq!(Complete.merge(Complete), Complete);
    }

    #[test]
    fn outcome_merge_full_pair_matrix() {
        use RunOutcome::*;
        // (earlier, later) -> merged, for all 25 pairs. Interruptions are
        // sticky; Degraded absorbs Complete/Degraded but yields to a later
        // interruption; Complete adopts whatever comes later.
        let cases = [
            (Complete, Complete, Complete),
            (Complete, Deadline, Deadline),
            (Complete, Cancelled, Cancelled),
            (Complete, MemoryLimit, MemoryLimit),
            (Complete, Degraded, Degraded),
            (Deadline, Complete, Deadline),
            (Deadline, Deadline, Deadline),
            (Deadline, Cancelled, Deadline),
            (Deadline, MemoryLimit, Deadline),
            (Deadline, Degraded, Deadline),
            (Cancelled, Complete, Cancelled),
            (Cancelled, Deadline, Cancelled),
            (Cancelled, Cancelled, Cancelled),
            (Cancelled, MemoryLimit, Cancelled),
            (Cancelled, Degraded, Cancelled),
            (MemoryLimit, Complete, MemoryLimit),
            (MemoryLimit, Deadline, MemoryLimit),
            (MemoryLimit, Cancelled, MemoryLimit),
            (MemoryLimit, MemoryLimit, MemoryLimit),
            (MemoryLimit, Degraded, MemoryLimit),
            (Degraded, Complete, Degraded),
            (Degraded, Deadline, Deadline),
            (Degraded, Cancelled, Cancelled),
            (Degraded, MemoryLimit, MemoryLimit),
            (Degraded, Degraded, Degraded),
        ];
        for (a, b, want) in cases {
            assert_eq!(a.merge(b), want, "{a:?}.merge({b:?})");
        }
        assert!(!Degraded.is_complete());
        assert!(!Degraded.is_interrupted());
        assert!(Deadline.is_interrupted() && Cancelled.is_interrupted());
        assert!(MemoryLimit.is_interrupted() && !MemoryLimit.is_complete());
    }

    #[test]
    fn live_budget_enforcement_requires_armed_baseline_and_tracking() {
        // Budget configured but admit_memory never called: the baseline
        // stays unarmed and should_stop keeps v2 semantics.
        let ctl = RunControl::new().with_memory_budget_bytes(0);
        assert_eq!(ctl.should_stop(), None);
        // After a successful admission the baseline arms — but this test
        // binary has no tracking allocator, so live bytes read zero and a
        // zero budget still never trips (growth is 0 > 0 = false). The
        // installed-allocator behavior is pinned in tests/memory_tracking.
        assert!(ctl.admit_memory(0).is_ok());
        assert_eq!(ctl.should_stop(), None);
        // Clones share the armed baseline like they share cancellation.
        assert_eq!(ctl.clone().should_stop(), None);
    }

    #[test]
    fn panic_message_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(payload.as_ref()), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(payload.as_ref()), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u8);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }

    #[test]
    fn injected_panic_hook_targets_one_source() {
        let ctl = RunControl::new().with_injected_panic(5);
        assert!(ctl.injected_panic_for(5));
        assert!(!ctl.injected_panic_for(4));
        assert!(!RunControl::new().injected_panic_for(5));
    }

    #[test]
    fn injected_panic_shim_is_a_fault_arm() {
        let ctl = RunControl::new().with_injected_panic(5);
        let plan = ctl.fault_plan().expect("shim arms a plan");
        assert_eq!(
            plan.arms(),
            &[FaultArm {
                site: FaultSite::BfsSource,
                kind: FaultKind::Panic,
                trigger: FaultTrigger::OnArg(5),
            }]
        );
        // And the plan fires exactly on that source.
        assert_eq!(plan.trip(FaultSite::BfsSource, 4), None);
        assert_eq!(plan.trip(FaultSite::BfsSource, 5), Some(FaultKind::Panic));
    }

    #[test]
    fn parse_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "bfs.source=panic@nth:3, reduce.rule=slow@every:2,alloc.admit=mem-deny,\
             bfs.level=deadline-expire@prob:0.5:42,io.read=io-error@on:7",
        )
        .unwrap();
        let arms = plan.arms();
        assert_eq!(arms.len(), 5);
        assert_eq!(arms[0].site, FaultSite::BfsSource);
        assert_eq!(arms[0].kind, FaultKind::Panic);
        assert_eq!(arms[0].trigger, FaultTrigger::Nth(3));
        assert_eq!(arms[1].trigger, FaultTrigger::Every(2));
        assert_eq!(arms[2].trigger, FaultTrigger::Nth(1), "default trigger is nth:1");
        assert_eq!(arms[3].trigger, FaultTrigger::Prob { permille: 500, seed: 42 });
        assert_eq!(arms[4].trigger, FaultTrigger::OnArg(7));
        // Display of an arm re-parses to itself.
        for arm in arms {
            let rendered = arm.to_string();
            let reparsed = FaultPlan::parse(&rendered).unwrap();
            assert_eq!(reparsed.arms()[0], *arm, "round-trip of `{rendered}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "bfs.source",
            "nowhere=panic",
            "bfs.source=explode",
            "bfs.source=panic@sometimes",
            "bfs.source=panic@nth:0",
            "bfs.source=panic@every:0",
            "bfs.source=panic@nth:x",
            "bfs.source=panic@prob:1.5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn triggers_fire_deterministically() {
        let plan = FaultPlan::parse("bfs.source=panic@every:3").unwrap();
        let fires: Vec<bool> =
            (0..9).map(|_| plan.trip(FaultSite::BfsSource, 0).is_some()).collect();
        assert_eq!(fires, [false, false, true, false, false, true, false, false, true]);
        assert_eq!(plan.hits(FaultSite::BfsSource), 9);
        assert_eq!(plan.fired(FaultSite::BfsSource), 3);
        assert_eq!(plan.total_fired(), 3);

        // Seeded probability: two plans with the same seed make identical
        // per-hit decisions.
        let a = FaultPlan::parse("bfs.source=panic@prob:0.4:9").unwrap();
        let b = FaultPlan::parse("bfs.source=panic@prob:0.4:9").unwrap();
        let da: Vec<bool> = (0..64).map(|_| a.trip(FaultSite::BfsSource, 0).is_some()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.trip(FaultSite::BfsSource, 0).is_some()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&f| f) && da.iter().any(|&f| !f), "p=0.4 should mix over 64 hits");
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let plan = FaultPlan::parse("bfs.source=panic@nth:1").unwrap();
        let ctl = RunControl::new().with_fault_plan(plan.clone());
        let clone = ctl.clone();
        clone.fault_apply(FaultSite::BfsSource, 11);
        assert_eq!(plan.hits(FaultSite::BfsSource), 1);
        assert_eq!(plan.fired(FaultSite::BfsSource), 1);
        let records = plan.site_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], FaultSiteStats { site: "bfs.source", hits: 1, fired: 1 });
    }

    #[test]
    fn deadline_expire_forces_should_stop() {
        let ctl = RunControl::new()
            .with_fault_plan(FaultPlan::parse("reduce.rule=deadline-expire@nth:2").unwrap());
        assert_eq!(ctl.should_stop(), None);
        assert_eq!(ctl.fault_apply(FaultSite::ReduceRule, 0), None);
        assert_eq!(ctl.should_stop(), None);
        assert_eq!(ctl.fault_apply(FaultSite::ReduceRule, 1), Some(FaultKind::DeadlineExpire));
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Deadline), "forced deadline is sticky");
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Deadline));
    }

    #[test]
    fn mem_deny_rejects_admission() {
        // Armed directly at the admission site: the nth admission is denied.
        let ctl = RunControl::new()
            .with_fault_plan(FaultPlan::parse("alloc.admit=mem-deny@nth:2").unwrap());
        assert!(ctl.admit_memory(10).is_ok());
        let err = ctl.admit_memory(10).unwrap_err();
        assert_eq!(err.required_bytes, 10);
        assert!(ctl.admit_memory(10).is_ok(), "nth:2 denies exactly once");

        // Fired at another site: the *next* admission is denied (sticky
        // until consumed).
        let ctl = RunControl::new()
            .with_fault_plan(FaultPlan::parse("bfs.source=mem-deny@nth:1").unwrap());
        assert!(ctl.admit_memory(10).is_ok());
        ctl.fault_apply(FaultSite::BfsSource, 0);
        assert!(ctl.admit_memory(10).is_err());
        assert!(ctl.admit_memory(10).is_ok());
    }
}
