//! Run control: wall-clock deadlines, cooperative cancellation, memory
//! budgets and panic capture for long-running traversal loops.
//!
//! A [`RunControl`] is threaded through the parallel BFS kernels (see
//! [`crate::traversal`]) and the estimator loops in the `brics` crate. The
//! contract is *per-source granularity*: the control is consulted **before**
//! each BFS source is started, and a source that has started always runs to
//! completion. This keeps interrupted accumulations sound — shared
//! accumulators only ever contain complete per-source contributions, so a
//! partial farness sum is still a valid lower bound of the true farness
//! (every distance is non-negative and sources are independent).
//!
//! Cancellation is shared: clones of a `RunControl` (and [`CancelToken`]s
//! handed out by [`RunControl::cancel_token`]) observe the same flag, so a
//! supervisor thread can stop an estimation it started elsewhere.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a controlled run finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every scheduled BFS source ran.
    Complete,
    /// The wall-clock deadline expired; remaining sources were skipped.
    Deadline,
    /// The run was cancelled through a [`CancelToken`]; remaining sources
    /// were skipped.
    Cancelled,
}

impl RunOutcome {
    /// Whether the run processed all scheduled work.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }

    /// Merges two outcomes from consecutive phases of one run: the first
    /// interruption wins.
    pub fn merge(self, later: RunOutcome) -> RunOutcome {
        if self.is_complete() {
            later
        } else {
            self
        }
    }
}

/// Handle for cancelling a run from another thread. Cheap to clone; all
/// clones (and the originating [`RunControl`]) share one flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Workers notice before starting their next
    /// BFS source.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Budget exceeded up-front: a run would allocate more memory than allowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudgetExceeded {
    /// Bytes the run would need to allocate.
    pub required_bytes: u64,
    /// The configured cap.
    pub budget_bytes: u64,
}

/// Execution limits for an estimation run. The default is unbounded.
///
/// ```
/// use brics_graph::control::RunControl;
/// use std::time::Duration;
///
/// let ctl = RunControl::new().with_timeout(Duration::from_secs(30));
/// assert!(ctl.should_stop().is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    deadline: Option<Instant>,
    cancel: CancelToken,
    max_mem_bytes: Option<u64>,
    /// Test-only hook: the worker processing this source panics, exercising
    /// the panic-isolation path without a purpose-built failure injection
    /// framework.
    #[doc(hidden)]
    panic_on_source: Option<crate::NodeId>,
}

impl RunControl {
    /// An unbounded control: never stops, never rejects.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops scheduling new BFS sources once `budget` has elapsed
    /// (measured from this call).
    pub fn with_timeout(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Stops scheduling new BFS sources after `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Rejects runs whose planned allocations exceed `bytes`
    /// (see [`RunControl::admit_memory`]).
    pub fn with_memory_budget_bytes(mut self, bytes: u64) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// Rejects runs whose planned allocations exceed `mb` mebibytes.
    pub fn with_memory_budget_mb(self, mb: u64) -> Self {
        self.with_memory_budget_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// Injects a panic when a worker starts the given BFS source.
    /// Test-only: exercises the `catch_unwind` isolation path.
    #[doc(hidden)]
    pub fn with_injected_panic(mut self, source: crate::NodeId) -> Self {
        self.panic_on_source = Some(source);
        self
    }

    /// A token that cancels this run (shared with every clone of `self`).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Checks the cancel flag, then the deadline. `None` means keep going;
    /// otherwise the cause of the stop. Called once per BFS source — an
    /// `Instant::now()` per source is noise next to a BFS.
    pub fn should_stop(&self) -> Option<RunOutcome> {
        if self.cancel.is_cancelled() {
            return Some(RunOutcome::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(RunOutcome::Deadline);
            }
        }
        None
    }

    /// Admits or rejects a run that plans to allocate `required_bytes`.
    /// Call before the large `O(n·k)` / per-block allocations.
    pub fn admit_memory(&self, required_bytes: u64) -> Result<(), MemoryBudgetExceeded> {
        match self.max_mem_bytes {
            Some(budget) if required_bytes > budget => {
                Err(MemoryBudgetExceeded { required_bytes, budget_bytes: budget })
            }
            _ => Ok(()),
        }
    }

    /// The configured memory cap, if any.
    pub fn memory_budget_bytes(&self) -> Option<u64> {
        self.max_mem_bytes
    }

    /// Whether a worker processing `source` should panic (test hook).
    #[doc(hidden)]
    pub fn injected_panic_for(&self, source: crate::NodeId) -> bool {
        self.panic_on_source == Some(source)
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let ctl = RunControl::new();
        assert_eq!(ctl.should_stop(), None);
        assert!(ctl.admit_memory(u64::MAX).is_ok());
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = RunControl::new().with_timeout(Duration::ZERO);
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Deadline));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let ctl = RunControl::new().with_timeout(Duration::from_secs(3600));
        assert_eq!(ctl.should_stop(), None);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let ctl = RunControl::new();
        let clone = ctl.clone();
        let token = ctl.cancel_token();
        assert_eq!(clone.should_stop(), None);
        token.cancel();
        assert_eq!(clone.should_stop(), Some(RunOutcome::Cancelled));
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Cancelled));
    }

    #[test]
    fn cancel_beats_deadline() {
        let ctl = RunControl::new().with_timeout(Duration::ZERO);
        ctl.cancel_token().cancel();
        assert_eq!(ctl.should_stop(), Some(RunOutcome::Cancelled));
    }

    #[test]
    fn memory_budget_boundary() {
        let ctl = RunControl::new().with_memory_budget_bytes(1000);
        assert!(ctl.admit_memory(1000).is_ok());
        let err = ctl.admit_memory(1001).unwrap_err();
        assert_eq!(err.required_bytes, 1001);
        assert_eq!(err.budget_bytes, 1000);
        let mb = RunControl::new().with_memory_budget_mb(2);
        assert!(mb.admit_memory(2 * 1024 * 1024).is_ok());
        assert!(mb.admit_memory(2 * 1024 * 1024 + 1).is_err());
    }

    #[test]
    fn outcome_merge_keeps_first_interruption() {
        use RunOutcome::*;
        assert_eq!(Complete.merge(Deadline), Deadline);
        assert_eq!(Deadline.merge(Cancelled), Deadline);
        assert_eq!(Cancelled.merge(Complete), Cancelled);
        assert_eq!(Complete.merge(Complete), Complete);
    }

    #[test]
    fn panic_message_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(payload.as_ref()), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(payload.as_ref()), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u8);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }

    #[test]
    fn injected_panic_hook_targets_one_source() {
        let ctl = RunControl::new().with_injected_panic(5);
        assert!(ctl.injected_panic_for(5));
        assert!(!ctl.injected_panic_for(4));
        assert!(!RunControl::new().injected_panic_for(5));
    }
}
