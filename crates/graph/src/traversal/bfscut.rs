//! BFS-cut traversal for top-k verification (Borassi et al. / Bergamini
//! et al. style pruning).
//!
//! Verifying a top-k candidate means computing its exact farness with a
//! full BFS — but most candidates lose long before their sweep finishes.
//! After expanding level `d` we already know a *lower bound* on the final
//! farness: the visited mass is exact, every unvisited vertex sits at
//! distance ≥ `d + 1`, and only vertices adjacent to the level-`d`
//! frontier can actually be at `d + 1`. An undirected frontier vertex at
//! depth `d ≥ 1` spends at least one arc on a parent, so the frontier can
//! reach at most `Σ deg(f) − |frontier|` distinct vertices at `d + 1`;
//! the rest are at ≥ `d + 2`. The moment that bound exceeds the running
//! k-th best farness `tau`, the candidate is certified out of the top k
//! and the sweep aborts with [`CutOutcome::Pruned`] — no wrong answer is
//! possible because the bound never overstates the true farness.
//!
//! The level expansion reuses the direction-optimizing machinery of
//! [`HybridBfs`](super::HybridBfs): the per-level `(new_nf, new_mf)`
//! aggregates the switch heuristic already maintains are exactly the
//! inputs of the cut bound, so bottom-up levels tighten the bound at no
//! extra cost.
//!
//! The bound assumes every counted vertex is reachable: callers pass the
//! connected `population` the sweep is expected to reach (and the sweep
//! falls back to [`CutOutcome::Exact`] if the frontier empties early, so
//! a disconnected input degrades to a plain BFS rather than a wrong
//! certificate). `extra_mass` lets callers running on a *reduced* graph
//! add a sound lower bound on the farness mass of removed vertices.

use super::frontier::FrontierBitmap;
use crate::control::{RunControl, RunOutcome};
use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};

use super::hybrid::HybridParams;

/// How a [`BfsCut`] sweep ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutOutcome {
    /// The sweep ran to completion: the candidate's farness over the
    /// traversed graph is exactly `sum` (over `reached` vertices).
    Exact {
        /// Vertices reached, including the source.
        reached: usize,
        /// Exact sum of distances from the source to every reached vertex.
        sum: u64,
    },
    /// The sweep was cut after `levels` completed levels: the candidate's
    /// true farness is at least `lower_bound > tau`, so it cannot enter
    /// the current top k.
    Pruned {
        /// Levels fully expanded before the cut fired.
        levels: Dist,
        /// The certified lower bound on the candidate's farness (includes
        /// the caller's `extra_mass`).
        lower_bound: u64,
    },
}

/// Reusable BFS-cut scratch: a direction-optimizing level-synchronous BFS
/// that aborts as soon as the candidate's farness lower bound exceeds a
/// caller-supplied threshold.
///
/// With `tau == u64::MAX` the cut can never fire (the bound saturates),
/// so the sweep is an exact BFS producing the same `(reached, Σ d)` pair
/// and distance array as [`Bfs`](super::Bfs) — that is the "full
/// verification" fallback used for equivalence testing.
#[derive(Clone, Debug)]
pub struct BfsCut {
    dist: Vec<Dist>,
    touched: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    bits: FrontierBitmap,
    next_bits: FrontierBitmap,
    params: HybridParams,
    vertices_visited: u64,
    arcs_scanned: u64,
    levels: Dist,
}

impl BfsCut {
    /// Scratch for graphs with up to `n` vertices, default switching
    /// parameters.
    pub fn new(n: usize) -> Self {
        Self::with_params(n, HybridParams::default())
    }

    /// Scratch with explicit direction-switching parameters.
    pub fn with_params(n: usize, params: HybridParams) -> Self {
        Self {
            dist: vec![INFINITE_DIST; n],
            touched: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            bits: FrontierBitmap::new(n),
            next_bits: FrontierBitmap::new(n),
            params,
            vertices_visited: 0,
            arcs_scanned: 0,
            levels: 0,
        }
    }

    /// Grows the scratch space if the graph is larger than at construction.
    pub fn resize(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DIST);
        }
        self.bits.resize(n);
        self.next_bits.resize(n);
    }

    /// Vertices discovered by the most recent sweep (including the source;
    /// partial after a cut or an interruption).
    pub fn vertices_visited(&self) -> u64 {
        self.vertices_visited
    }

    /// Arcs scanned by the most recent sweep: top-down levels charge every
    /// arc out of the frontier, bottom-up levels charge the probes actually
    /// made. This is the real traversal work, which is what the
    /// `EdgesScanned` accounting wants — *not* `num_arcs` per sweep.
    pub fn arcs_scanned(&self) -> u64 {
        self.arcs_scanned
    }

    /// Levels fully expanded by the most recent sweep.
    pub fn levels(&self) -> Dist {
        self.levels
    }

    /// Uncontrolled convenience wrapper around [`BfsCut::run_ctl`].
    pub fn run(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        tau: u64,
        population: usize,
        extra_mass: u64,
    ) -> CutOutcome {
        self.run_ctl(g, source, tau, population, extra_mass, &RunControl::new())
            .expect("unbounded control cannot interrupt")
    }

    /// Runs a pruned BFS from `source`, consulting `ctl` before every
    /// level.
    ///
    /// * `tau` — the running k-th best farness; the sweep aborts with
    ///   [`CutOutcome::Pruned`] as soon as the lower bound *strictly*
    ///   exceeds it (ties must keep verifying so id tie-breaking stays
    ///   deterministic). `u64::MAX` disables pruning.
    /// * `population` — the number of vertices the sweep is expected to
    ///   reach (`n` on a connected graph; the survivor count on a reduced
    ///   graph). The bound counts `population − reached` unvisited
    ///   vertices.
    /// * `extra_mass` — a sound lower bound on farness mass *outside* the
    ///   traversed graph (removed-vertex correction on reduced graphs;
    ///   `0` otherwise). Added to both the cut bound and nothing else: an
    ///   [`CutOutcome::Exact`] sum does **not** include it.
    ///
    /// On interruption the distance array is partial and must not be
    /// published.
    pub fn run_ctl(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        tau: u64,
        population: usize,
        extra_mass: u64,
        ctl: &RunControl,
    ) -> Result<CutOutcome, RunOutcome> {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.resize(n);
        for &v in &self.touched {
            self.dist[v as usize] = INFINITE_DIST;
        }
        self.touched.clear();

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.frontier.clear();
        self.frontier.push(source);
        self.vertices_visited = 1;
        self.arcs_scanned = 0;
        self.levels = 0;

        let mut reached = 1usize;
        let mut sum = 0u64;
        let mut level: Dist = 0;
        let mut bottom_up = false;
        let mut m_f = g.degree(source) as u64;
        let mut m_u = g.num_arcs() as u64 - m_f;
        let mut n_f = 1usize;
        // Same trend gate as `HybridBfs::run_with`: only go bottom-up
        // while the frontier grows, only come back once it shrinks.
        let mut growing = true;

        while n_f > 0 {
            if let Some(cause) = ctl.should_stop() {
                return Err(cause);
            }
            level += 1;
            if !bottom_up {
                if growing && m_f as f64 > m_u as f64 / self.params.alpha {
                    self.bits.fill_from(&self.frontier);
                    bottom_up = true;
                }
            } else if !growing && (n_f as f64) < n as f64 / self.params.beta {
                self.frontier.clear();
                self.frontier.extend(self.bits.iter_set());
                bottom_up = false;
            }

            let mut new_nf = 0usize;
            let mut new_mf = 0u64;
            if bottom_up {
                self.next_bits.clear();
                for u in 0..n as NodeId {
                    if self.dist[u as usize] != INFINITE_DIST {
                        continue;
                    }
                    for &w in g.neighbors(u) {
                        self.arcs_scanned += 1;
                        if self.bits.test(w) {
                            self.dist[u as usize] = level;
                            self.touched.push(u);
                            self.next_bits.set(u);
                            let deg = g.degree(u) as u64;
                            new_mf += deg;
                            m_u -= deg;
                            new_nf += 1;
                            break;
                        }
                    }
                }
                std::mem::swap(&mut self.bits, &mut self.next_bits);
            } else {
                // A top-down level scans exactly the arcs out of the
                // frontier.
                self.arcs_scanned += m_f;
                let frontier = std::mem::take(&mut self.frontier);
                self.next.clear();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        if self.dist[v as usize] == INFINITE_DIST {
                            self.dist[v as usize] = level;
                            self.touched.push(v);
                            self.next.push(v);
                            let deg = g.degree(v) as u64;
                            new_mf += deg;
                            m_u -= deg;
                            new_nf += 1;
                        }
                    }
                }
                self.frontier = std::mem::replace(&mut self.next, frontier);
            }

            reached += new_nf;
            sum += new_nf as u64 * level as u64;
            self.vertices_visited = reached as u64;
            self.levels = level;
            if new_nf == 0 {
                break;
            }

            // Cut bound after completing level `level`. The `new_nf`
            // frontier vertices each consumed ≥ 1 arc discovering a
            // parent, so at most `new_mf − new_nf` unvisited vertices can
            // sit at `level + 1`; the remaining `U − f_cap` are at
            // ≥ `level + 2`. All arithmetic saturates so `tau == u64::MAX`
            // can never be exceeded.
            let unvisited = population.saturating_sub(reached) as u64;
            if unvisited > 0 && tau != u64::MAX {
                let f_cap = new_mf - new_nf as u64;
                let near = unvisited.min(f_cap);
                let far = unvisited - near;
                let lb = sum
                    .saturating_add((level as u64 + 1).saturating_mul(near))
                    .saturating_add((level as u64 + 2).saturating_mul(far))
                    .saturating_add(extra_mass);
                if lb > tau {
                    return Ok(CutOutcome::Pruned { levels: level, lower_bound: lb });
                }
            }

            growing = new_nf >= n_f;
            n_f = new_nf;
            m_f = new_mf;
        }
        Ok(CutOutcome::Exact { reached, sum })
    }

    /// Distance array from the most recent sweep. Exact for the visited
    /// set only; after a [`CutOutcome::Pruned`] return it is partial.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// Mutable distance array — same caveat as
    /// [`Bfs::distances_mut`](super::Bfs::distances_mut): entries outside
    /// the visited set must be restored to `INFINITE_DIST` before the next
    /// run, because reset is tracked through the touched list only.
    pub fn distances_mut(&mut self) -> &mut [Dist] {
        &mut self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        complete_graph, gnm_random_connected, lollipop, path_graph, star_graph,
    };
    use crate::traversal::Bfs;
    use crate::GraphBuilder;

    fn exact_pair(g: &CsrGraph, s: NodeId) -> (usize, u64) {
        Bfs::new(g.num_nodes()).run_with(g, s, |_, _| {})
    }

    #[test]
    fn tau_max_is_an_exact_bfs() {
        for (g, s) in [
            (gnm_random_connected(60, 150, 42), 7u32),
            (path_graph(40), 0),
            (star_graph(30), 3),
            (complete_graph(16), 5),
            (lollipop(8, 6), 10),
        ] {
            let n = g.num_nodes();
            let (reached, sum) = exact_pair(&g, s);
            let mut cut = BfsCut::new(n);
            let got = cut.run(&g, s, u64::MAX, n, 0);
            assert_eq!(got, CutOutcome::Exact { reached, sum });
            let mut bfs = Bfs::new(n);
            bfs.run(&g, s);
            assert_eq!(&cut.distances()[..n], &bfs.distances()[..n]);
            assert!(cut.arcs_scanned() > 0 && cut.arcs_scanned() <= g.num_arcs() as u64);
            assert_eq!(cut.vertices_visited(), reached as u64);
        }
    }

    #[test]
    fn prunes_when_tau_is_below_farness() {
        let g = path_graph(64);
        let (_, farness) = exact_pair(&g, 0);
        let mut cut = BfsCut::new(64);
        // A path endpoint has huge farness; tau = farness of the centre is
        // far below it, so the sweep must cut early.
        let (_, tau) = exact_pair(&g, 32);
        match cut.run(&g, 0, tau, 64, 0) {
            CutOutcome::Pruned { levels, lower_bound } => {
                assert!(lower_bound > tau);
                assert!(lower_bound <= farness, "bound must never overstate farness");
                assert!((levels as usize) < 63, "cut should fire before the sweep ends");
                assert!(cut.arcs_scanned() < g.num_arcs() as u64);
            }
            other => panic!("expected a cut, got {other:?}"),
        }
    }

    #[test]
    fn never_prunes_at_or_above_true_farness() {
        // tau == farness is a tie: the sweep must complete (strict >).
        let g = gnm_random_connected(50, 120, 3);
        for s in 0..50u32 {
            let (reached, sum) = exact_pair(&g, s);
            let mut cut = BfsCut::new(50);
            assert_eq!(cut.run(&g, s, sum, 50, 0), CutOutcome::Exact { reached, sum });
        }
    }

    #[test]
    fn pruned_bound_is_sound_on_random_graphs() {
        // Any cut's lower_bound must be ≤ the true farness, for every
        // threshold below it.
        let g = gnm_random_connected(70, 140, 9);
        for s in (0..70u32).step_by(7) {
            let (_, farness) = exact_pair(&g, s);
            for tau in [farness / 2, farness.saturating_sub(1), farness / 4] {
                let mut cut = BfsCut::new(70);
                match cut.run(&g, s, tau, 70, 0) {
                    CutOutcome::Exact { sum, .. } => assert!(sum <= tau || sum == farness),
                    CutOutcome::Pruned { lower_bound, .. } => {
                        assert!(lower_bound > tau);
                        assert!(lower_bound <= farness);
                    }
                }
            }
        }
    }

    #[test]
    fn extra_mass_shifts_the_bound() {
        let g = path_graph(32);
        let (_, farness) = exact_pair(&g, 0);
        let mut cut = BfsCut::new(32);
        // With tau just under farness + extra the sweep may complete; with
        // a large extra mass the very first bound check exceeds tau.
        match cut.run(&g, 0, farness, 32, 1_000_000) {
            CutOutcome::Pruned { levels, lower_bound } => {
                assert_eq!(levels, 1);
                assert!(lower_bound > farness);
            }
            other => panic!("expected an immediate cut, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_component_degrades_to_exact() {
        // Frontier empties with population unreached: no cut certificate,
        // just the component-local exact sums.
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut cut = BfsCut::new(6);
        assert_eq!(cut.run(&g, 0, u64::MAX, 6, 0), CutOutcome::Exact { reached: 3, sum: 3 });
    }

    #[test]
    fn interruption_surfaces_between_levels() {
        let g = gnm_random_connected(50, 100, 7);
        let mut cut = BfsCut::new(50);
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            cut.run_ctl(&g, 0, u64::MAX, 50, 0, &ctl),
            Err(RunOutcome::Deadline)
        );
        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        assert_eq!(
            cut.run_ctl(&g, 0, u64::MAX, 50, 0, &ctl),
            Err(RunOutcome::Cancelled)
        );
        // Scratch stays reusable after an interrupted sweep.
        let n = g.num_nodes();
        let (reached, sum) = exact_pair(&g, 3);
        assert_eq!(cut.run(&g, 3, u64::MAX, n, 0), CutOutcome::Exact { reached, sum });
    }

    #[test]
    fn bottom_up_levels_agree_with_top_down() {
        let g = complete_graph(24);
        let (reached, sum) = exact_pair(&g, 4);
        for params in [
            HybridParams::default(),
            HybridParams::always_top_down(),
            HybridParams::eager_bottom_up(),
        ] {
            let mut cut = BfsCut::with_params(24, params);
            assert_eq!(cut.run(&g, 4, u64::MAX, 24, 0), CutOutcome::Exact { reached, sum });
        }
    }

    #[test]
    fn star_centre_has_no_cut_capacity_left() {
        // From the centre every leaf is at level 1: after that level U = 0
        // and the sweep completes exactly. From a leaf, f_cap at level 1 is
        // n − 2 (the centre's remaining arcs), making the bound exact.
        let g = star_graph(20);
        let mut cut = BfsCut::new(20);
        assert_eq!(cut.run(&g, 0, u64::MAX, 20, 0), CutOutcome::Exact { reached: 20, sum: 19 });
        let (_, leaf_farness) = exact_pair(&g, 1);
        match cut.run(&g, 1, leaf_farness - 1, 20, 0) {
            CutOutcome::Pruned { levels, lower_bound } => {
                assert_eq!(levels, 1);
                assert_eq!(lower_bound, leaf_farness, "leaf bound is tight on a star");
            }
            other => panic!("expected a cut, got {other:?}"),
        }
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let g1 = complete_graph(20);
        let g2 = path_graph(50);
        let mut cut = BfsCut::new(20);
        cut.run(&g1, 0, u64::MAX, 20, 0);
        let (r2, s2) = exact_pair(&g2, 0);
        assert_eq!(cut.run(&g2, 0, u64::MAX, 50, 0), CutOutcome::Exact { reached: r2, sum: s2 });
        // A pruned sweep leaves partial state; the next run must still be
        // clean.
        let (_, tau) = exact_pair(&g2, 25);
        assert!(matches!(cut.run(&g2, 0, tau, 50, 0), CutOutcome::Pruned { .. }));
        let (r1, s1) = exact_pair(&g1, 3);
        assert_eq!(cut.run(&g1, 3, u64::MAX, 20, 0), CutOutcome::Exact { reached: r1, sum: s1 });
    }
}
