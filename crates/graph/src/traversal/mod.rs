//! Breadth-first traversal kernels.
//!
//! Farness estimation is BFS-bound: the random-sampling baseline runs one
//! BFS per sampled vertex over the whole graph, and the BRICS cumulative
//! approach runs block-local BFS per sampled vertex. Both parallelise over
//! *sources* (the paper's OpenMP model, §II-A / Algorithm 5 step 2), which
//! rayon expresses as a parallel iterator over sources with thread-local
//! scratch buffers.

mod bfs;
mod bfscut;
mod dial;
mod frontier;
mod hybrid;
mod msbfs;
mod parallel;

pub use bfs::{bfs_distances, Bfs};
pub use bfscut::{BfsCut, CutOutcome};
pub use dial::DialBfs;
pub use frontier::{FrontierBitmap, SetBits};
pub use hybrid::{
    HybridBfs, HybridParams, Kernel, KernelConfig, ParFrontierBfs, SerialBfsKernel,
    TraversalStats, FRONTIER_PARALLEL_MIN_ARCS, MSBFS_BATCH,
};
pub use msbfs::MsBfs;
pub use parallel::{
    atomic_view, atomic_view_u32, par_bfs_accumulate, par_bfs_accumulate_ctl,
    par_bfs_accumulate_ctl_rec, par_bfs_accumulate_ctl_with, par_bfs_accumulate_isolated,
    par_bfs_accumulate_isolated_rec, par_bfs_from_sources, par_bfs_from_sources_ctl,
    par_bfs_sums_ctl, par_bfs_sums_ctl_rec, par_bfs_sums_ctl_with, AccumulatorStats,
    ControlledAccumulation, IsolatedAccumulation, WorkerGuard, WorkerPanic,
};
