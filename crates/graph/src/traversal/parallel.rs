//! Rayon-parallel multi-source BFS.
//!
//! Parallelism is over *sources*: each worker owns a private [`Bfs`] scratch
//! (via `map_init`) and publishes per-vertex distance sums into a shared
//! atomic accumulator. This mirrors the paper's OpenMP loop over sampled
//! vertices (Algorithm 1 line 3, Algorithm 5 line 5) and keeps memory at
//! `O(n)` total rather than `O(n·k)` — the same space optimisation §II-A
//! describes.

use super::bfs::Bfs;
use crate::{CsrGraph, Dist, NodeId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reinterprets an exclusively-held `u64` slice as atomics so rayon workers
/// can publish into it lock-free. Safe: `AtomicU64` is `repr(transparent)`
/// over `u64` and the exclusive borrow guarantees no other access.
pub fn atomic_view(acc: &mut [u64]) -> &[AtomicU64] {
    unsafe { std::slice::from_raw_parts(acc.as_ptr() as *const AtomicU64, acc.len()) }
}

/// Summary statistics of a multi-source accumulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccumulatorStats {
    /// Number of BFS traversals performed.
    pub num_sources: usize,
    /// Total vertices visited across all traversals.
    pub total_visited: u64,
}

/// Runs one BFS per source in parallel and accumulates, for every vertex
/// `u`, the partial farness `Σ_{s ∈ sources} d(s, u)` into `acc[u]`.
///
/// Additionally returns, per source `s` (in input order), the pair
/// `(reached, Σ_w d(s, w))` — the source's *exact* farness when the graph is
/// connected.
///
/// Unreachable pairs contribute nothing (callers are expected to pass
/// connected graphs or blocks; the reached counts let them detect otherwise).
pub fn par_bfs_accumulate(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
) -> (Vec<(usize, u64)>, AccumulatorStats) {
    assert!(acc.len() >= g.num_nodes(), "accumulator too small");
    let atomic_acc = atomic_view(acc);

    let per_source: Vec<(usize, u64)> = sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| {
                bfs.run_with(g, s, |v, d| {
                    if d > 0 {
                        atomic_acc[v as usize].fetch_add(d as u64, Ordering::Relaxed);
                    }
                })
            },
        )
        .collect();

    let stats = AccumulatorStats {
        num_sources: sources.len(),
        total_visited: per_source.iter().map(|&(r, _)| r as u64).sum(),
    };
    (per_source, stats)
}

/// Runs one BFS per source in parallel, returning the full distance array of
/// each (row order matches `sources`).
///
/// `O(n·k)` memory — intended for block-local use where `n` is a block size,
/// or for tests and oracles.
pub fn par_bfs_from_sources(g: &CsrGraph, sources: &[NodeId]) -> Vec<Vec<Dist>> {
    sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| bfs.run(g, s)[..g.num_nodes()].to_vec(),
        )
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use crate::GraphBuilder;

    fn grid3x3() -> CsrGraph {
        // 0 1 2
        // 3 4 5
        // 6 7 8
        let mut b = GraphBuilder::new(9);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c < 2 {
                    b.add_edge(v, v + 1);
                }
                if r < 2 {
                    b.add_edge(v, v + 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn accumulate_matches_serial_sum() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut acc = vec![0u64; 9];
        let (per_source, stats) = par_bfs_accumulate(&g, &sources, &mut acc);

        for v in 0..9 {
            let expect: u64 = sources
                .iter()
                .map(|&s| bfs_distances(&g, s)[v] as u64)
                .sum();
            assert_eq!(acc[v], expect, "vertex {v}");
        }
        assert_eq!(stats.num_sources, 3);
        assert_eq!(stats.total_visited, 27);
        // Per-source farness of the centre of a 3x3 grid is 1*4 + 2*4 = 12.
        assert_eq!(per_source[1], (9, 12));
    }

    #[test]
    fn accumulate_all_sources_gives_exact_farness() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let (per_source, _) = par_bfs_accumulate(&g, &sources, &mut acc);
        // With every vertex as a source, acc[v] == farness(v) == per-source sum.
        for v in 0..9 {
            assert_eq!(acc[v], per_source[v].1);
        }
    }

    #[test]
    fn distance_matrix_matches_serial() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![2, 6];
        let rows = par_bfs_from_sources(&g, &sources);
        assert_eq!(rows[0], bfs_distances(&g, 2));
        assert_eq!(rows[1], bfs_distances(&g, 6));
    }

    #[test]
    fn empty_sources() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        let (rows, stats) = par_bfs_accumulate(&g, &[], &mut acc);
        assert!(rows.is_empty());
        assert_eq!(stats.total_visited, 0);
        assert!(acc.iter().all(|&x| x == 0));
    }

    #[test]
    fn accumulator_is_additive_across_calls() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0], &mut acc);
        par_bfs_accumulate(&g, &[8], &mut acc);
        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0, 8], &mut expect);
        assert_eq!(acc, expect);
    }
}
