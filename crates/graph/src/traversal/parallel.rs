//! Rayon-parallel multi-source BFS.
//!
//! Parallelism is over *sources*: each worker owns a private [`Bfs`] scratch
//! (via `map_init`) and publishes per-vertex distance sums into a shared
//! atomic accumulator. This mirrors the paper's OpenMP loop over sampled
//! vertices (Algorithm 1 line 3, Algorithm 5 line 5) and keeps memory at
//! `O(n)` total rather than `O(n·k)` — the same space optimisation §II-A
//! describes.

use super::bfs::Bfs;
use crate::control::{panic_message, RunControl, RunOutcome};
use crate::{CsrGraph, Dist, NodeId};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Reinterprets an exclusively-held `u64` slice as atomics so rayon workers
/// can publish into it lock-free. Safe: `AtomicU64` is `repr(transparent)`
/// over `u64` and the exclusive borrow guarantees no other access.
pub fn atomic_view(acc: &mut [u64]) -> &[AtomicU64] {
    unsafe { std::slice::from_raw_parts(acc.as_ptr() as *const AtomicU64, acc.len()) }
}

/// Summary statistics of a multi-source accumulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccumulatorStats {
    /// Number of BFS traversals performed.
    pub num_sources: usize,
    /// Total vertices visited across all traversals.
    pub total_visited: u64,
}

/// Runs one BFS per source in parallel and accumulates, for every vertex
/// `u`, the partial farness `Σ_{s ∈ sources} d(s, u)` into `acc[u]`.
///
/// Additionally returns, per source `s` (in input order), the pair
/// `(reached, Σ_w d(s, w))` — the source's *exact* farness when the graph is
/// connected.
///
/// Unreachable pairs contribute nothing (callers are expected to pass
/// connected graphs or blocks; the reached counts let them detect otherwise).
pub fn par_bfs_accumulate(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
) -> (Vec<(usize, u64)>, AccumulatorStats) {
    let run = par_bfs_accumulate_ctl(g, sources, acc, &RunControl::new())
        .unwrap_or_else(|p| panic!("BFS worker panicked: {}", p.detail));
    debug_assert!(run.outcome.is_complete());
    let per_source = run.per_source.into_iter().map(Option::unwrap).collect();
    (per_source, run.stats)
}

/// A worker panicked inside a controlled parallel traversal. The shared
/// accumulator may hold a partial contribution from the panicked source, so
/// callers must discard it rather than build an estimate from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Panic payload rendered as text.
    pub detail: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.detail)
    }
}

impl std::error::Error for WorkerPanic {}

/// Result of a controlled multi-source accumulation.
#[derive(Clone, Debug)]
pub struct ControlledAccumulation {
    /// Per source, in input order: `Some((reached, Σ d))` if the source's
    /// BFS ran, `None` if it was skipped because the run was interrupted.
    /// A skipped source contributed **nothing** to the accumulator — the
    /// control is consulted before each source starts, never mid-BFS.
    pub per_source: Vec<Option<(usize, u64)>>,
    /// Statistics over the *completed* sources only.
    pub stats: AccumulatorStats,
    /// Whether the run completed or was interrupted (and why).
    pub outcome: RunOutcome,
}

/// Tracks the first interruption cause observed by any worker.
struct StopCell(AtomicU8);

impl StopCell {
    const NONE: u8 = 0;

    fn new() -> Self {
        StopCell(AtomicU8::new(Self::NONE))
    }

    fn record(&self, outcome: RunOutcome) {
        let code = match outcome {
            RunOutcome::Complete => return,
            RunOutcome::Deadline => 1,
            RunOutcome::Cancelled => 2,
        };
        // First writer wins; later causes are strictly less interesting.
        let _ = self.0.compare_exchange(Self::NONE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn outcome(&self) -> RunOutcome {
        match self.0.load(Ordering::Relaxed) {
            1 => RunOutcome::Deadline,
            2 => RunOutcome::Cancelled,
            _ => RunOutcome::Complete,
        }
    }
}

/// Shared panic/stop state for one controlled parallel loop, plus the
/// per-source worker protocol: skip fast once poisoned or stopped, otherwise
/// run the payload under `catch_unwind`.
///
/// Public so estimators with bespoke per-source work (distance
/// reconstruction, block-local pivot BFS) can honour the same contract as
/// the kernels in this module: wrap each source in
/// [`WorkerGuard::run_source`], then call [`WorkerGuard::finish`] once the
/// parallel loop drains.
pub struct WorkerGuard<'c> {
    ctl: &'c RunControl,
    stop: StopCell,
    poisoned: AtomicBool,
    panic_detail: Mutex<Option<String>>,
}

impl<'c> WorkerGuard<'c> {
    /// Fresh guard state for one parallel loop over sources.
    pub fn new(ctl: &'c RunControl) -> Self {
        WorkerGuard {
            ctl,
            stop: StopCell::new(),
            poisoned: AtomicBool::new(false),
            panic_detail: Mutex::new(None),
        }
    }

    /// Runs `work` for source `s` unless the run is stopped or poisoned.
    /// Panics inside `work` are captured and poison the run.
    pub fn run_source<R>(&self, s: NodeId, work: impl FnOnce() -> R) -> Option<R> {
        if self.poisoned.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(cause) = self.ctl.should_stop() {
            self.stop.record(cause);
            return None;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.ctl.injected_panic_for(s) {
                panic!("injected worker panic (test hook) on source {s}");
            }
            work()
        }));
        match result {
            Ok(r) => Some(r),
            Err(payload) => {
                let detail = panic_message(payload.as_ref());
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = self.panic_detail.lock().unwrap();
                slot.get_or_insert(detail);
                None
            }
        }
    }

    /// Folds the shared state into a final verdict.
    pub fn finish(self) -> Result<RunOutcome, WorkerPanic> {
        if self.poisoned.load(Ordering::Relaxed) {
            let detail = self
                .panic_detail
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| "unknown panic".to_string());
            return Err(WorkerPanic { detail });
        }
        Ok(self.stop.outcome())
    }
}

/// Controlled variant of [`par_bfs_accumulate`]: consults `ctl` before each
/// BFS source, skipping the remainder once the deadline passes or the run is
/// cancelled, and isolates worker panics instead of unwinding through the
/// pool.
///
/// On interruption the returned [`ControlledAccumulation`] is still sound:
/// `acc` holds complete contributions of exactly the `Some` sources.
/// On `Err` (worker panic) `acc` may hold a torn contribution and must be
/// discarded.
pub fn par_bfs_accumulate_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
) -> Result<ControlledAccumulation, WorkerPanic> {
    assert!(acc.len() >= g.num_nodes(), "accumulator too small");
    let atomic_acc = atomic_view(acc);
    let guard = WorkerGuard::new(ctl);

    let per_source: Vec<Option<(usize, u64)>> = sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| {
                guard.run_source(s, || {
                    bfs.run_with(g, s, |v, d| {
                        if d > 0 {
                            atomic_acc[v as usize].fetch_add(d as u64, Ordering::Relaxed);
                        }
                    })
                })
            },
        )
        .collect();

    let outcome = guard.finish()?;
    let stats = AccumulatorStats {
        num_sources: per_source.iter().flatten().count(),
        total_visited: per_source.iter().flatten().map(|&(r, _)| r as u64).sum(),
    };
    Ok(ControlledAccumulation { per_source, stats, outcome })
}

/// Runs one BFS per source in parallel, returning the full distance array of
/// each (row order matches `sources`).
///
/// `O(n·k)` memory — intended for block-local use where `n` is a block size,
/// or for tests and oracles.
pub fn par_bfs_from_sources(g: &CsrGraph, sources: &[NodeId]) -> Vec<Vec<Dist>> {
    let (rows, _) = par_bfs_from_sources_ctl(g, sources, &RunControl::new())
        .unwrap_or_else(|p| panic!("BFS worker panicked: {}", p.detail));
    rows.into_iter().map(Option::unwrap).collect()
}

/// Per-source results of a controlled run: `None` marks a skipped source.
/// Paired with the [`RunOutcome`] describing why (if) the run stopped early.
pub type ControlledRows<T> = (Vec<Option<T>>, RunOutcome);

/// One BFS per source under control, returning only `(reached, Σ d)` per
/// source — no shared accumulator, no distance rows. This is the kernel of
/// exact farness, where every vertex is its own source and only the
/// per-source sum matters.
pub fn par_bfs_sums_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    let guard = WorkerGuard::new(ctl);
    let rows: Vec<Option<(usize, u64)>> = sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| guard.run_source(s, || bfs.run_with(g, s, |_, _| {})),
        )
        .collect();
    let outcome = guard.finish()?;
    Ok((rows, outcome))
}

/// Controlled variant of [`par_bfs_from_sources`]: rows of interrupted
/// sources come back as `None`; worker panics surface as `Err`.
pub fn par_bfs_from_sources_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
) -> Result<ControlledRows<Vec<Dist>>, WorkerPanic> {
    let guard = WorkerGuard::new(ctl);
    let rows: Vec<Option<Vec<Dist>>> = sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| guard.run_source(s, || bfs.run(g, s)[..g.num_nodes()].to_vec()),
        )
        .collect();
    let outcome = guard.finish()?;
    Ok((rows, outcome))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use crate::GraphBuilder;

    fn grid3x3() -> CsrGraph {
        // 0 1 2
        // 3 4 5
        // 6 7 8
        let mut b = GraphBuilder::new(9);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c < 2 {
                    b.add_edge(v, v + 1);
                }
                if r < 2 {
                    b.add_edge(v, v + 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn accumulate_matches_serial_sum() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut acc = vec![0u64; 9];
        let (per_source, stats) = par_bfs_accumulate(&g, &sources, &mut acc);

        for v in 0..9 {
            let expect: u64 = sources
                .iter()
                .map(|&s| bfs_distances(&g, s)[v] as u64)
                .sum();
            assert_eq!(acc[v], expect, "vertex {v}");
        }
        assert_eq!(stats.num_sources, 3);
        assert_eq!(stats.total_visited, 27);
        // Per-source farness of the centre of a 3x3 grid is 1*4 + 2*4 = 12.
        assert_eq!(per_source[1], (9, 12));
    }

    #[test]
    fn accumulate_all_sources_gives_exact_farness() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let (per_source, _) = par_bfs_accumulate(&g, &sources, &mut acc);
        // With every vertex as a source, acc[v] == farness(v) == per-source sum.
        for v in 0..9 {
            assert_eq!(acc[v], per_source[v].1);
        }
    }

    #[test]
    fn distance_matrix_matches_serial() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![2, 6];
        let rows = par_bfs_from_sources(&g, &sources);
        assert_eq!(rows[0], bfs_distances(&g, 2));
        assert_eq!(rows[1], bfs_distances(&g, 6));
    }

    #[test]
    fn empty_sources() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        let (rows, stats) = par_bfs_accumulate(&g, &[], &mut acc);
        assert!(rows.is_empty());
        assert_eq!(stats.total_visited, 0);
        assert!(acc.iter().all(|&x| x == 0));
    }

    #[test]
    fn accumulator_is_additive_across_calls() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0], &mut acc);
        par_bfs_accumulate(&g, &[8], &mut acc);
        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0, 8], &mut expect);
        assert_eq!(acc, expect);
    }

    #[test]
    fn ctl_unbounded_matches_uncontrolled() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut acc = vec![0u64; 9];
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &RunControl::new()).unwrap();
        assert_eq!(run.outcome, RunOutcome::Complete);
        assert_eq!(run.stats.num_sources, 3);
        assert_eq!(run.per_source[1], Some((9, 12)));
        assert!(run.per_source.iter().all(Option::is_some));
    }

    #[test]
    fn ctl_expired_deadline_skips_every_source() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap();
        assert_eq!(run.outcome, RunOutcome::Deadline);
        assert_eq!(run.stats.num_sources, 0);
        assert_eq!(run.stats.total_visited, 0);
        assert!(run.per_source.iter().all(Option::is_none));
        assert!(acc.iter().all(|&x| x == 0), "skipped sources must not touch acc");
    }

    #[test]
    fn ctl_pre_cancelled_skips_every_source() {
        let g = grid3x3();
        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        let mut acc = vec![0u64; 9];
        let sources: Vec<NodeId> = (0..9).collect();
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap();
        assert_eq!(run.outcome, RunOutcome::Cancelled);
        assert_eq!(run.stats.num_sources, 0);
        assert!(acc.iter().all(|&x| x == 0));
    }

    #[test]
    fn ctl_partial_acc_holds_only_completed_sources() {
        // Cancel from within a BFS callback: already-started sources finish,
        // later sources are skipped, and acc equals the serial sum over
        // exactly the completed (Some) sources.
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let ctl2 = RunControl::new();
        let mut acc = vec![0u64; 9];
        let first = par_bfs_accumulate_ctl(&g, &sources[..4], &mut acc, &ctl2).unwrap();
        assert_eq!(first.outcome, RunOutcome::Complete);
        ctl2.cancel_token().cancel();
        let second = par_bfs_accumulate_ctl(&g, &sources[4..], &mut acc, &ctl2).unwrap();
        assert_eq!(second.outcome, RunOutcome::Cancelled);
        assert_eq!(second.stats.num_sources, 0);

        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &sources[..4], &mut expect);
        assert_eq!(acc, expect);
    }

    #[test]
    fn ctl_injected_panic_is_captured_not_propagated() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let ctl = RunControl::new().with_injected_panic(4);
        let err = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap_err();
        assert!(err.detail.contains("injected worker panic"), "got: {}", err.detail);
        assert!(err.detail.contains("source 4"), "got: {}", err.detail);
    }

    #[test]
    fn ctl_from_sources_deadline_and_panic() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![2, 6];

        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let (rows, outcome) = par_bfs_from_sources_ctl(&g, &sources, &ctl).unwrap();
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(rows.iter().all(Option::is_none));

        let ctl = RunControl::new().with_injected_panic(6);
        let err = par_bfs_from_sources_ctl(&g, &sources, &ctl).unwrap_err();
        assert!(err.detail.contains("source 6"));

        let (rows, outcome) =
            par_bfs_from_sources_ctl(&g, &sources, &RunControl::new()).unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        assert_eq!(rows[0].as_deref().unwrap(), &bfs_distances(&g, 2)[..]);
        assert_eq!(rows[1].as_deref().unwrap(), &bfs_distances(&g, 6)[..]);
    }
}
