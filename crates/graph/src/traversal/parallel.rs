//! Rayon-parallel multi-source BFS, plus the kernel-selection scheduler.
//!
//! The default parallelism is over *sources*: each worker owns a private
//! serial BFS scratch (via `map_init`) and publishes per-vertex distance
//! sums into a shared atomic accumulator. This mirrors the paper's OpenMP
//! loop over sampled vertices (Algorithm 1 line 3, Algorithm 5 line 5) and
//! keeps memory at `O(n)` total rather than `O(n·k)` — the same space
//! optimisation §II-A describes.
//!
//! Source-parallelism strands cores when a call carries fewer sources than
//! threads (small `k`, or one giant block after reduction). The `_with`
//! entry points therefore take a [`KernelConfig`] and pick between three
//! engines:
//!
//! * **Batched MS-BFS** ([`MsBfs`]) when there are enough sources to fill
//!   64-wide bit-parallel batches (see [`KernelConfig::msbfs_applies`]) —
//!   one traversal serves up to 64 sources at once.
//! * **Frontier-parallel** ([`ParFrontierBfs`]) when sources are scarcer
//!   than threads *and* the graph is large enough to amortise per-level
//!   fork-join (see [`KernelConfig::frontier_parallel_applies`]): sources
//!   run one after another, each traversal spreading its levels across the
//!   pool.
//! * **Source-parallel** with the configured serial kernel otherwise.
//!
//! See DESIGN.md §"BFS kernel selection" for the rationale.

use super::bfs::Bfs;
use super::hybrid::{
    HybridBfs, Kernel, KernelConfig, ParFrontierBfs, SerialBfsKernel, MSBFS_BATCH,
};
use super::msbfs::MsBfs;
use crate::control::{panic_message, FaultKind, FaultSite, RunControl, RunOutcome};
use crate::telemetry::{record_panic, timed, Counter, Metric, NullRecorder, Recorder};
use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Reinterprets an exclusively-held `u64` slice as atomics so rayon workers
/// can publish into it lock-free. Safe: `AtomicU64` is `repr(transparent)`
/// over `u64` and the exclusive borrow guarantees no other access.
pub fn atomic_view(acc: &mut [u64]) -> &[AtomicU64] {
    unsafe { std::slice::from_raw_parts(acc.as_ptr() as *const AtomicU64, acc.len()) }
}

/// `u32` analogue of [`atomic_view`], used by the frontier-parallel kernel
/// to let workers claim vertices in the distance array with
/// `compare_exchange`. Same safety argument: `AtomicU32` is
/// `repr(transparent)` over `u32` and the `&mut` borrow is exclusive.
pub fn atomic_view_u32(dist: &mut [u32]) -> &[AtomicU32] {
    unsafe { std::slice::from_raw_parts(dist.as_ptr() as *const AtomicU32, dist.len()) }
}

/// Summary statistics of a multi-source accumulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccumulatorStats {
    /// Number of BFS traversals performed.
    pub num_sources: usize,
    /// Total vertices visited across all traversals.
    pub total_visited: u64,
}

/// Runs one BFS per source in parallel and accumulates, for every vertex
/// `u`, the partial farness `Σ_{s ∈ sources} d(s, u)` into `acc[u]`.
///
/// Additionally returns, per source `s` (in input order), the pair
/// `(reached, Σ_w d(s, w))` — the source's *exact* farness when the graph is
/// connected.
///
/// Unreachable pairs contribute nothing (callers are expected to pass
/// connected graphs or blocks; the reached counts let them detect otherwise).
pub fn par_bfs_accumulate(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
) -> (Vec<(usize, u64)>, AccumulatorStats) {
    // Also asserted by the controlled path below; checked here so the
    // uncontrolled entry point reports the caller's mistake directly
    // rather than from inside the delegate.
    assert!(acc.len() >= g.num_nodes(), "accumulator too small");
    let run = par_bfs_accumulate_ctl(g, sources, acc, &RunControl::new())
        .unwrap_or_else(|p| panic!("BFS worker panicked: {}", p.detail));
    debug_assert!(run.outcome.is_complete());
    let per_source = run.per_source.into_iter().map(Option::unwrap).collect();
    (per_source, run.stats)
}

/// A worker panicked inside a controlled parallel traversal. The shared
/// accumulator may hold a partial contribution from the panicked source, so
/// callers must discard it rather than build an estimate from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Panic payload rendered as text.
    pub detail: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.detail)
    }
}

impl std::error::Error for WorkerPanic {}

/// Result of a controlled multi-source accumulation.
#[derive(Clone, Debug)]
pub struct ControlledAccumulation {
    /// Per source, in input order: `Some((reached, Σ d))` if the source's
    /// BFS ran, `None` if it was skipped because the run was interrupted.
    /// A skipped source contributed **nothing** to the accumulator — the
    /// control is consulted before each source starts, never mid-BFS.
    pub per_source: Vec<Option<(usize, u64)>>,
    /// Statistics over the *completed* sources only.
    pub stats: AccumulatorStats,
    /// Whether the run completed or was interrupted (and why).
    pub outcome: RunOutcome,
}

/// Tracks the first interruption cause observed by any worker.
struct StopCell(AtomicU8);

impl StopCell {
    const NONE: u8 = 0;

    fn new() -> Self {
        StopCell(AtomicU8::new(Self::NONE))
    }

    fn record(&self, outcome: RunOutcome) {
        let code = match outcome {
            RunOutcome::Complete | RunOutcome::Degraded => return,
            RunOutcome::Deadline => 1,
            RunOutcome::Cancelled => 2,
            RunOutcome::MemoryLimit => 3,
        };
        // First writer wins; later causes are strictly less interesting.
        let _ = self.0.compare_exchange(Self::NONE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn outcome(&self) -> RunOutcome {
        match self.0.load(Ordering::Relaxed) {
            1 => RunOutcome::Deadline,
            2 => RunOutcome::Cancelled,
            3 => RunOutcome::MemoryLimit,
            _ => RunOutcome::Complete,
        }
    }
}

/// Shared panic/stop state for one controlled parallel loop, plus the
/// per-source worker protocol: skip fast once poisoned or stopped, otherwise
/// run the payload under `catch_unwind`.
///
/// Public so estimators with bespoke per-source work (distance
/// reconstruction, block-local pivot BFS) can honour the same contract as
/// the kernels in this module: wrap each source in
/// [`WorkerGuard::run_source`], then call [`WorkerGuard::finish`] once the
/// parallel loop drains.
pub struct WorkerGuard<'c> {
    ctl: &'c RunControl,
    site: FaultSite,
    stop: StopCell,
    poisoned: AtomicBool,
    panic_detail: Mutex<Option<String>>,
}

/// Enacts a fired worker fault: panic-like kinds unwind here (the caller's
/// `catch_unwind` isolates them); slow/sticky kinds were already applied by
/// [`RunControl::fault_apply`] itself.
fn apply_worker_fault(ctl: &RunControl, site: FaultSite, s: NodeId) {
    match ctl.fault_apply(site, u64::from(s)) {
        Some(FaultKind::Panic) => {
            panic!("injected worker panic ({}) on source {s}", site.name())
        }
        Some(FaultKind::IoError) => {
            panic!("injected i/o error ({}) on source {s}", site.name())
        }
        _ => {}
    }
}

impl<'c> WorkerGuard<'c> {
    /// Fresh guard state for one parallel loop over BFS sources; fault
    /// arms at [`FaultSite::BfsSource`] apply to its workers.
    pub fn new(ctl: &'c RunControl) -> Self {
        Self::with_site(ctl, FaultSite::BfsSource)
    }

    /// [`WorkerGuard::new`] with an explicit failpoint, for per-source
    /// loops that are not plain BFS sweeps (e.g. cumulative phase B).
    pub fn with_site(ctl: &'c RunControl, site: FaultSite) -> Self {
        WorkerGuard {
            ctl,
            site,
            stop: StopCell::new(),
            poisoned: AtomicBool::new(false),
            panic_detail: Mutex::new(None),
        }
    }

    /// Runs `work` for source `s` unless the run is stopped or poisoned.
    /// Panics inside `work` are captured and poison the run.
    pub fn run_source<R>(&self, s: NodeId, work: impl FnOnce() -> R) -> Option<R> {
        if self.poisoned.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(cause) = self.ctl.should_stop() {
            self.stop.record(cause);
            return None;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            apply_worker_fault(self.ctl, self.site, s);
            work()
        }));
        match result {
            Ok(r) => Some(r),
            Err(payload) => {
                let detail = panic_message(payload.as_ref());
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = self.panic_detail.lock().unwrap();
                slot.get_or_insert(detail);
                None
            }
        }
    }

    /// Folds the shared state into a final verdict.
    pub fn finish(self) -> Result<RunOutcome, WorkerPanic> {
        if self.poisoned.load(Ordering::Relaxed) {
            let detail = self
                .panic_detail
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| "unknown panic".to_string());
            return Err(WorkerPanic { detail });
        }
        Ok(self.stop.outcome())
    }
}

/// Controlled variant of [`par_bfs_accumulate`]: consults `ctl` before each
/// BFS source, skipping the remainder once the deadline passes or the run is
/// cancelled, and isolates worker panics instead of unwinding through the
/// pool.
///
/// On interruption the returned [`ControlledAccumulation`] is still sound:
/// `acc` holds complete contributions of exactly the `Some` sources.
/// On `Err` (worker panic) `acc` may hold a torn contribution and must be
/// discarded.
///
/// Uses the default [`KernelConfig`] (direction-optimizing, frontier-parallel
/// when applicable); [`par_bfs_accumulate_ctl_with`] takes an explicit one.
pub fn par_bfs_accumulate_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
) -> Result<ControlledAccumulation, WorkerPanic> {
    par_bfs_accumulate_ctl_with(g, sources, acc, ctl, &KernelConfig::default())
}

/// [`par_bfs_accumulate_ctl`] with an explicit kernel choice. This is the
/// scheduler: it picks frontier-parallel execution when the kernel allows
/// it and `sources.len() < rayon::current_num_threads()` (each serial BFS
/// would strand the remaining cores), otherwise runs the configured serial
/// kernel parallel over sources.
///
/// The soundness contract is identical in every mode: on interruption,
/// `acc` holds complete contributions of exactly the `Some` sources. The
/// frontier-parallel engine checks the control at *level* granularity and
/// discards the partial traversal of an interrupted source before anything
/// is published.
pub fn par_bfs_accumulate_ctl_with(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
    cfg: &KernelConfig,
) -> Result<ControlledAccumulation, WorkerPanic> {
    par_bfs_accumulate_ctl_rec(g, sources, acc, ctl, cfg, &NullRecorder)
}

/// [`par_bfs_accumulate_ctl_with`] with a telemetry [`Recorder`]. The
/// recorder only observes — kernel selection, scheduling and results are
/// bit-identical with [`NullRecorder`] (which this whole stack defaults
/// to, compiling the instrumentation away).
pub fn par_bfs_accumulate_ctl_rec<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
    cfg: &KernelConfig,
    rec: &R,
) -> Result<ControlledAccumulation, WorkerPanic> {
    assert!(acc.len() >= g.num_nodes(), "accumulator too small");
    if rec.enabled() {
        rec.add(Counter::BfsSourcesPlanned, sources.len() as u64);
    }
    let per_source = timed(rec, "bfs.batch", || {
        let threads = rayon::current_num_threads();
        if cfg.msbfs_applies(sources.len(), threads) {
            msbfs_rows(g, sources, ctl, Some(acc), rec)
        } else if cfg.frontier_parallel_applies(sources.len(), g.num_arcs(), threads) {
            frontier_parallel_rows(g, sources, ctl, cfg, Some(acc), rec)
        } else {
            match cfg.kernel {
                Kernel::TopDown => {
                    source_parallel_rows::<Bfs, R>(g, sources, ctl, cfg, Some(acc), rec)
                }
                // `MsBfs` only lands here with zero sources (the batched
                // engine otherwise always applies); the kernel is moot.
                Kernel::Auto | Kernel::Hybrid | Kernel::MsBfs => {
                    source_parallel_rows::<HybridBfs, R>(g, sources, ctl, cfg, Some(acc), rec)
                }
            }
        }
    })?;
    record_rows(rec, g, &per_source.0);
    Ok(finish_accumulation(per_source))
}

/// Charges the per-source counters for one driver call: completed sources
/// (at the bench's `num_arcs()`-per-source edge convention, keeping the
/// report's MTEPS comparable with `BENCH_kernels.json`) and skipped ones.
fn record_rows<R: Recorder>(rec: &R, g: &CsrGraph, rows: &[Option<(usize, u64)>]) {
    if !rec.enabled() {
        return;
    }
    let done = rows.iter().flatten().count() as u64;
    let visited: u64 = rows.iter().flatten().map(|&(r, _)| r as u64).sum();
    rec.add(Counter::BfsSources, done);
    rec.add(Counter::VerticesVisited, visited);
    rec.add(Counter::EdgesScanned, done * g.num_arcs() as u64);
    rec.add(Counter::BfsSourcesSkipped, rows.len() as u64 - done);
}

/// Folds per-source rows into the [`ControlledAccumulation`] summary.
fn finish_accumulation(
    (per_source, outcome): (Vec<Option<(usize, u64)>>, RunOutcome),
) -> ControlledAccumulation {
    let stats = AccumulatorStats {
        num_sources: per_source.iter().flatten().count(),
        total_visited: per_source.iter().flatten().map(|&(r, _)| r as u64).sum(),
    };
    ControlledAccumulation { per_source, stats, outcome }
}

/// Result of a panic-isolating accumulation ([`par_bfs_accumulate_isolated`]):
/// per-source rows plus the set of sources whose workers panicked. Unlike
/// [`ControlledAccumulation`], a worker panic is not fatal — the panicked
/// source is *quarantined* (its row stays `None`, it contributed nothing to
/// the accumulator) and every other source keeps running.
#[derive(Clone, Debug)]
pub struct IsolatedAccumulation {
    /// Per source, in input order: `Some((reached, Σ d))` if the source's
    /// BFS ran to completion, `None` if it was skipped (interruption) or
    /// quarantined (panic). Either way the source contributed **nothing**
    /// to the accumulator — contributions are buffered per worker and
    /// published only after a source completes.
    pub per_source: Vec<Option<(usize, u64)>>,
    /// Indices into the input `sources` slice whose workers panicked, in
    /// input order. Retry candidates for the degradation ladder.
    pub quarantined: Vec<usize>,
    /// Panic payloads of the quarantined sources, index-aligned with
    /// [`IsolatedAccumulation::quarantined`].
    pub panic_details: Vec<String>,
    /// Statistics over the *completed* sources only.
    pub stats: AccumulatorStats,
    /// Whether the run completed or was interrupted (and why). Quarantined
    /// sources do **not** mark the run interrupted — the caller decides
    /// whether to retry them or degrade.
    pub outcome: RunOutcome,
}

/// Panic-isolating variant of [`par_bfs_accumulate_ctl`]: a worker panic
/// quarantines just that source instead of poisoning the whole run, and
/// per-vertex contributions are buffered privately and published into `acc`
/// only after the source's BFS completes. `acc` therefore never holds a
/// torn contribution and a quarantined source can be retried safely; since
/// `u64` additions commute, a fault-free run publishes bit-identical sums
/// to the eager path.
///
/// Runs source-parallel with the configured serial kernel — the quarantine
/// protocol needs per-source isolation, which the frontier-parallel engine
/// (whole pool per source) cannot give. When the batched MS-BFS engine
/// applies (see [`KernelConfig::msbfs_applies`]) the *batch* becomes the
/// isolation unit instead: a panic quarantines every source of its batch,
/// and the whole batch is the retry candidate.
pub fn par_bfs_accumulate_isolated(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
    cfg: &KernelConfig,
) -> IsolatedAccumulation {
    par_bfs_accumulate_isolated_rec(g, sources, acc, ctl, cfg, &NullRecorder)
}

/// [`par_bfs_accumulate_isolated`] with a telemetry [`Recorder`]: each
/// quarantined source is recorded as an isolated panic, completed sources
/// charge the usual per-source counters.
pub fn par_bfs_accumulate_isolated_rec<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    acc: &mut [u64],
    ctl: &RunControl,
    cfg: &KernelConfig,
    rec: &R,
) -> IsolatedAccumulation {
    assert!(acc.len() >= g.num_nodes(), "accumulator too small");
    if rec.enabled() {
        rec.add(Counter::BfsSourcesPlanned, sources.len() as u64);
    }
    let (rows, mut panics, outcome) = timed(rec, "bfs.batch", || {
        if cfg.msbfs_applies(sources.len(), rayon::current_num_threads()) {
            msbfs_isolated_rows(g, sources, ctl, acc, rec)
        } else {
            match cfg.kernel {
                Kernel::TopDown => isolated_rows::<Bfs, R>(g, sources, ctl, cfg, acc, rec),
                Kernel::Auto | Kernel::Hybrid | Kernel::MsBfs => {
                    isolated_rows::<HybridBfs, R>(g, sources, ctl, cfg, acc, rec)
                }
            }
        }
    });
    record_rows(rec, g, &rows);
    // Parallel workers push panics in completion order; sort back to input
    // order so retries are deterministic.
    panics.sort_by_key(|a| a.0);
    let stats = AccumulatorStats {
        num_sources: rows.iter().flatten().count(),
        total_visited: rows.iter().flatten().map(|&(r, _)| r as u64).sum(),
    };
    IsolatedAccumulation {
        per_source: rows,
        quarantined: panics.iter().map(|&(i, _)| i).collect(),
        panic_details: panics.into_iter().map(|(_, d)| d).collect(),
        stats,
        outcome,
    }
}

/// The buffered-publish worker loop behind [`par_bfs_accumulate_isolated`].
#[allow(clippy::type_complexity)]
fn isolated_rows<K: SerialBfsKernel, R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    cfg: &KernelConfig,
    acc: &mut [u64],
    rec: &R,
) -> (Vec<Option<(usize, u64)>>, Vec<(usize, String)>, RunOutcome) {
    if rec.enabled() {
        rec.incr(match cfg.kernel {
            Kernel::TopDown => Counter::BatchesTopdown,
            Kernel::Auto | Kernel::Hybrid | Kernel::MsBfs => Counter::BatchesHybrid,
        });
    }
    let atomic_acc = atomic_view(acc);
    let stop = StopCell::new();
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let indexed: Vec<(usize, NodeId)> = sources.iter().copied().enumerate().collect();
    let rows: Vec<Option<(usize, u64)>> = indexed
        .par_iter()
        .map_init(
            || {
                let mut bfs = K::for_config(g.num_nodes(), cfg);
                bfs.set_level_recording(rec.enabled());
                (bfs, Vec::<(NodeId, Dist)>::new())
            },
            |(bfs, buf), &(i, s)| {
                if let Some(cause) = ctl.should_stop() {
                    stop.record(cause);
                    return None;
                }
                buf.clear();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    apply_worker_fault(ctl, FaultSite::BfsSource, s);
                    let start = if rec.enabled() { Some(Instant::now()) } else { None };
                    let out = bfs.run_with_visit(g, s, |v, d| {
                        if d > 0 {
                            buf.push((v, d));
                        }
                    });
                    if let Some(start) = start {
                        let end = Instant::now();
                        rec.observe(
                            Metric::SourceBfsNanos,
                            end.duration_since(start).as_nanos() as u64,
                        );
                        if rec.trace_enabled() {
                            rec.trace_span("bfs.source", start, end);
                        }
                        record_traversal_stats(rec, bfs.last_stats());
                        for &n_f in bfs.level_sizes() {
                            rec.observe(Metric::FrontierSize, n_f);
                        }
                    }
                    out
                }));
                match result {
                    Ok(out) => {
                        // Publish only after the whole BFS succeeded: a
                        // panicked source leaves no trace in `acc`.
                        for &(v, d) in buf.iter() {
                            atomic_acc[v as usize].fetch_add(u64::from(d), Ordering::Relaxed);
                        }
                        Some(out)
                    }
                    Err(payload) => {
                        let detail = panic_message(payload.as_ref());
                        record_panic(rec, &detail);
                        panics.lock().unwrap().push((i, detail));
                        None
                    }
                }
            },
        )
        .collect();
    (rows, panics.into_inner().unwrap(), stop.outcome())
}

/// Source-parallel driver, generic over the serial kernel. When `acc` is
/// given, every visited vertex's distance is added into it atomically
/// (excluding the source itself at distance 0).
fn source_parallel_rows<K: SerialBfsKernel, R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    cfg: &KernelConfig,
    acc: Option<&mut [u64]>,
    rec: &R,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    if rec.enabled() {
        rec.incr(match cfg.kernel {
            Kernel::TopDown => Counter::BatchesTopdown,
            Kernel::Auto | Kernel::Hybrid | Kernel::MsBfs => Counter::BatchesHybrid,
        });
    }
    let atomic_acc = acc.map(atomic_view);
    let guard = WorkerGuard::new(ctl);
    let rows: Vec<Option<(usize, u64)>> = sources
        .par_iter()
        .map_init(
            || {
                let mut bfs = K::for_config(g.num_nodes(), cfg);
                // Per-level frontier sizes feed the report's histogram;
                // the log is only maintained when someone will read it.
                bfs.set_level_recording(rec.enabled());
                bfs
            },
            |bfs, &s| {
                guard.run_source(s, || {
                    let start = if rec.enabled() { Some(Instant::now()) } else { None };
                    let out = match atomic_acc {
                        Some(atomic_acc) => bfs.run_with_visit(g, s, |v, d| {
                            if d > 0 {
                                atomic_acc[v as usize].fetch_add(d as u64, Ordering::Relaxed);
                            }
                        }),
                        None => bfs.run_with_visit(g, s, |_, _| {}),
                    };
                    if let Some(start) = start {
                        let end = Instant::now();
                        rec.observe(
                            Metric::SourceBfsNanos,
                            end.duration_since(start).as_nanos() as u64,
                        );
                        if rec.trace_enabled() {
                            rec.trace_span("bfs.source", start, end);
                        }
                        record_traversal_stats(rec, bfs.last_stats());
                        for &n_f in bfs.level_sizes() {
                            rec.observe(Metric::FrontierSize, n_f);
                        }
                    }
                    out
                })
            },
        )
        .collect();
    let outcome = guard.finish()?;
    Ok((rows, outcome))
}

/// Publishes one kernel traversal's heuristic stats into the recorder.
fn record_traversal_stats<R: Recorder>(rec: &R, st: super::hybrid::TraversalStats) {
    rec.add(Counter::FrontierLevels, st.levels);
    rec.add(Counter::BottomUpLevels, st.bottom_up_levels);
    rec.add(Counter::DirectionSwitches, st.direction_switches);
    rec.max(Counter::PeakFrontier, st.peak_frontier);
}

/// Frontier-parallel driver: sources run serially, each traversal using the
/// whole pool. Contributions are published into `acc` only after a source's
/// traversal completes, so an interruption (checked per level inside
/// [`ParFrontierBfs::run_ctl`]) leaves `acc` holding exactly the completed
/// sources — the same contract as the source-parallel path.
fn frontier_parallel_rows<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    cfg: &KernelConfig,
    mut acc: Option<&mut [u64]>,
    rec: &R,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    if rec.enabled() {
        rec.incr(Counter::BatchesFrontierParallel);
    }
    let n = g.num_nodes();
    let mut engine = ParFrontierBfs::with_params(n, cfg.params);
    let mut rows: Vec<Option<(usize, u64)>> = Vec::with_capacity(sources.len());
    let mut stopped: Option<RunOutcome> = None;
    for &s in sources {
        if stopped.is_some() {
            rows.push(None);
            continue;
        }
        let start = if rec.enabled() { Some(Instant::now()) } else { None };
        let result = catch_unwind(AssertUnwindSafe(|| {
            apply_worker_fault(ctl, FaultSite::BfsSource, s);
            engine.run_ctl_rec(g, s, ctl, rec)
        }));
        match result {
            Err(payload) => {
                return Err(WorkerPanic { detail: panic_message(payload.as_ref()) });
            }
            Ok(Err(cause)) => {
                stopped = Some(cause);
                rows.push(None);
            }
            Ok(Ok((reached, sum))) => {
                if let Some(acc) = acc.as_deref_mut() {
                    for (v, &d) in engine.distances()[..n].iter().enumerate() {
                        if d > 0 && d != INFINITE_DIST {
                            acc[v] += d as u64;
                        }
                    }
                }
                if let Some(start) = start {
                    let end = Instant::now();
                    rec.observe(
                        Metric::SourceBfsNanos,
                        end.duration_since(start).as_nanos() as u64,
                    );
                    if rec.trace_enabled() {
                        rec.trace_span("bfs.source", start, end);
                    }
                    record_traversal_stats(rec, engine.last_stats());
                }
                rows.push(Some((reached, sum)));
            }
        }
    }
    Ok((rows, stopped.unwrap_or(RunOutcome::Complete)))
}

/// Outcome of one MS-BFS batch inside the batched drivers.
enum MsBatchOut {
    /// The batch ran to completion; per-source `(reached, Σ d)` rows.
    Rows(Vec<(usize, u64)>),
    /// The batch was skipped (stop observed) or interrupted mid-sweep. The
    /// cause, if any, was already recorded in the shared [`StopCell`].
    Skipped,
    /// A worker fault unwound inside the batch.
    Panicked(String),
}

/// Runs one MS-BFS batch under `catch_unwind`, publishing its buffered
/// accumulator contributions only on success. Shared by the poisoning
/// ([`msbfs_rows`]) and quarantining ([`msbfs_isolated_rows`]) drivers.
///
/// Fault protocol: the batch-granular [`FaultSite::BfsBatch`] arm fires on
/// the batch ordinal, then the per-source [`FaultSite::BfsSource`] arm is
/// applied for every member at batch pickup — so plans targeting individual
/// sources keep firing under batching (the blast radius just widens to the
/// batch, which the retry machinery re-feeds as a whole).
#[allow(clippy::too_many_arguments)]
fn run_msbfs_batch<R: Recorder>(
    g: &CsrGraph,
    ctl: &RunControl,
    stop: &StopCell,
    atomic_acc: Option<&[AtomicU64]>,
    par_sweep: bool,
    rec: &R,
    ms: &mut MsBfs,
    buf: &mut Vec<(NodeId, u64)>,
    bi: usize,
    batch: &[NodeId],
) -> MsBatchOut {
    if let Some(cause) = ctl.should_stop() {
        stop.record(cause);
        return MsBatchOut::Skipped;
    }
    buf.clear();
    if rec.enabled() {
        rec.incr(Counter::BatchesMsbfs);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        apply_worker_fault(ctl, FaultSite::BfsBatch, bi as NodeId);
        for &s in batch {
            apply_worker_fault(ctl, FaultSite::BfsSource, s);
        }
        ms.run_batch_ctl_rec(g, batch, ctl, par_sweep, rec, |v, bits, d| {
            if d > 0 {
                // One vertex may be discovered by several sources at the
                // same level; fold their contributions into one add.
                buf.push((v, u64::from(d) * u64::from(bits.count_ones())));
            }
        })
    }));
    match result {
        Ok(Ok(rows)) => {
            // Publish only after the whole batch succeeded: an interrupted
            // or panicked batch leaves no trace in `acc`.
            if let Some(acc) = atomic_acc {
                for &(v, add) in buf.iter() {
                    acc[v as usize].fetch_add(add, Ordering::Relaxed);
                }
            }
            if rec.enabled() {
                record_traversal_stats(rec, ms.last_stats());
            }
            MsBatchOut::Rows(rows)
        }
        Ok(Err(cause)) => {
            stop.record(cause);
            MsBatchOut::Skipped
        }
        Err(payload) => MsBatchOut::Panicked(panic_message(payload.as_ref())),
    }
}

/// Batched MS-BFS driver (poisoning flavour): sources run in batches of up
/// to [`MSBFS_BATCH`], each batch traversed bit-parallel by [`MsBfs`].
///
/// Parallelism splits on batch count, mirroring the source- vs
/// frontier-parallel tradeoff: enough batches to occupy the pool → batches
/// run in parallel with serial sweeps (`map_init` scratch, like
/// [`source_parallel_rows`]); few batches → they run sequentially and each
/// sweep spreads across the pool. OR-accumulation commutes, so both
/// placements produce bit-identical rows and accumulator sums.
fn msbfs_rows<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    acc: Option<&mut [u64]>,
    rec: &R,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    let n = g.num_nodes();
    let atomic_acc = acc.map(atomic_view);
    let threads = rayon::current_num_threads();
    let batches: Vec<(usize, &[NodeId])> = sources.chunks(MSBFS_BATCH).enumerate().collect();
    let par_sweep = threads > 1 && batches.len() < threads;
    let stop = StopCell::new();
    let poisoned = AtomicBool::new(false);
    let panic_detail: Mutex<Option<String>> = Mutex::new(None);

    let run_one = |ms: &mut MsBfs, buf: &mut Vec<(NodeId, u64)>, bi: usize, batch: &[NodeId]| {
        if poisoned.load(Ordering::Relaxed) {
            return MsBatchOut::Skipped;
        }
        match run_msbfs_batch(g, ctl, &stop, atomic_acc, par_sweep, rec, ms, buf, bi, batch) {
            MsBatchOut::Panicked(detail) => {
                poisoned.store(true, Ordering::Relaxed);
                panic_detail.lock().unwrap().get_or_insert(detail);
                MsBatchOut::Skipped
            }
            out => out,
        }
    };
    let results: Vec<MsBatchOut> = if par_sweep {
        let mut ms = MsBfs::new(n);
        let mut buf = Vec::new();
        batches.iter().map(|&(bi, batch)| run_one(&mut ms, &mut buf, bi, batch)).collect()
    } else {
        batches
            .par_iter()
            .map_init(
                || (MsBfs::new(n), Vec::new()),
                |(ms, buf), &(bi, batch)| run_one(ms, buf, bi, batch),
            )
            .collect()
    };
    if poisoned.load(Ordering::Relaxed) {
        let detail = panic_detail
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| "unknown panic".to_string());
        return Err(WorkerPanic { detail });
    }
    let mut rows: Vec<Option<(usize, u64)>> = Vec::with_capacity(sources.len());
    for (out, &(_, batch)) in results.into_iter().zip(&batches) {
        match out {
            MsBatchOut::Rows(rs) => rows.extend(rs.into_iter().map(Some)),
            _ => rows.extend(std::iter::repeat(None).take(batch.len())),
        }
    }
    Ok((rows, stop.outcome()))
}

/// Batched MS-BFS driver (quarantining flavour): like [`msbfs_rows`], but a
/// panicked batch quarantines all of its sources instead of poisoning the
/// run — publish-after-complete means they contributed nothing, so the
/// degradation ladder can retry them as a fresh subset.
#[allow(clippy::type_complexity)]
fn msbfs_isolated_rows<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    acc: &mut [u64],
    rec: &R,
) -> (Vec<Option<(usize, u64)>>, Vec<(usize, String)>, RunOutcome) {
    let n = g.num_nodes();
    let atomic_acc = Some(atomic_view(acc));
    let threads = rayon::current_num_threads();
    let batches: Vec<(usize, &[NodeId])> = sources.chunks(MSBFS_BATCH).enumerate().collect();
    let par_sweep = threads > 1 && batches.len() < threads;
    let stop = StopCell::new();

    let run_one = |ms: &mut MsBfs, buf: &mut Vec<(NodeId, u64)>, bi: usize, batch: &[NodeId]| {
        let out = run_msbfs_batch(g, ctl, &stop, atomic_acc, par_sweep, rec, ms, buf, bi, batch);
        if let MsBatchOut::Panicked(detail) = &out {
            record_panic(rec, detail);
        }
        out
    };
    let results: Vec<MsBatchOut> = if par_sweep {
        let mut ms = MsBfs::new(n);
        let mut buf = Vec::new();
        batches.iter().map(|&(bi, batch)| run_one(&mut ms, &mut buf, bi, batch)).collect()
    } else {
        batches
            .par_iter()
            .map_init(
                || (MsBfs::new(n), Vec::new()),
                |(ms, buf), &(bi, batch)| run_one(ms, buf, bi, batch),
            )
            .collect()
    };
    let mut rows: Vec<Option<(usize, u64)>> = Vec::with_capacity(sources.len());
    let mut panics: Vec<(usize, String)> = Vec::new();
    let mut first = 0usize;
    for (out, &(_, batch)) in results.into_iter().zip(&batches) {
        match out {
            MsBatchOut::Rows(rs) => rows.extend(rs.into_iter().map(Some)),
            MsBatchOut::Skipped => rows.extend(std::iter::repeat(None).take(batch.len())),
            MsBatchOut::Panicked(detail) => {
                // Quarantine the whole batch: none of its sources
                // published, and the retry machinery re-feeds them together.
                for i in first..first + batch.len() {
                    panics.push((i, detail.clone()));
                }
                rows.extend(std::iter::repeat(None).take(batch.len()));
            }
        }
        first += batch.len();
    }
    (rows, panics, stop.outcome())
}

/// Runs one BFS per source in parallel, returning the full distance array of
/// each (row order matches `sources`).
///
/// `O(n·k)` memory — intended for block-local use where `n` is a block size,
/// or for tests and oracles.
pub fn par_bfs_from_sources(g: &CsrGraph, sources: &[NodeId]) -> Vec<Vec<Dist>> {
    let (rows, _) = par_bfs_from_sources_ctl(g, sources, &RunControl::new())
        .unwrap_or_else(|p| panic!("BFS worker panicked: {}", p.detail));
    rows.into_iter().map(Option::unwrap).collect()
}

/// Per-source results of a controlled run: `None` marks a skipped source.
/// Paired with the [`RunOutcome`] describing why (if) the run stopped early.
pub type ControlledRows<T> = (Vec<Option<T>>, RunOutcome);

/// One BFS per source under control, returning only `(reached, Σ d)` per
/// source — no shared accumulator, no distance rows. This is the kernel of
/// exact farness, where every vertex is its own source and only the
/// per-source sum matters.
pub fn par_bfs_sums_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    par_bfs_sums_ctl_with(g, sources, ctl, &KernelConfig::default())
}

/// [`par_bfs_sums_ctl`] with an explicit kernel choice; same scheduling
/// rule as [`par_bfs_accumulate_ctl_with`].
pub fn par_bfs_sums_ctl_with(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    cfg: &KernelConfig,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    par_bfs_sums_ctl_rec(g, sources, ctl, cfg, &NullRecorder)
}

/// [`par_bfs_sums_ctl_with`] with a telemetry [`Recorder`]; same
/// observe-only contract as [`par_bfs_accumulate_ctl_rec`].
pub fn par_bfs_sums_ctl_rec<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
    cfg: &KernelConfig,
    rec: &R,
) -> Result<ControlledRows<(usize, u64)>, WorkerPanic> {
    if rec.enabled() {
        rec.add(Counter::BfsSourcesPlanned, sources.len() as u64);
    }
    let rows = timed(rec, "bfs.batch", || {
        let threads = rayon::current_num_threads();
        if cfg.msbfs_applies(sources.len(), threads) {
            msbfs_rows(g, sources, ctl, None, rec)
        } else if cfg.frontier_parallel_applies(sources.len(), g.num_arcs(), threads) {
            frontier_parallel_rows(g, sources, ctl, cfg, None, rec)
        } else {
            match cfg.kernel {
                Kernel::TopDown => source_parallel_rows::<Bfs, R>(g, sources, ctl, cfg, None, rec),
                Kernel::Auto | Kernel::Hybrid | Kernel::MsBfs => {
                    source_parallel_rows::<HybridBfs, R>(g, sources, ctl, cfg, None, rec)
                }
            }
        }
    })?;
    record_rows(rec, g, &rows.0);
    Ok(rows)
}

/// Controlled variant of [`par_bfs_from_sources`]: rows of interrupted
/// sources come back as `None`; worker panics surface as `Err`.
pub fn par_bfs_from_sources_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
) -> Result<ControlledRows<Vec<Dist>>, WorkerPanic> {
    let guard = WorkerGuard::new(ctl);
    let rows: Vec<Option<Vec<Dist>>> = sources
        .par_iter()
        .map_init(
            || Bfs::new(g.num_nodes()),
            |bfs, &s| guard.run_source(s, || bfs.run(g, s)[..g.num_nodes()].to_vec()),
        )
        .collect();
    let outcome = guard.finish()?;
    Ok((rows, outcome))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use crate::GraphBuilder;

    fn grid3x3() -> CsrGraph {
        // 0 1 2
        // 3 4 5
        // 6 7 8
        let mut b = GraphBuilder::new(9);
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c < 2 {
                    b.add_edge(v, v + 1);
                }
                if r < 2 {
                    b.add_edge(v, v + 3);
                }
            }
        }
        b.build()
    }

    #[test]
    fn accumulate_matches_serial_sum() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut acc = vec![0u64; 9];
        let (per_source, stats) = par_bfs_accumulate(&g, &sources, &mut acc);

        for v in 0..9 {
            let expect: u64 = sources
                .iter()
                .map(|&s| bfs_distances(&g, s)[v] as u64)
                .sum();
            assert_eq!(acc[v], expect, "vertex {v}");
        }
        assert_eq!(stats.num_sources, 3);
        assert_eq!(stats.total_visited, 27);
        // Per-source farness of the centre of a 3x3 grid is 1*4 + 2*4 = 12.
        assert_eq!(per_source[1], (9, 12));
    }

    #[test]
    fn accumulate_all_sources_gives_exact_farness() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let (per_source, _) = par_bfs_accumulate(&g, &sources, &mut acc);
        // With every vertex as a source, acc[v] == farness(v) == per-source sum.
        for v in 0..9 {
            assert_eq!(acc[v], per_source[v].1);
        }
    }

    #[test]
    fn distance_matrix_matches_serial() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![2, 6];
        let rows = par_bfs_from_sources(&g, &sources);
        assert_eq!(rows[0], bfs_distances(&g, 2));
        assert_eq!(rows[1], bfs_distances(&g, 6));
    }

    #[test]
    fn empty_sources() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        let (rows, stats) = par_bfs_accumulate(&g, &[], &mut acc);
        assert!(rows.is_empty());
        assert_eq!(stats.total_visited, 0);
        assert!(acc.iter().all(|&x| x == 0));
    }

    #[test]
    fn accumulator_is_additive_across_calls() {
        let g = grid3x3();
        let mut acc = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0], &mut acc);
        par_bfs_accumulate(&g, &[8], &mut acc);
        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &[0, 8], &mut expect);
        assert_eq!(acc, expect);
    }

    #[test]
    fn ctl_unbounded_matches_uncontrolled() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut acc = vec![0u64; 9];
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &RunControl::new()).unwrap();
        assert_eq!(run.outcome, RunOutcome::Complete);
        assert_eq!(run.stats.num_sources, 3);
        assert_eq!(run.per_source[1], Some((9, 12)));
        assert!(run.per_source.iter().all(Option::is_some));
    }

    #[test]
    fn ctl_expired_deadline_skips_every_source() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap();
        assert_eq!(run.outcome, RunOutcome::Deadline);
        assert_eq!(run.stats.num_sources, 0);
        assert_eq!(run.stats.total_visited, 0);
        assert!(run.per_source.iter().all(Option::is_none));
        assert!(acc.iter().all(|&x| x == 0), "skipped sources must not touch acc");
    }

    #[test]
    fn ctl_pre_cancelled_skips_every_source() {
        let g = grid3x3();
        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        let mut acc = vec![0u64; 9];
        let sources: Vec<NodeId> = (0..9).collect();
        let run = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap();
        assert_eq!(run.outcome, RunOutcome::Cancelled);
        assert_eq!(run.stats.num_sources, 0);
        assert!(acc.iter().all(|&x| x == 0));
    }

    #[test]
    fn ctl_partial_acc_holds_only_completed_sources() {
        // Cancel from within a BFS callback: already-started sources finish,
        // later sources are skipped, and acc equals the serial sum over
        // exactly the completed (Some) sources.
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let ctl2 = RunControl::new();
        let mut acc = vec![0u64; 9];
        let first = par_bfs_accumulate_ctl(&g, &sources[..4], &mut acc, &ctl2).unwrap();
        assert_eq!(first.outcome, RunOutcome::Complete);
        ctl2.cancel_token().cancel();
        let second = par_bfs_accumulate_ctl(&g, &sources[4..], &mut acc, &ctl2).unwrap();
        assert_eq!(second.outcome, RunOutcome::Cancelled);
        assert_eq!(second.stats.num_sources, 0);

        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &sources[..4], &mut expect);
        assert_eq!(acc, expect);
    }

    #[test]
    fn ctl_injected_panic_is_captured_not_propagated() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let ctl = RunControl::new().with_injected_panic(4);
        let err = par_bfs_accumulate_ctl(&g, &sources, &mut acc, &ctl).unwrap_err();
        assert!(err.detail.contains("injected worker panic"), "got: {}", err.detail);
        assert!(err.detail.contains("source 4"), "got: {}", err.detail);
    }

    #[test]
    fn ctl_from_sources_deadline_and_panic() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![2, 6];

        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let (rows, outcome) = par_bfs_from_sources_ctl(&g, &sources, &ctl).unwrap();
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(rows.iter().all(Option::is_none));

        let ctl = RunControl::new().with_injected_panic(6);
        let err = par_bfs_from_sources_ctl(&g, &sources, &ctl).unwrap_err();
        assert!(err.detail.contains("source 6"));

        let (rows, outcome) =
            par_bfs_from_sources_ctl(&g, &sources, &RunControl::new()).unwrap();
        assert_eq!(outcome, RunOutcome::Complete);
        assert_eq!(rows[0].as_deref().unwrap(), &bfs_distances(&g, 2)[..]);
        assert_eq!(rows[1].as_deref().unwrap(), &bfs_distances(&g, 6)[..]);
    }

    /// Runs `f` inside a pool that reports `threads` workers, so the
    /// scheduler's frontier-parallel branch is reachable on any machine.
    fn in_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn atomic_view_u32_claims_vertices() {
        let mut dist = vec![crate::INFINITE_DIST; 8];
        let view = atomic_view_u32(&mut dist);
        assert!(view[3]
            .compare_exchange(crate::INFINITE_DIST, 2, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok());
        assert!(view[3]
            .compare_exchange(crate::INFINITE_DIST, 5, Ordering::Relaxed, Ordering::Relaxed)
            .is_err());
        view[0].store(0, Ordering::Relaxed);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[3], 2);
        assert_eq!(dist[7], crate::INFINITE_DIST);
    }

    #[test]
    fn frontier_parallel_atomic_publication_is_sound() {
        // Exercises the CAS claim (top-down) and bitmap fetch_or (bottom-up)
        // under a real multi-thread pool; named to match CI's Miri filter.
        in_pool(2, || {
            let g = grid3x3();
            let mut engine = crate::traversal::ParFrontierBfs::with_params(
                9,
                crate::traversal::HybridParams::eager_bottom_up(),
            );
            let (reached, sum) = engine.run(&g, 4);
            assert_eq!(reached, 9);
            assert_eq!(sum, 12);
            assert_eq!(&engine.distances()[..9], &bfs_distances(&g, 4)[..]);
        });
    }

    #[test]
    fn kernel_variants_match_topdown_accumulation() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let mut expect = vec![0u64; 9];
        let td = KernelConfig::new(Kernel::TopDown);
        par_bfs_accumulate_ctl_with(&g, &sources, &mut expect, &RunControl::new(), &td).unwrap();
        for kernel in [Kernel::Auto, Kernel::Hybrid, Kernel::MsBfs] {
            let mut acc = vec![0u64; 9];
            let cfg = KernelConfig::new(kernel);
            let run =
                par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &RunControl::new(), &cfg)
                    .unwrap();
            assert_eq!(acc, expect, "kernel {:?}", kernel);
            assert_eq!(run.stats.num_sources, 3);
        }
    }

    // The frontier-parallel tests below call the driver directly: the test
    // graph sits far under FRONTIER_PARALLEL_MIN_ARCS, so the scheduler
    // (correctly) no longer routes it there — the selection rule itself is
    // pinned in hybrid.rs.
    #[test]
    fn frontier_parallel_path_matches_source_parallel() {
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![4, 7];
        let mut expect = vec![0u64; 9];
        let (per_expect, _) = par_bfs_accumulate(&g, &sources, &mut expect);
        let cfg = KernelConfig::default();
        in_pool(4, || {
            let mut acc = vec![0u64; 9];
            let (rows, outcome) = frontier_parallel_rows(
                &g,
                &sources,
                &RunControl::new(),
                &cfg,
                Some(&mut acc),
                &NullRecorder,
            )
            .unwrap();
            assert_eq!(acc, expect);
            let want: Vec<_> = per_expect.iter().map(|&p| Some(p)).collect();
            assert_eq!(rows, want);
            assert_eq!(outcome, RunOutcome::Complete);
        });
    }

    #[test]
    fn frontier_parallel_expired_deadline_leaves_acc_untouched() {
        in_pool(4, || {
            let g = grid3x3();
            let mut acc = vec![0u64; 9];
            let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
            let (rows, outcome) = frontier_parallel_rows(
                &g,
                &[0, 8],
                &ctl,
                &KernelConfig::default(),
                Some(&mut acc),
                &NullRecorder,
            )
            .unwrap();
            assert_eq!(outcome, RunOutcome::Deadline);
            assert!(rows.iter().all(Option::is_none));
            assert!(acc.iter().all(|&x| x == 0), "interrupted run must not touch acc");
        });
    }

    #[test]
    fn frontier_parallel_injected_panic_is_captured() {
        in_pool(4, || {
            let g = grid3x3();
            let ctl = RunControl::new().with_injected_panic(8);
            let mut acc = vec![0u64; 9];
            let err = frontier_parallel_rows(
                &g,
                &[0, 8],
                &ctl,
                &KernelConfig::default(),
                Some(&mut acc),
                &NullRecorder,
            )
            .unwrap_err();
            assert!(err.detail.contains("source 8"), "got: {}", err.detail);
        });
    }

    #[test]
    fn msbfs_kernel_matches_source_parallel_in_both_sweep_modes() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut expect = vec![0u64; 9];
        let (per_expect, _) = par_bfs_accumulate(&g, &sources, &mut expect);
        let want: Vec<_> = per_expect.iter().map(|&p| Some(p)).collect();
        let cfg = KernelConfig::new(Kernel::MsBfs);
        // 1 thread → parallel batches (degenerate) with serial sweeps;
        // 4 threads, one batch → sequential batches with parallel sweeps.
        for threads in [1, 4] {
            in_pool(threads, || {
                let mut acc = vec![0u64; 9];
                let run =
                    par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &RunControl::new(), &cfg)
                        .unwrap();
                assert_eq!(acc, expect, "{threads} threads");
                assert_eq!(run.per_source, want, "{threads} threads");
                assert_eq!(run.outcome, RunOutcome::Complete);
            });
        }
    }

    #[test]
    fn msbfs_auto_selection_batches_many_sources() {
        use crate::telemetry::RunRecorder;
        let g = grid3x3();
        // 130 sources (with repeats) → 3 batches: 64 + 64 + 2 (ragged).
        let sources: Vec<NodeId> = (0..130u32).map(|i| i % 9).collect();
        let mut expect = vec![0u64; 9];
        let (per_expect, _) = par_bfs_accumulate(&g, &sources, &mut expect);
        in_pool(4, || {
            let cfg = KernelConfig::default();
            assert!(cfg.msbfs_applies(sources.len(), rayon::current_num_threads()));
            let rec = RunRecorder::new();
            let mut acc = vec![0u64; 9];
            let run =
                par_bfs_accumulate_ctl_rec(&g, &sources, &mut acc, &RunControl::new(), &cfg, &rec)
                    .unwrap();
            assert_eq!(acc, expect);
            let want: Vec<_> = per_expect.iter().map(|&p| Some(p)).collect();
            assert_eq!(run.per_source, want);
            assert_eq!(rec.counter(Counter::BatchesMsbfs), 3);
            assert_eq!(rec.counter(Counter::BfsSources), 130);
            // Batched execution times sweeps, not individual sources.
            assert_eq!(rec.histogram(Metric::SourceBfsNanos).count, 0);
            assert!(rec.histogram(Metric::SweepNanos).count > 0);
            assert!(rec.histogram(Metric::BatchOccupancy).count > 0);
            assert_eq!(rec.histogram(Metric::BatchOccupancy).max, 64);
        });
    }

    #[test]
    fn msbfs_expired_deadline_leaves_acc_untouched() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let mut acc = vec![0u64; 9];
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let cfg = KernelConfig::new(Kernel::MsBfs);
        let run = par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &ctl, &cfg).unwrap();
        assert_eq!(run.outcome, RunOutcome::Deadline);
        assert!(run.per_source.iter().all(Option::is_none));
        assert_eq!(run.stats.num_sources, 0);
        assert!(acc.iter().all(|&x| x == 0), "interrupted batch must not touch acc");
    }

    #[test]
    fn msbfs_injected_panic_poisons_the_run() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let ctl = RunControl::new().with_injected_panic(4);
        let cfg = KernelConfig::new(Kernel::MsBfs);
        let mut acc = vec![0u64; 9];
        let err = par_bfs_accumulate_ctl_with(&g, &sources, &mut acc, &ctl, &cfg).unwrap_err();
        assert!(err.detail.contains("source 4"), "got: {}", err.detail);
    }

    #[test]
    fn msbfs_isolated_quarantines_the_whole_batch() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let ctl = RunControl::new().with_injected_panic(4);
        let cfg = KernelConfig::new(Kernel::MsBfs);
        let mut acc = vec![0u64; 9];
        let run = par_bfs_accumulate_isolated(&g, &sources, &mut acc, &ctl, &cfg);
        // One batch holds every source, so the panic quarantines all of them
        // and none published into the accumulator.
        assert_eq!(run.quarantined, (0..9).collect::<Vec<_>>());
        assert!(run.per_source.iter().all(Option::is_none));
        assert!(run.outcome.is_complete());
        assert!(acc.iter().all(|&x| x == 0), "quarantined batch must not touch acc");
        assert!(run.panic_details[0].contains("source 4"));

        // Retrying the quarantined batch without the fault lands exactly
        // the sums the eager path would have published.
        let retry = par_bfs_accumulate_isolated(&g, &sources, &mut acc, &RunControl::new(), &cfg);
        assert!(retry.quarantined.is_empty());
        let mut expect = vec![0u64; 9];
        par_bfs_accumulate(&g, &sources, &mut expect);
        assert_eq!(acc, expect);
    }

    #[test]
    fn recorded_run_reconciles_counters_and_preserves_results() {
        use crate::telemetry::RunRecorder;
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];

        let mut plain = vec![0u64; 9];
        let base = par_bfs_accumulate_ctl(&g, &sources, &mut plain, &RunControl::new()).unwrap();

        let rec = RunRecorder::new();
        let mut acc = vec![0u64; 9];
        let cfg = KernelConfig::default();
        let run =
            par_bfs_accumulate_ctl_rec(&g, &sources, &mut acc, &RunControl::new(), &cfg, &rec)
                .unwrap();
        assert_eq!(acc, plain, "recorder must not change the accumulator");
        assert_eq!(run.per_source, base.per_source);

        assert_eq!(rec.counter(Counter::BfsSources), 3);
        assert_eq!(rec.counter(Counter::BfsSourcesSkipped), 0);
        assert_eq!(rec.counter(Counter::BfsSourcesPlanned), 3);
        assert_eq!(rec.counter(Counter::VerticesVisited), 27);
        assert_eq!(rec.counter(Counter::EdgesScanned), 3 * g.num_arcs() as u64);
        assert_eq!(
            rec.counter(Counter::BatchesHybrid) + rec.counter(Counter::BatchesFrontierParallel),
            1
        );
        assert!(rec.counter(Counter::FrontierLevels) > 0);
        // One per-source time observation per completed source; frontier
        // sizes cover every expanded level.
        assert_eq!(rec.histogram(Metric::SourceBfsNanos).count, 3);
        assert_eq!(
            rec.histogram(Metric::FrontierSize).count,
            rec.counter(Counter::FrontierLevels)
        );
        assert_eq!(
            rec.histogram(Metric::FrontierSize).max,
            rec.counter(Counter::PeakFrontier)
        );
        let report = rec.report();
        let batch = report.phases.iter().find(|p| p.name == "bfs.batch").unwrap();
        assert_eq!(batch.count, 1);

        // Interrupted run: every source skipped, none completed.
        let rec = RunRecorder::new();
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let mut acc = vec![0u64; 9];
        par_bfs_accumulate_ctl_rec(&g, &sources, &mut acc, &ctl, &cfg, &rec).unwrap();
        assert_eq!(rec.counter(Counter::BfsSources), 0);
        assert_eq!(rec.counter(Counter::BfsSourcesSkipped), 3);
        assert_eq!(rec.counter(Counter::BfsSourcesPlanned), 3);
        assert_eq!(rec.counter(Counter::EdgesScanned), 0);
        assert_eq!(rec.histogram(Metric::SourceBfsNanos).count, 0);
    }

    #[test]
    fn traced_batch_nests_sources_within_batch() {
        use crate::telemetry::RunRecorder;
        let g = grid3x3();
        let sources: Vec<NodeId> = vec![0, 4, 8];
        let rec = RunRecorder::with_trace();
        let mut acc = vec![0u64; 9];
        par_bfs_accumulate_ctl_rec(
            &g,
            &sources,
            &mut acc,
            &RunControl::new(),
            &KernelConfig::default(),
            &rec,
        )
        .unwrap();
        let events = rec.trace_events();
        let batch = *events.iter().find(|e| e.name == "bfs.batch").unwrap();
        let per_source: Vec<_> = events.iter().filter(|e| e.name == "bfs.source").collect();
        assert_eq!(per_source.len(), 3);
        for e in per_source {
            assert!(e.start_ns >= batch.start_ns, "source starts inside the batch");
            assert!(
                e.start_ns + e.dur_ns <= batch.start_ns + batch.dur_ns,
                "source ends inside the batch"
            );
        }
    }

    #[test]
    fn sums_agree_across_kernels() {
        let g = grid3x3();
        let sources: Vec<NodeId> = (0..9).collect();
        let (expect, _) = par_bfs_sums_ctl(&g, &sources, &RunControl::new()).unwrap();
        for cfg in [
            KernelConfig::new(Kernel::TopDown),
            KernelConfig::new(Kernel::Hybrid),
            KernelConfig::new(Kernel::MsBfs),
        ] {
            let (rows, outcome) =
                par_bfs_sums_ctl_with(&g, &sources, &RunControl::new(), &cfg).unwrap();
            assert_eq!(rows, expect);
            assert!(outcome.is_complete());
        }
        // Frontier-parallel engine (driver called directly: the grid is far
        // below the scheduler's arcs floor).
        in_pool(4, || {
            let (rows, outcome) = frontier_parallel_rows(
                &g,
                &sources[..1],
                &RunControl::new(),
                &KernelConfig::default(),
                None,
                &NullRecorder,
            )
            .unwrap();
            assert_eq!(rows[0], expect[0]);
            assert!(outcome.is_complete());
        });
    }
}
