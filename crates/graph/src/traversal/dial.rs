//! Dial's algorithm: single-source shortest paths with small non-negative
//! integer edge weights, via a bucket queue.
//!
//! Chain contraction (see `brics-reduce`) replaces degree-2 runs with
//! weighted edges, so the reduced graph needs a weighted traversal. Weights
//! are chain lengths — small integers — which makes Dial's bucket queue the
//! right tool: `O(n + m + max_dist)` with no heap, and identical to plain
//! BFS when every weight is 1.

use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};

/// Reusable Dial scratch: distance array plus a rolling bucket queue.
/// When called without weights it degenerates to a plain FIFO BFS with no
/// bucket overhead, so one scratch type serves both traversals.
#[derive(Clone, Debug)]
pub struct DialBfs {
    dist: Vec<Dist>,
    touched: Vec<NodeId>,
    buckets: Vec<Vec<NodeId>>,
    queue: Vec<NodeId>,
    scanned: u64,
}

impl DialBfs {
    /// Creates scratch space for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![INFINITE_DIST; n],
            touched: Vec::new(),
            buckets: Vec::new(),
            queue: Vec::new(),
            scanned: 0,
        }
    }

    /// Grows the distance array if needed.
    pub fn resize(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DIST);
        }
    }

    /// Runs weighted SSSP from `source`. `weights`, when present, is
    /// aligned with `g.targets()` (the arc order of the CSR); when absent
    /// every edge has weight 1.
    ///
    /// Invokes `visit(v, d)` once per settled vertex (including the source
    /// at 0) and returns `(settled_count, Σ distances)`.
    ///
    /// # Panics
    /// Panics if any weight is 0 (contracted chains always have length ≥ 1,
    /// so a zero weight indicates corrupted input).
    pub fn run_with<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        weights: Option<&[u32]>,
        source: NodeId,
        mut visit: F,
    ) -> (usize, u64) {
        debug_assert!((source as usize) < g.num_nodes());
        let Some(weights) = weights else {
            return self.run_unweighted(g, source, visit);
        };
        assert_eq!(weights.len(), g.targets().len(), "weights misaligned with arcs");
        self.resize(g.num_nodes());
        self.scanned = 0;
        for &v in &self.touched {
            self.dist[v as usize] = INFINITE_DIST;
        }
        self.touched.clear();
        for b in &mut self.buckets {
            b.clear();
        }

        self.dist[source as usize] = 0;
        self.touched.push(source);
        if self.buckets.is_empty() {
            self.buckets.push(Vec::new());
        }
        self.buckets[0].push(source);

        let offsets = g.offsets();
        let targets = g.targets();
        let mut reached = 0usize;
        let mut sum = 0u64;
        let mut cur = 0usize;
        let mut pending = 1usize;
        while pending > 0 {
            while cur < self.buckets.len() && self.buckets[cur].is_empty() {
                cur += 1;
            }
            if cur >= self.buckets.len() {
                break;
            }
            let u = self.buckets[cur].pop().unwrap();
            pending -= 1;
            let du = cur as Dist;
            if self.dist[u as usize] != du {
                continue; // stale entry (lazy deletion)
            }
            reached += 1;
            sum += du as u64;
            visit(u, du);
            let (lo, hi) = (offsets[u as usize], offsets[u as usize + 1]);
            self.scanned += (hi - lo) as u64;
            for a in lo..hi {
                let v = targets[a];
                let w = weights[a];
                assert!(w > 0, "zero edge weight");
                let dv = du.saturating_add(w);
                if dv < self.dist[v as usize] {
                    if self.dist[v as usize] == INFINITE_DIST {
                        self.touched.push(v);
                    }
                    self.dist[v as usize] = dv;
                    let bi = dv as usize;
                    if bi >= self.buckets.len() {
                        self.buckets.resize_with(bi + 1, Vec::new);
                    }
                    self.buckets[bi].push(v);
                    pending += 1;
                }
            }
        }
        // Drain any remaining stale entries so the next run starts clean.
        for b in &mut self.buckets {
            b.clear();
        }
        (reached, sum)
    }

    /// Plain FIFO BFS fast path for unit weights.
    fn run_unweighted<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        mut visit: F,
    ) -> (usize, u64) {
        self.resize(g.num_nodes());
        self.scanned = 0;
        for &v in &self.touched {
            self.dist[v as usize] = INFINITE_DIST;
        }
        self.touched.clear();
        self.queue.clear();

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queue.push(source);
        visit(source, 0);

        let mut head = 0usize;
        let mut reached = 1usize;
        let mut sum = 0u64;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            self.scanned += g.neighbors(u).len() as u64;
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INFINITE_DIST {
                    let dv = du + 1;
                    self.dist[v as usize] = dv;
                    self.touched.push(v);
                    self.queue.push(v);
                    visit(v, dv);
                    reached += 1;
                    sum += dv as u64;
                }
            }
        }
        (reached, sum)
    }

    /// Distance array of the most recent run.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// Mutable distance array (same caveats as `Bfs::distances_mut`).
    pub fn distances_mut(&mut self) -> &mut [Dist] {
        &mut self.dist
    }

    /// Arcs scanned by the most recent run: bucket-queue relaxations in the
    /// weighted path, neighbor-list iterations in the unweighted fast path.
    /// Feeds the `edges_scanned` telemetry counter with actual traversal
    /// work rather than a `sources × num_arcs` approximation.
    pub fn arcs_scanned(&self) -> u64 {
        self.scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_distances;
    use crate::generators::{cycle_graph, gnm_random_connected};
    use crate::GraphBuilder;

    #[test]
    fn unit_weights_match_bfs() {
        for seed in 0..5 {
            let g = gnm_random_connected(60, 90, seed);
            let mut dial = DialBfs::new(60);
            dial.run_with(&g, None, 3, |_, _| {});
            assert_eq!(dial.distances()[..60], bfs_distances(&g, 3)[..], "seed {seed}");
        }
    }

    #[test]
    fn weighted_triangle() {
        // 0-1 w=5, 1-2 w=1, 0-2 w=1: d(0,1) = 2 via 2.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        // CSR arcs: 0:[1,2], 1:[0,2], 2:[0,1] — weights aligned.
        let weights = vec![5, 1, 5, 1, 1, 1];
        let mut dial = DialBfs::new(3);
        let (reached, sum) = dial.run_with(&g, Some(&weights), 0, |_, _| {});
        assert_eq!(reached, 3);
        assert_eq!(dial.distances(), &[0, 2, 1]);
        assert_eq!(sum, 3);
    }

    #[test]
    fn weighted_path_contracted_semantics() {
        // Simulates a contracted chain: 0 -(w3)- 1 -(w1)- 2.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let weights = vec![3, 3, 1, 1]; // arcs: 0:[1], 1:[0,2], 2:[1]
        let mut dial = DialBfs::new(3);
        dial.run_with(&g, Some(&weights), 2, |_, _| {});
        assert_eq!(dial.distances(), &[4, 1, 0]);
    }

    #[test]
    fn visit_called_once_per_vertex() {
        let g = cycle_graph(8);
        let mut dial = DialBfs::new(8);
        let mut count = [0u32; 8];
        dial.run_with(&g, None, 0, |v, _| count[v as usize] += 1);
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn reuse_resets() {
        let g = cycle_graph(6);
        let mut dial = DialBfs::new(6);
        dial.run_with(&g, None, 0, |_, _| {});
        let first = dial.distances().to_vec();
        dial.run_with(&g, None, 0, |_, _| {});
        assert_eq!(dial.distances(), &first[..]);
        dial.run_with(&g, None, 3, |_, _| {});
        assert_eq!(dial.distances()[3], 0);
        assert_eq!(dial.distances()[0], 3);
    }

    #[test]
    fn disconnected_unreached_is_infinite() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let mut dial = DialBfs::new(4);
        let (reached, _) = dial.run_with(&g, None, 0, |_, _| {});
        assert_eq!(reached, 2);
        assert_eq!(dial.distances()[2], INFINITE_DIST);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_weights_rejected() {
        let g = cycle_graph(4);
        let mut dial = DialBfs::new(4);
        dial.run_with(&g, Some(&[1, 2]), 0, |_, _| {});
    }

    #[test]
    fn arcs_scanned_counts_actual_work() {
        // Unweighted full traversal scans every arc exactly once.
        let g = cycle_graph(8);
        let mut dial = DialBfs::new(8);
        dial.run_with(&g, None, 0, |_, _| {});
        assert_eq!(dial.arcs_scanned(), g.num_arcs() as u64);
        // Weighted: each settled vertex's arc list is scanned once; stale
        // re-pops don't re-scan. The counter resets between runs.
        let weights = vec![1u32; g.num_arcs()];
        dial.run_with(&g, Some(&weights), 0, |_, _| {});
        assert_eq!(dial.arcs_scanned(), g.num_arcs() as u64);
        // Partial traversal on a disconnected graph scans only its component.
        let g2 = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        dial.run_with(&g2, None, 0, |_, _| {});
        assert_eq!(dial.arcs_scanned(), 2);
    }

    #[test]
    fn stale_entries_skipped() {
        // Diamond where relaxation improves a vertex after first insert:
        // 0-1 w=10, 0-2 w=1, 2-1 w=1: 1 gets bucket 10 then bucket 2.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let weights = vec![10, 1, 10, 1, 1, 1];
        let mut dial = DialBfs::new(3);
        let (reached, sum) = dial.run_with(&g, Some(&weights), 0, |_, _| {});
        assert_eq!(reached, 3);
        assert_eq!(dial.distances(), &[0, 2, 1]);
        assert_eq!(sum, 3);
    }
}
