//! Dense vertex bitmaps for the direction-optimizing BFS kernels.
//!
//! The bottom-up step asks "does unvisited `u` have a neighbour in the
//! current frontier?" — a membership test per scanned arc. A `Vec<u64>`
//! bitmap answers it in one load + mask, and its word granularity is also
//! what the frontier-parallel kernel needs: workers publish discoveries
//! with a single `fetch_or` per vertex.

use crate::NodeId;
use std::sync::atomic::AtomicU64;

const WORD_BITS: usize = 64;

/// A bitmap over vertex ids `0..capacity`, packed into 64-bit words.
#[derive(Clone, Debug, Default)]
pub struct FrontierBitmap {
    words: Vec<u64>,
    capacity: usize,
}

impl FrontierBitmap {
    /// An all-zero bitmap able to hold vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(WORD_BITS)], capacity: n }
    }

    /// Number of vertex ids the bitmap can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grows the bitmap (zero-filled) if `n` exceeds the current capacity.
    pub fn resize(&mut self, n: usize) {
        if n > self.capacity {
            self.words.resize(n.div_ceil(WORD_BITS), 0);
            self.capacity = n;
        }
    }

    /// Clears every bit. `O(capacity / 64)`.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets the bit for vertex `v`.
    #[inline]
    pub fn set(&mut self, v: NodeId) {
        let v = v as usize;
        self.words[v / WORD_BITS] |= 1u64 << (v % WORD_BITS);
    }

    /// Whether the bit for vertex `v` is set.
    #[inline]
    pub fn test(&self, v: NodeId) -> bool {
        let v = v as usize;
        self.words[v / WORD_BITS] & (1u64 << (v % WORD_BITS)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears the bitmap and sets exactly the given vertices.
    pub fn fill_from(&mut self, vs: &[NodeId]) {
        self.clear();
        for &v in vs {
            self.set(v);
        }
    }

    /// Iterates the set vertex ids in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Reinterprets the word storage as atomics so parallel workers can
    /// publish bits with `fetch_or`. Safe for the same reason as
    /// [`crate::traversal::atomic_view`]: `AtomicU64` is `repr(transparent)`
    /// over `u64` and the exclusive borrow rules out unsynchronised access.
    pub fn atomic_words(&mut self) -> &[AtomicU64] {
        unsafe {
            std::slice::from_raw_parts(self.words.as_ptr() as *const AtomicU64, self.words.len())
        }
    }
}

/// Iterator over the set bits of a [`FrontierBitmap`], ascending.
pub struct SetBits<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_index * WORD_BITS) as NodeId + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn set_test_clear() {
        let mut b = FrontierBitmap::new(130);
        assert_eq!(b.capacity(), 130);
        assert!(!b.test(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.test(0) && b.test(63) && b.test(64) && b.test(129));
        assert!(!b.test(1) && !b.test(128));
        assert_eq!(b.count_ones(), 4);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_set_ascending() {
        let mut b = FrontierBitmap::new(200);
        let vs = [3u32, 64, 65, 127, 128, 199];
        for &v in &vs {
            b.set(v);
        }
        let got: Vec<NodeId> = b.iter_set().collect();
        assert_eq!(got, vs);
    }

    #[test]
    fn fill_from_replaces_contents() {
        let mut b = FrontierBitmap::new(70);
        b.set(5);
        b.fill_from(&[1, 69]);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![1, 69]);
    }

    #[test]
    fn resize_preserves_bits() {
        let mut b = FrontierBitmap::new(10);
        b.set(7);
        b.resize(500);
        assert!(b.test(7));
        b.set(499);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn empty_bitmap_iterates_nothing() {
        let b = FrontierBitmap::new(0);
        assert_eq!(b.iter_set().count(), 0);
    }

    #[test]
    fn atomic_words_publish_bits() {
        let mut b = FrontierBitmap::new(128);
        let words = b.atomic_words();
        words[1].fetch_or(1u64 << 3, Ordering::Relaxed);
        assert!(b.test(67));
    }
}
