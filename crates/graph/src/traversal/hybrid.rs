//! Direction-optimizing BFS kernels (Beamer's top-down / bottom-up hybrid).
//!
//! A conventional BFS expands the frontier *top-down*: every frontier
//! vertex scans its neighbour list and claims the unvisited ones. On
//! low-diameter graphs there is a level where the frontier covers most of
//! the graph and nearly every scanned arc hits an already-visited vertex —
//! wasted work. The *bottom-up* step inverts the roles for exactly those
//! levels: every still-unvisited vertex scans its own neighbours and stops
//! at the first one found in the current-frontier bitmap, so a vertex with
//! a frontier neighbour costs `O(1)` probes instead of being probed once
//! per frontier neighbour.
//!
//! Switching is governed by the classic two-threshold heuristic: go
//! bottom-up when the frontier's outgoing arcs `m_f` exceed the unexplored
//! arcs `m_u / alpha`, return top-down when the frontier shrinks below
//! `n / beta` vertices. Both tunables live in [`HybridParams`] and are
//! plumbed from `core::config` through [`KernelConfig`].
//!
//! Two engines share the heuristic:
//! * [`HybridBfs`] — serial, drop-in for [`Bfs`] in the source-parallel
//!   drivers (`one scratch per worker`);
//! * [`ParFrontierBfs`] — frontier-parallel and level-synchronous, so a
//!   *single* traversal saturates the pool when there are fewer sources
//!   than threads. It consults [`RunControl`] once per level, keeping
//!   deadline/cancel semantics sound without per-arc overhead.

use super::frontier::FrontierBitmap;
use super::parallel::atomic_view_u32;
use crate::control::{FaultKind, FaultSite, RunControl, RunOutcome};
use crate::telemetry::{Metric, NullRecorder, Recorder};
use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Tunables of the direction-switching heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// Switch top-down → bottom-up when `m_f > m_u / alpha` (frontier
    /// out-arcs exceed a fraction of the unexplored arcs). `0.0` disables
    /// the bottom-up direction entirely; `f64::INFINITY` takes it as soon
    /// as the frontier is non-empty.
    pub alpha: f64,
    /// Switch bottom-up → top-down when the frontier holds fewer than
    /// `n / beta` vertices. `f64::INFINITY` never switches back.
    pub beta: f64,
}

impl Default for HybridParams {
    /// `alpha = 2, beta = 20`. Beamer's published `alpha = 15` models a
    /// bottom-up step whose per-edge cost is ~15× below top-down's (true
    /// for his bandwidth-bound parallel setting); here the bottom-up win
    /// comes only from the early-exit probe, so switching is worthwhile
    /// only once frontier arcs rival the unexplored arcs. Measured on the
    /// benchmark suite (`brics-bench --bin kernels`): alpha = 2 keeps the
    /// 2×+ wins on low-diameter graphs and is within noise of pure
    /// top-down on the road/community classes, where alpha = 15 cost up
    /// to 2.4×.
    fn default() -> Self {
        Self { alpha: 2.0, beta: 20.0 }
    }
}

impl HybridParams {
    /// Parameters that never leave top-down — for A/B measurement.
    pub fn always_top_down() -> Self {
        Self { alpha: 0.0, beta: 0.0 }
    }

    /// Parameters that switch to bottom-up at the first opportunity and
    /// stay there — exercises the bottom-up step on every level.
    pub fn eager_bottom_up() -> Self {
        Self { alpha: f64::INFINITY, beta: f64::INFINITY }
    }
}

/// Which BFS kernel the parallel drivers should run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// Direction-optimizing kernel, with frontier-parallel execution when
    /// a call has fewer sources than threads. The default.
    #[default]
    Auto,
    /// Classic serial top-down BFS per source ([`Bfs`](crate::traversal::Bfs));
    /// parallelism over
    /// sources only. The pre-hybrid behaviour, kept for comparison.
    TopDown,
    /// Direction-optimizing kernel, like [`Kernel::Auto`] (the variants
    /// exist so harnesses can name the choice explicitly).
    Hybrid,
    /// Bit-parallel multi-source BFS (Then et al.): batches of up to 64
    /// sources traverse together, one `u64` frontier/seen word per vertex.
    /// Forces batching regardless of source count; [`Kernel::Auto`] picks
    /// it only on multi-source calls (≥ [`MSBFS_BATCH`] sources).
    MsBfs,
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(Kernel::Auto),
            "topdown" | "top-down" => Ok(Kernel::TopDown),
            "hybrid" => Ok(Kernel::Hybrid),
            "msbfs" | "ms-bfs" => Ok(Kernel::MsBfs),
            other => {
                Err(format!("unknown kernel '{other}' (expected auto|topdown|hybrid|msbfs)"))
            }
        }
    }
}

impl Kernel {
    /// Name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::TopDown => "topdown",
            Kernel::Hybrid => "hybrid",
            Kernel::MsBfs => "msbfs",
        }
    }
}

/// Kernel choice plus heuristic tunables, threaded from `core::config`
/// down into the parallel BFS drivers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Which kernel backs each traversal.
    pub kernel: Kernel,
    /// Direction-switching tunables (ignored by [`Kernel::TopDown`]).
    pub params: HybridParams,
}

/// Width of one MS-BFS batch: the sources sharing a machine word.
pub const MSBFS_BATCH: usize = 64;

/// Arc-count floor below which the frontier-parallel engine is never
/// auto-selected. Each of its levels pays a rayon fork-join (tens of
/// microseconds), so a traversal needs enough arcs per level to amortize
/// it; `BENCH_kernels.json` shows it losing 5–6× to the serial hybrid on
/// every bench graph up to ~260 k arcs. 1 M arcs is the first scale where
/// per-level work plausibly dominates the sync cost.
pub const FRONTIER_PARALLEL_MIN_ARCS: usize = 1_000_000;

impl KernelConfig {
    /// A config for `kernel` with default switching parameters.
    pub fn new(kernel: Kernel) -> Self {
        Self { kernel, params: HybridParams::default() }
    }

    /// Whether a call with `num_sources` sources on a graph of `num_arcs`
    /// arcs should run the frontier-parallel engine instead of
    /// parallelising over sources: only when the kernel allows it, there
    /// are too few sources to occupy `threads` workers (each
    /// source-parallel BFS is serial, so `k < threads` strands
    /// `threads - k` cores), *and* the graph is large enough that
    /// per-level parallelism beats its fork-join overhead
    /// ([`FRONTIER_PARALLEL_MIN_ARCS`]).
    pub fn frontier_parallel_applies(
        &self,
        num_sources: usize,
        num_arcs: usize,
        threads: usize,
    ) -> bool {
        matches!(self.kernel, Kernel::Auto | Kernel::Hybrid)
            && threads > 1
            && num_sources < threads
            && num_arcs >= FRONTIER_PARALLEL_MIN_ARCS
    }

    /// Whether a call with `num_sources` sources should run the
    /// bit-parallel multi-source kernel. [`Kernel::MsBfs`] always batches
    /// (that is the point of naming it); [`Kernel::Auto`] batches only
    /// when the call carries at least one full batch of sources *and* more
    /// than one thread — the regime where amortizing memory traffic across
    /// the batch wins. Checked before
    /// [`KernelConfig::frontier_parallel_applies`] by the scheduler.
    pub fn msbfs_applies(&self, num_sources: usize, threads: usize) -> bool {
        match self.kernel {
            Kernel::MsBfs => num_sources > 0,
            Kernel::Auto => threads > 1 && num_sources >= MSBFS_BATCH,
            Kernel::TopDown | Kernel::Hybrid => false,
        }
    }
}

/// Per-traversal statistics exposed for telemetry: how the
/// direction-switching heuristic behaved on the most recent run.
///
/// Maintaining these is a handful of integer ops per *level* (not per
/// arc), so the kernels update them unconditionally; recorders harvest
/// them only when enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Levels expanded (the eccentricity of the source when connected).
    pub levels: u64,
    /// Levels executed with the bottom-up step.
    pub bottom_up_levels: u64,
    /// Direction switches (either direction) taken by the heuristic.
    pub direction_switches: u64,
    /// Largest frontier, in vertices, fed to any level expansion.
    pub peak_frontier: u64,
}

impl TraversalStats {
    fn level(&mut self, bottom_up: bool, n_f: usize) {
        self.levels += 1;
        self.bottom_up_levels += u64::from(bottom_up);
        self.peak_frontier = self.peak_frontier.max(n_f as u64);
    }
}

/// Uniform constructor/run interface over the serial BFS kernels so the
/// source-parallel drivers can be generic over [`Kernel`].
pub trait SerialBfsKernel: Send {
    /// Scratch space for graphs with up to `n` vertices under `cfg`.
    fn for_config(n: usize, cfg: &KernelConfig) -> Self;

    /// Runs BFS from `source`, invoking `visit(v, d)` once per reached
    /// vertex (including the source at distance 0). Returns
    /// `(reached, Σ d)`. The visit *order* is kernel-specific; the set of
    /// `(v, d)` pairs is not.
    fn run_with_visit<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        visit: F,
    ) -> (usize, u64);

    /// Heuristic statistics from the most recent run. Kernels without a
    /// direction heuristic report the zero default.
    fn last_stats(&self) -> TraversalStats {
        TraversalStats::default()
    }

    /// Asks the kernel to log per-level frontier sizes for harvesting via
    /// [`SerialBfsKernel::level_sizes`]. Off by default; kernels without a
    /// level structure (the queue-based top-down BFS) may ignore it.
    /// Drivers enable this only when a recorder is attached, keeping the
    /// unrecorded path free of the bookkeeping.
    fn set_level_recording(&mut self, on: bool) {
        let _ = on;
    }

    /// Frontier size fed into each level of the most recent run, when
    /// level recording is on. Kernels that do not track levels report an
    /// empty slice.
    fn level_sizes(&self) -> &[u64] {
        &[]
    }
}

impl SerialBfsKernel for super::bfs::Bfs {
    fn for_config(n: usize, _cfg: &KernelConfig) -> Self {
        Self::new(n)
    }

    fn run_with_visit<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        visit: F,
    ) -> (usize, u64) {
        self.run_with(g, source, visit)
    }
}

impl SerialBfsKernel for HybridBfs {
    fn for_config(n: usize, cfg: &KernelConfig) -> Self {
        Self::with_params(n, cfg.params)
    }

    fn run_with_visit<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        visit: F,
    ) -> (usize, u64) {
        self.run_with(g, source, visit)
    }

    fn last_stats(&self) -> TraversalStats {
        self.stats
    }

    fn set_level_recording(&mut self, on: bool) {
        self.record_levels = on;
        if !on {
            self.level_log.clear();
        }
    }

    fn level_sizes(&self) -> &[u64] {
        &self.level_log
    }
}

/// Serial direction-optimizing BFS with reusable scratch.
///
/// Produces exactly the same distance array and `(reached, Σ d)` pair as
/// [`Bfs`] — only the visit order within a level differs (bottom-up levels
/// visit in ascending vertex id). Reset between runs is `O(visited)` via
/// the touched list, like [`Bfs`].
///
/// [`Bfs`]: super::bfs::Bfs
#[derive(Clone, Debug)]
pub struct HybridBfs {
    dist: Vec<Dist>,
    touched: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    bits: FrontierBitmap,
    next_bits: FrontierBitmap,
    params: HybridParams,
    stats: TraversalStats,
    record_levels: bool,
    level_log: Vec<u64>,
}

impl HybridBfs {
    /// Scratch for graphs with up to `n` vertices, default parameters.
    pub fn new(n: usize) -> Self {
        Self::with_params(n, HybridParams::default())
    }

    /// Scratch with explicit switching parameters.
    pub fn with_params(n: usize, params: HybridParams) -> Self {
        Self {
            dist: vec![INFINITE_DIST; n],
            touched: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            bits: FrontierBitmap::new(n),
            next_bits: FrontierBitmap::new(n),
            params,
            stats: TraversalStats::default(),
            record_levels: false,
            level_log: Vec::new(),
        }
    }

    /// The switching parameters in effect.
    pub fn params(&self) -> HybridParams {
        self.params
    }

    /// Heuristic statistics from the most recent run.
    pub fn last_stats(&self) -> TraversalStats {
        self.stats
    }

    /// Grows the scratch space if the graph is larger than at construction.
    pub fn resize(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DIST);
        }
        self.bits.resize(n);
        self.next_bits.resize(n);
    }

    /// Runs BFS from `source`, returning the distance array
    /// (`INFINITE_DIST` for unreachable vertices).
    pub fn run(&mut self, g: &CsrGraph, source: NodeId) -> &[Dist] {
        self.run_with(g, source, |_, _| {});
        &self.dist[..g.num_nodes()]
    }

    /// Runs BFS from `source`, invoking `visit(v, d)` for every reached
    /// vertex. Returns `(reached, Σ d)`. See [`Bfs::run_with`] for the
    /// contract; the only difference is visit order within a level.
    ///
    /// [`Bfs::run_with`]: super::bfs::Bfs::run_with
    pub fn run_with<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        mut visit: F,
    ) -> (usize, u64) {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.resize(n);
        for &v in &self.touched {
            self.dist[v as usize] = INFINITE_DIST;
        }
        self.touched.clear();

        self.dist[source as usize] = 0;
        self.touched.push(source);
        visit(source, 0);
        self.frontier.clear();
        self.frontier.push(source);

        let mut reached = 1usize;
        let mut sum = 0u64;
        let mut level: Dist = 0;
        let mut bottom_up = false;
        // Heuristic state: m_f = arcs out of the current frontier,
        // m_u = arcs out of still-unvisited vertices, n_f = frontier size.
        let mut m_f = g.degree(source) as u64;
        let mut m_u = g.num_arcs() as u64 - m_f;
        let mut n_f = 1usize;
        // Beamer's switch conditions are gated on the frontier's trend:
        // only go bottom-up while it grows (the explosive middle levels)
        // and only come back once it shrinks. Without the gate the narrow
        // tail of high-diameter graphs (road class) flips to bottom-up —
        // whose per-level cost is Θ(n) — and BFS degrades to Θ(n·levels).
        let mut growing = true;
        self.stats = TraversalStats::default();
        self.level_log.clear();

        while n_f > 0 {
            level += 1;
            if !bottom_up {
                if growing && m_f as f64 > m_u as f64 / self.params.alpha {
                    self.bits.fill_from(&self.frontier);
                    bottom_up = true;
                    self.stats.direction_switches += 1;
                }
            } else if !growing && (n_f as f64) < n as f64 / self.params.beta {
                self.frontier.clear();
                self.frontier.extend(self.bits.iter_set());
                bottom_up = false;
                self.stats.direction_switches += 1;
            }
            self.stats.level(bottom_up, n_f);
            if self.record_levels {
                self.level_log.push(n_f as u64);
            }

            let mut new_nf = 0usize;
            let mut new_mf = 0u64;
            if bottom_up {
                self.next_bits.clear();
                for u in 0..n as NodeId {
                    if self.dist[u as usize] != INFINITE_DIST {
                        continue;
                    }
                    for &w in g.neighbors(u) {
                        if self.bits.test(w) {
                            self.dist[u as usize] = level;
                            self.touched.push(u);
                            self.next_bits.set(u);
                            visit(u, level);
                            let deg = g.degree(u) as u64;
                            new_mf += deg;
                            m_u -= deg;
                            new_nf += 1;
                            break;
                        }
                    }
                }
                std::mem::swap(&mut self.bits, &mut self.next_bits);
            } else {
                // Move the frontier out so the loop can mutate the other
                // scratch fields; its buffer becomes the next `next`.
                let frontier = std::mem::take(&mut self.frontier);
                self.next.clear();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        if self.dist[v as usize] == INFINITE_DIST {
                            self.dist[v as usize] = level;
                            self.touched.push(v);
                            self.next.push(v);
                            visit(v, level);
                            let deg = g.degree(v) as u64;
                            new_mf += deg;
                            m_u -= deg;
                            new_nf += 1;
                        }
                    }
                }
                self.frontier = std::mem::replace(&mut self.next, frontier);
            }

            growing = new_nf >= n_f;
            n_f = new_nf;
            m_f = new_mf;
            reached += new_nf;
            sum += new_nf as u64 * level as u64;
        }
        (reached, sum)
    }

    /// Distance array from the most recent run.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// Mutable distance array — same caveat as [`Bfs::distances_mut`]:
    /// entries outside the visited set must be restored to
    /// `INFINITE_DIST` before the next run.
    ///
    /// [`Bfs::distances_mut`]: super::bfs::Bfs::distances_mut
    pub fn distances_mut(&mut self) -> &mut [Dist] {
        &mut self.dist
    }
}

/// Splits `0..len` into roughly `parts` contiguous ranges of at least
/// `min_chunk` items (the last may be shorter). Shared with the MS-BFS
/// kernel's chunk-parallel sweep.
pub(super) fn chunk_ranges(len: usize, parts: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(parts.max(1)).max(min_chunk.max(1));
    (0..len.div_ceil(chunk))
        .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
        .collect()
}

/// Frontier-parallel, level-synchronous direction-optimizing BFS.
///
/// One traversal spreads each level across the rayon pool: top-down levels
/// claim vertices with a `compare_exchange` on an atomic view of the
/// distance array; bottom-up levels partition the vertex range and publish
/// discoveries into the next-frontier bitmap with `fetch_or`. Use it when
/// a call has fewer sources than threads — the scheduler in
/// [`crate::traversal::par_bfs_accumulate_ctl_with`] does this selection
/// automatically.
///
/// [`RunControl`] is consulted once per level (not per source as in the
/// source-parallel drivers), so a deadline interrupts a long traversal
/// mid-flight; callers discard the partial distance array to keep the
/// published results sound.
pub struct ParFrontierBfs {
    dist: Vec<Dist>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    bits: FrontierBitmap,
    next_bits: FrontierBitmap,
    params: HybridParams,
    stats: TraversalStats,
}

impl ParFrontierBfs {
    /// Scratch for graphs with up to `n` vertices, default parameters.
    pub fn new(n: usize) -> Self {
        Self::with_params(n, HybridParams::default())
    }

    /// Scratch with explicit switching parameters.
    pub fn with_params(n: usize, params: HybridParams) -> Self {
        Self {
            dist: vec![INFINITE_DIST; n],
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            bits: FrontierBitmap::new(n),
            next_bits: FrontierBitmap::new(n),
            params,
            stats: TraversalStats::default(),
        }
    }

    /// Grows the scratch space if the graph is larger than at construction.
    pub fn resize(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DIST);
        }
        self.bits.resize(n);
        self.next_bits.resize(n);
    }

    /// Heuristic statistics from the most recent run (partial after an
    /// interrupted run: the completed levels only).
    pub fn last_stats(&self) -> TraversalStats {
        self.stats
    }

    /// Uncontrolled convenience wrapper around [`ParFrontierBfs::run_ctl`].
    pub fn run(&mut self, g: &CsrGraph, source: NodeId) -> (usize, u64) {
        self.run_ctl(g, source, &RunControl::new())
            .expect("unbounded control cannot interrupt")
    }

    /// Runs one frontier-parallel BFS from `source`, checking `ctl` before
    /// every level. Returns `(reached, Σ d)` on completion; on interruption
    /// returns the cause, and the distance array is partial (valid for the
    /// completed levels only) — callers must not publish it.
    pub fn run_ctl(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        ctl: &RunControl,
    ) -> Result<(usize, u64), RunOutcome> {
        self.run_ctl_rec(g, source, ctl, &NullRecorder)
    }

    /// [`ParFrontierBfs::run_ctl`] with per-level telemetry: each level
    /// contributes a [`Metric::FrontierSize`] and [`Metric::LevelNanos`]
    /// observation (and a `bfs.level` trace span when tracing) to `rec`.
    /// With a disabled recorder the level loop reads no clock — this is
    /// exactly `run_ctl`.
    pub fn run_ctl_rec<R: Recorder>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        ctl: &RunControl,
        rec: &R,
    ) -> Result<(usize, u64), RunOutcome> {
        let n = g.num_nodes();
        debug_assert!((source as usize) < n);
        self.resize(n);
        // Whole-array reset: a frontier-parallel traversal is for
        // whole-graph BFS, where O(n) reset is already amortised.
        self.dist[..n].fill(INFINITE_DIST);
        self.dist[source as usize] = 0;
        self.frontier.clear();
        self.frontier.push(source);

        let mut reached = 1usize;
        let mut sum = 0u64;
        let mut level: Dist = 0;
        let mut bottom_up = false;
        let mut m_f = g.degree(source) as u64;
        let mut m_u = g.num_arcs() as u64 - m_f;
        let mut n_f = 1usize;
        // Same trend gate as [`HybridBfs::run_with`]: direction switches
        // only fire while the frontier grows (→ bottom-up) or shrinks
        // (→ back to top-down).
        let mut growing = true;
        let threads = rayon::current_num_threads();
        self.stats = TraversalStats::default();

        while n_f > 0 {
            if let Some(cause) = ctl.should_stop() {
                return Err(cause);
            }
            // `bfs.level` failpoint: panic-like kinds unwind to the driver's
            // per-source `catch_unwind`; deadline-expire surfaces through the
            // `should_stop` above on the next level.
            match ctl.fault_apply(FaultSite::BfsLevel, u64::from(level)) {
                Some(FaultKind::Panic) => {
                    panic!("injected worker panic (bfs.level) at level {level}")
                }
                Some(FaultKind::IoError) => {
                    panic!("injected i/o error (bfs.level) at level {level}")
                }
                _ => {}
            }
            let level_start = if rec.enabled() { Some(Instant::now()) } else { None };
            level += 1;
            if !bottom_up {
                if growing && m_f as f64 > m_u as f64 / self.params.alpha {
                    self.bits.fill_from(&self.frontier);
                    bottom_up = true;
                    self.stats.direction_switches += 1;
                }
            } else if !growing && (n_f as f64) < n as f64 / self.params.beta {
                self.frontier.clear();
                self.frontier.extend(self.bits.iter_set());
                bottom_up = false;
                self.stats.direction_switches += 1;
            }
            self.stats.level(bottom_up, n_f);

            let (new_nf, new_mf) = if bottom_up {
                self.step_bottom_up(g, level, threads)
            } else {
                self.step_top_down(g, level, threads)
            };
            if let Some(start) = level_start {
                let end = Instant::now();
                rec.observe(Metric::FrontierSize, n_f as u64);
                rec.observe(Metric::LevelNanos, end.duration_since(start).as_nanos() as u64);
                if rec.trace_enabled() {
                    rec.trace_span("bfs.level", start, end);
                }
            }
            m_u -= new_mf;
            m_f = new_mf;
            growing = new_nf >= n_f;
            n_f = new_nf;
            reached += new_nf;
            sum += new_nf as u64 * level as u64;
        }
        Ok((reached, sum))
    }

    /// Parallel top-down expansion of one level. Frontier chunks race to
    /// claim unvisited vertices via CAS on the atomic distance view; each
    /// vertex is won by exactly one worker, so per-chunk discovery lists
    /// concatenate into a duplicate-free next frontier.
    fn step_top_down(&mut self, g: &CsrGraph, level: Dist, threads: usize) -> (usize, u64) {
        let n = g.num_nodes();
        let Self { dist, frontier, next, .. } = self;
        let dist_a = atomic_view_u32(&mut dist[..n]);
        let frontier = &*frontier;
        let ranges = chunk_ranges(frontier.len(), threads * 4, 64);
        let parts: Vec<(Vec<NodeId>, u64)> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local: Vec<NodeId> = Vec::new();
                let mut lmf = 0u64;
                for &u in &frontier[lo..hi] {
                    for &v in g.neighbors(u) {
                        let slot = &dist_a[v as usize];
                        if slot.load(Ordering::Relaxed) == INFINITE_DIST
                            && slot
                                .compare_exchange(
                                    INFINITE_DIST,
                                    level,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            local.push(v);
                            lmf += g.degree(v) as u64;
                        }
                    }
                }
                (local, lmf)
            })
            .collect();

        next.clear();
        let mut mf = 0u64;
        for (local, lmf) in parts {
            next.extend_from_slice(&local);
            mf += lmf;
        }
        std::mem::swap(&mut self.frontier, &mut self.next);
        (self.frontier.len(), mf)
    }

    /// Parallel bottom-up expansion of one level. The vertex range is
    /// partitioned into disjoint chunks (each vertex written by exactly one
    /// worker); discoveries go into the next-frontier bitmap via `fetch_or`
    /// since neighbouring chunks may share a 64-bit word.
    fn step_bottom_up(&mut self, g: &CsrGraph, level: Dist, threads: usize) -> (usize, u64) {
        let n = g.num_nodes();
        let Self { dist, bits, next_bits, .. } = self;
        next_bits.clear();
        let dist_a = atomic_view_u32(&mut dist[..n]);
        let next_a = next_bits.atomic_words();
        let front = &*bits;
        let ranges = chunk_ranges(n, threads * 4, 512);
        let parts: Vec<(usize, u64)> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut cnt = 0usize;
                let mut lmf = 0u64;
                for u in lo..hi {
                    if dist_a[u].load(Ordering::Relaxed) != INFINITE_DIST {
                        continue;
                    }
                    for &w in g.neighbors(u as NodeId) {
                        if front.test(w) {
                            dist_a[u].store(level, Ordering::Relaxed);
                            next_a[u / 64].fetch_or(1u64 << (u % 64), Ordering::Relaxed);
                            cnt += 1;
                            lmf += g.degree(u as NodeId) as u64;
                            break;
                        }
                    }
                }
                (cnt, lmf)
            })
            .collect();

        std::mem::swap(&mut self.bits, &mut self.next_bits);
        let nf = parts.iter().map(|p| p.0).sum();
        let mf = parts.iter().map(|p| p.1).sum();
        (nf, mf)
    }

    /// Distance array from the most recent run. Only meaningful when the
    /// run returned `Ok` — after an interrupted run it is partial.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, gnm_random_connected, path_graph, star_graph};
    use crate::traversal::bfs_distances;
    use crate::GraphBuilder;

    fn assert_kernels_agree(g: &CsrGraph, source: NodeId, params: HybridParams) {
        let n = g.num_nodes();
        let expect = bfs_distances(g, source);
        let expect_pair = {
            let mut b = super::super::bfs::Bfs::new(n);
            b.run_with(g, source, |_, _| {})
        };

        let mut hy = HybridBfs::with_params(n, params);
        let pair = hy.run_with(g, source, |_, _| {});
        assert_eq!(&hy.distances()[..n], &expect[..], "hybrid distances");
        assert_eq!(pair, expect_pair, "hybrid (reached, sum)");

        let mut pf = ParFrontierBfs::with_params(n, params);
        let ppair = pf.run(g, source);
        assert_eq!(&pf.distances()[..n], &expect[..], "frontier-parallel distances");
        assert_eq!(ppair, expect_pair, "frontier-parallel (reached, sum)");
    }

    #[test]
    fn agrees_on_structured_graphs() {
        for params in [
            HybridParams::default(),
            HybridParams::always_top_down(),
            HybridParams::eager_bottom_up(),
        ] {
            assert_kernels_agree(&path_graph(40), 3, params);
            assert_kernels_agree(&complete_graph(17), 5, params);
            assert_kernels_agree(&star_graph(30), 0, params);
            assert_kernels_agree(&star_graph(30), 7, params);
        }
    }

    #[test]
    fn agrees_on_random_graphs_every_source() {
        let g = gnm_random_connected(60, 150, 42);
        for s in 0..60u32 {
            assert_kernels_agree(&g, s, HybridParams::default());
        }
    }

    #[test]
    fn agrees_on_disconnected_graphs() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        for params in [HybridParams::default(), HybridParams::eager_bottom_up()] {
            assert_kernels_agree(&g, 0, params);
            assert_kernels_agree(&g, 3, params);
        }
    }

    #[test]
    fn visit_callback_covers_each_vertex_once() {
        let g = complete_graph(12);
        let mut hy = HybridBfs::with_params(12, HybridParams::eager_bottom_up());
        let mut seen = [0u32; 12];
        hy.run_with(&g, 4, |v, d| {
            seen[v as usize] += 1;
            assert_eq!(d, u32::from(v != 4));
        });
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let g1 = complete_graph(20);
        let g2 = path_graph(50);
        let mut hy = HybridBfs::new(20);
        hy.run(&g1, 0);
        assert_eq!(hy.run(&g2, 0), &bfs_distances(&g2, 0)[..]);
        assert_eq!(hy.run(&g1, 3), &bfs_distances(&g1, 3)[..]);

        let mut pf = ParFrontierBfs::new(20);
        pf.run(&g1, 0);
        pf.run(&g2, 0);
        assert_eq!(&pf.distances()[..50], &bfs_distances(&g2, 0)[..]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::new(1).build();
        let mut hy = HybridBfs::new(1);
        assert_eq!(hy.run_with(&g, 0, |_, _| {}), (1, 0));
        let mut pf = ParFrontierBfs::new(1);
        assert_eq!(pf.run(&g, 0), (1, 0));
    }

    #[test]
    fn frontier_parallel_expired_deadline_interrupts() {
        let g = gnm_random_connected(50, 100, 7);
        let mut pf = ParFrontierBfs::new(50);
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        assert_eq!(pf.run_ctl(&g, 0, &ctl), Err(RunOutcome::Deadline));

        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        assert_eq!(pf.run_ctl(&g, 0, &ctl), Err(RunOutcome::Cancelled));
    }

    #[test]
    fn kernel_parsing_and_names() {
        assert_eq!("auto".parse::<Kernel>().unwrap(), Kernel::Auto);
        assert_eq!("topdown".parse::<Kernel>().unwrap(), Kernel::TopDown);
        assert_eq!("top-down".parse::<Kernel>().unwrap(), Kernel::TopDown);
        assert_eq!("HYBRID".parse::<Kernel>().unwrap(), Kernel::Hybrid);
        assert_eq!("msbfs".parse::<Kernel>().unwrap(), Kernel::MsBfs);
        assert_eq!("ms-bfs".parse::<Kernel>().unwrap(), Kernel::MsBfs);
        assert!("dfs".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Auto);
        assert_eq!(Kernel::Hybrid.name(), "hybrid");
        assert_eq!(Kernel::MsBfs.name(), "msbfs");
    }

    /// Pins the scheduler's selection table. The arc floor is the
    /// regression fix for BENCH_kernels.json showing frontier-parallel
    /// 5–6× *slower* than the serial hybrid on every bench graph (all
    /// under ~260 k arcs): per-level fork-join overhead swamps the work.
    #[test]
    fn frontier_parallel_selection_rule() {
        const BIG: usize = FRONTIER_PARALLEL_MIN_ARCS;
        let auto = KernelConfig::default();
        assert!(auto.frontier_parallel_applies(1, BIG, 4));
        assert!(auto.frontier_parallel_applies(3, BIG, 4));
        assert!(!auto.frontier_parallel_applies(4, BIG, 4));
        assert!(!auto.frontier_parallel_applies(1, BIG, 1));
        // The regression: small graphs must never pick frontier-parallel,
        // whatever the source/thread ratio. 96 k arcs ≈ dense-gnm-3000,
        // 262 k ≈ complete-512 — the largest bench graphs where it loses.
        assert!(!auto.frontier_parallel_applies(3, 96_000, 4));
        assert!(!auto.frontier_parallel_applies(1, 262_144, 8));
        assert!(!auto.frontier_parallel_applies(1, BIG - 1, 4));
        let td = KernelConfig::new(Kernel::TopDown);
        assert!(!td.frontier_parallel_applies(1, BIG, 8));
        // MsBfs batches instead of going frontier-parallel.
        let ms = KernelConfig::new(Kernel::MsBfs);
        assert!(!ms.frontier_parallel_applies(1, BIG, 8));
    }

    #[test]
    fn msbfs_selection_rule() {
        let auto = KernelConfig::default();
        assert!(auto.msbfs_applies(64, 4));
        assert!(auto.msbfs_applies(1000, 2));
        assert!(!auto.msbfs_applies(63, 4), "auto needs a full batch");
        assert!(!auto.msbfs_applies(64, 1), "auto needs threads");
        // Explicit msbfs always batches, even single-source/single-thread.
        let ms = KernelConfig::new(Kernel::MsBfs);
        assert!(ms.msbfs_applies(1, 1));
        assert!(ms.msbfs_applies(65, 8));
        assert!(!ms.msbfs_applies(0, 8));
        for k in [Kernel::TopDown, Kernel::Hybrid] {
            assert!(!KernelConfig::new(k).msbfs_applies(1000, 8), "{k:?}");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert!(chunk_ranges(0, 4, 16).is_empty());
        for (len, parts, min) in [(1, 4, 16), (100, 4, 16), (1000, 3, 1), (65, 64, 1)] {
            let rs = chunk_ranges(len, parts, min);
            assert_eq!(rs[0].0, 0);
            assert_eq!(rs.last().unwrap().1, len);
            for w in rs.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn traversal_stats_reflect_heuristic() {
        // Path graph under always-top-down: n-1 levels, never bottom-up,
        // every frontier has exactly one vertex.
        let g = path_graph(40);
        let mut hy = HybridBfs::with_params(40, HybridParams::always_top_down());
        hy.run(&g, 0);
        let s = hy.last_stats();
        assert_eq!(s.levels, 40);
        assert_eq!(s.bottom_up_levels, 0);
        assert_eq!(s.direction_switches, 0);
        assert_eq!(s.peak_frontier, 1);

        // Complete graph under eager bottom-up: switches once, runs the
        // explosive level bottom-up.
        let g = complete_graph(16);
        let mut hy = HybridBfs::with_params(16, HybridParams::eager_bottom_up());
        hy.run(&g, 0);
        let s = hy.last_stats();
        assert!(s.bottom_up_levels >= 1);
        assert_eq!(s.direction_switches, 1);

        // The frontier-parallel engine reports the same shape.
        let mut pf = ParFrontierBfs::with_params(16, HybridParams::eager_bottom_up());
        pf.run(&g, 0);
        assert_eq!(pf.last_stats(), s);

        // Stats reset between runs.
        let g = path_graph(10);
        let mut hy = HybridBfs::with_params(10, HybridParams::always_top_down());
        hy.run(&g, 0);
        hy.run(&g, 9);
        assert_eq!(hy.last_stats().levels, 10);
    }

    #[test]
    fn recorded_run_matches_plain_and_observes_levels() {
        use crate::telemetry::RunRecorder;
        let g = gnm_random_connected(60, 150, 42);
        let mut plain = ParFrontierBfs::new(60);
        let expect = plain.run(&g, 0);

        let rec = RunRecorder::with_trace();
        let mut pf = ParFrontierBfs::new(60);
        let got = pf.run_ctl_rec(&g, 0, &RunControl::new(), &rec).unwrap();
        assert_eq!(got, expect, "recorder must not change results");
        assert_eq!(&pf.distances()[..60], &plain.distances()[..60]);
        let levels = pf.last_stats().levels;
        assert_eq!(rec.histogram(Metric::FrontierSize).count, levels);
        assert_eq!(rec.histogram(Metric::LevelNanos).count, levels);
        assert_eq!(rec.histogram(Metric::FrontierSize).max, pf.last_stats().peak_frontier);
        let traced = rec.trace_events().iter().filter(|e| e.name == "bfs.level").count();
        assert_eq!(traced as u64, levels);
    }

    #[test]
    fn hybrid_level_log_follows_recording_flag() {
        let g = gnm_random_connected(60, 150, 42);
        let mut hy = HybridBfs::new(60);
        hy.run(&g, 0);
        assert!(hy.level_sizes().is_empty(), "logging is off by default");
        hy.set_level_recording(true);
        hy.run(&g, 0);
        let sizes = hy.level_sizes().to_vec();
        assert_eq!(sizes.len() as u64, hy.last_stats().levels);
        assert_eq!(sizes.iter().copied().max().unwrap(), hy.last_stats().peak_frontier);
        hy.set_level_recording(false);
        assert!(hy.level_sizes().is_empty());

        // The queue-based kernel has no level structure and reports none.
        let mut td = super::super::bfs::Bfs::new(60);
        td.set_level_recording(true);
        SerialBfsKernel::run_with_visit(&mut td, &g, 0, |_, _| {});
        assert!(td.level_sizes().is_empty());
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = KernelConfig { kernel: Kernel::Hybrid, params: HybridParams { alpha: 9.5, beta: 2.0 } };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: KernelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
