//! Bit-parallel multi-source BFS (Then et al., "The More the Merrier:
//! Efficient Multi-Source Graph Traversal").
//!
//! A batch of up to 64 sources traverses the graph *together*: every
//! vertex carries one machine word per role — `seen` (sources that have
//! reached it), `frontier` (sources reaching it at the current level) and
//! `next` (sources reaching it at the next level) — and one arc scan
//! advances all sources at once with two bit operations:
//!
//! ```text
//! d        = frontier[u] & !seen[v]   // sources reaching v through u
//! next[v] |= d
//! ```
//!
//! Because OR is idempotent and commutative, the per-source distances are
//! exactly those of 64 independent BFS runs — the batch only amortizes the
//! memory traffic (each arc is scanned once per *batch* per level instead
//! of once per *source*). Farness needs only `(reached, Σ d)` per source,
//! tallied at level-finalize time by iterating the newly-seen bits.
//!
//! Two sweep variants share the level loop:
//! * serial — one thread scans the whole active list; used when batches
//!   themselves run in parallel (many batches, the common estimator case);
//! * chunk-parallel — the active list is split with
//!   [`chunk_ranges`](super::hybrid) and workers publish into an atomic
//!   view of the `next` words with `fetch_or` (the same storage idiom as
//!   [`FrontierBitmap`](super::frontier::FrontierBitmap)); used when a
//!   call has few batches, so within-batch parallelism is the only
//!   parallelism available. Both variants produce bit-identical results:
//!   the OR/ADD operations commute, only discovery *order* differs.
//!
//! [`RunControl`] is consulted once per level, like the frontier-parallel
//! engine: an interrupted batch returns `Err` and the caller publishes
//! nothing for it, preserving the publish-after-complete partial-soundness
//! contract at batch granularity.

use super::hybrid::{chunk_ranges, TraversalStats, MSBFS_BATCH};
use super::parallel::atomic_view;
use crate::control::{FaultKind, FaultSite, RunControl, RunOutcome};
use crate::telemetry::{Metric, NullRecorder, Recorder};
use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Reusable scratch for bit-parallel multi-source BFS batches.
///
/// Reset between runs is `O(touched)`; a panic that unwinds out of a run
/// (injected faults) leaves the scratch dirty, and the next run's reset
/// restores every invariant before touching the new batch.
pub struct MsBfs {
    seen: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    /// Vertices with a nonzero `frontier` word (the current level).
    active: Vec<NodeId>,
    /// Vertices whose `next` word went zero → nonzero this level.
    candidates: Vec<NodeId>,
    /// Vertices with a nonzero `seen` word — the reset list.
    touched: Vec<NodeId>,
    reached: [usize; MSBFS_BATCH],
    sums: [u64; MSBFS_BATCH],
    record_rows: bool,
    /// Per-source distance rows (`row_stride` entries each), maintained
    /// only under [`MsBfs::set_row_recording`].
    dist: Vec<Dist>,
    row_stride: usize,
    stats: TraversalStats,
}

impl MsBfs {
    /// Scratch for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            seen: vec![0; n],
            frontier: vec![0; n],
            next: vec![0; n],
            active: Vec::new(),
            candidates: Vec::new(),
            touched: Vec::new(),
            reached: [0; MSBFS_BATCH],
            sums: [0; MSBFS_BATCH],
            record_rows: false,
            dist: Vec::new(),
            row_stride: 0,
            stats: TraversalStats::default(),
        }
    }

    /// Grows the scratch space if the graph is larger than at construction.
    pub fn resize(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.frontier.resize(n, 0);
            self.next.resize(n, 0);
        }
    }

    /// Enables per-source distance rows ([`MsBfs::dist_row`]), at
    /// `64 × n × 4` bytes of scratch. Off by default — the farness drivers
    /// need only the per-source `(reached, Σ d)` tallies; the cumulative
    /// estimator's block tasks need the full rows for record replay.
    pub fn set_row_recording(&mut self, on: bool) {
        self.record_rows = on;
    }

    /// Distance row of batch slot `i` from the most recent completed run:
    /// `INFINITE_DIST` marks unreached vertices. Meaningless unless row
    /// recording was on.
    pub fn dist_row(&self, i: usize) -> &[Dist] {
        &self.dist[i * self.row_stride..(i + 1) * self.row_stride]
    }

    /// Heuristic-shaped statistics of the most recent run: `levels` counts
    /// sweeps, `peak_frontier` the widest active list. MS-BFS has no
    /// direction heuristic, so the bottom-up fields stay zero.
    pub fn last_stats(&self) -> TraversalStats {
        self.stats
    }

    /// Restores every scratch invariant, whatever state the previous run
    /// left behind (completed, interrupted, or unwound by a panic).
    fn reset_scratch(&mut self) {
        for &v in &self.touched {
            let vi = v as usize;
            let mut bits = self.seen[vi];
            self.seen[vi] = 0;
            if self.row_stride != 0 {
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.dist[i * self.row_stride + vi] = INFINITE_DIST;
                }
            }
        }
        for &u in &self.active {
            self.frontier[u as usize] = 0;
            self.next[u as usize] = 0;
        }
        for &v in &self.candidates {
            self.frontier[v as usize] = 0;
            self.next[v as usize] = 0;
        }
        self.touched.clear();
        self.active.clear();
        self.candidates.clear();
    }

    /// Uncontrolled, unrecorded batch run — tests and oracles.
    pub fn run_batch(&mut self, g: &CsrGraph, sources: &[NodeId]) -> Vec<(usize, u64)> {
        self.run_batch_ctl_rec(g, sources, &RunControl::new(), false, &NullRecorder, |_, _, _| {})
            .expect("unbounded control cannot interrupt")
    }

    /// Runs one batch of up to [`MSBFS_BATCH`] sources, checking `ctl`
    /// once per level. Returns the per-source `(reached, Σ d)` rows in
    /// input order, or the interruption cause — in which case the caller
    /// must publish nothing for this batch (the tallies are partial).
    ///
    /// `visit(v, bits, d)` fires once per `(vertex, level)` discovery with
    /// the word of batch slots that reached `v` at distance `d` (sources
    /// fire at distance 0). Under `parallel_sweep` the arc scan is
    /// chunk-parallel but `visit` still runs serially at level finalize;
    /// discovery *order* is nondeterministic across chunks, so callers
    /// must only perform commutative accumulation.
    ///
    /// Per sweep, an enabled recorder observes [`Metric::BatchOccupancy`]
    /// (sources with a live frontier), [`Metric::SweepNanos`] and
    /// [`Metric::FrontierSize`], plus a `bfs.sweep` trace span.
    pub fn run_batch_ctl_rec<R: Recorder, F: FnMut(NodeId, u64, Dist)>(
        &mut self,
        g: &CsrGraph,
        sources: &[NodeId],
        ctl: &RunControl,
        parallel_sweep: bool,
        rec: &R,
        mut visit: F,
    ) -> Result<Vec<(usize, u64)>, RunOutcome> {
        assert!(sources.len() <= MSBFS_BATCH, "batch wider than one word");
        let n = g.num_nodes();
        self.resize(n);
        self.reset_scratch();
        if self.record_rows {
            if self.dist.len() < MSBFS_BATCH * n {
                self.dist.resize(MSBFS_BATCH * n, INFINITE_DIST);
            }
            self.row_stride = n;
        } else {
            self.row_stride = 0;
        }
        self.stats = TraversalStats::default();
        if sources.is_empty() {
            return Ok(Vec::new());
        }

        for (i, &s) in sources.iter().enumerate() {
            debug_assert!((s as usize) < n);
            let si = s as usize;
            if self.frontier[si] == 0 {
                self.active.push(s);
            }
            if self.seen[si] == 0 {
                self.touched.push(s);
            }
            let bit = 1u64 << i;
            self.seen[si] |= bit;
            self.frontier[si] |= bit;
            self.reached[i] = 1;
            self.sums[i] = 0;
            if self.record_rows {
                self.dist[i * n + si] = 0;
            }
            visit(s, bit, 0);
        }

        let threads = rayon::current_num_threads();
        let mut level: Dist = 0;
        // Sources live in the *next* sweep: at level 0, every batch slot.
        let mut occupancy = sources.len() as u64;
        while !self.active.is_empty() {
            if let Some(cause) = ctl.should_stop() {
                return Err(cause);
            }
            // `bfs.level` failpoint, per sweep — panic-like kinds unwind to
            // the driver's per-batch `catch_unwind`; deadline-expire
            // surfaces through `should_stop` at the next sweep.
            match ctl.fault_apply(FaultSite::BfsLevel, u64::from(level)) {
                Some(FaultKind::Panic) => {
                    panic!("injected worker panic (bfs.level) at level {level}")
                }
                Some(FaultKind::IoError) => {
                    panic!("injected i/o error (bfs.level) at level {level}")
                }
                _ => {}
            }
            let sweep_start = if rec.enabled() { Some(Instant::now()) } else { None };
            level += 1;
            let n_f = self.active.len() as u64;
            self.stats.levels += 1;
            self.stats.peak_frontier = self.stats.peak_frontier.max(n_f);

            if parallel_sweep && threads > 1 {
                self.sweep_parallel(g, threads);
            } else {
                self.sweep_serial(g);
            }

            // Finalize: fold the next-words into seen, tally per-source
            // farness, hand discoveries to the caller, and promote the
            // candidate list to the next active list.
            let mut live = 0u64;
            for ci in 0..self.candidates.len() {
                let v = self.candidates[ci];
                let vi = v as usize;
                let new = self.next[vi];
                // Contributions were masked with `!seen` and `seen` is
                // frozen during the sweep, so `new` is disjoint from it.
                debug_assert_eq!(new & self.seen[vi], 0);
                if self.seen[vi] == 0 {
                    self.touched.push(v);
                }
                self.seen[vi] |= new;
                live |= new;
                let mut bits = new;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.reached[i] += 1;
                    self.sums[i] += u64::from(level);
                    if self.record_rows {
                        self.dist[i * n + vi] = level;
                    }
                }
                visit(v, new, level);
            }
            for &u in &self.active {
                self.frontier[u as usize] = 0;
            }
            for &v in &self.candidates {
                let vi = v as usize;
                self.frontier[vi] = self.next[vi];
                self.next[vi] = 0;
            }
            std::mem::swap(&mut self.active, &mut self.candidates);
            self.candidates.clear();

            if let Some(start) = sweep_start {
                let end = Instant::now();
                rec.observe(Metric::BatchOccupancy, occupancy);
                rec.observe(Metric::FrontierSize, n_f);
                rec.observe(Metric::SweepNanos, end.duration_since(start).as_nanos() as u64);
                if rec.trace_enabled() {
                    rec.trace_span("bfs.sweep", start, end);
                }
            }
            occupancy = u64::from(live.count_ones());
        }

        Ok((0..sources.len()).map(|i| (self.reached[i], self.sums[i])).collect())
    }

    /// One serial arc sweep over the active list.
    fn sweep_serial(&mut self, g: &CsrGraph) {
        let Self { seen, frontier, next, active, candidates, .. } = self;
        for &u in active.iter() {
            let fu = frontier[u as usize];
            for &v in g.neighbors(u) {
                let vi = v as usize;
                let d = fu & !seen[vi];
                if d != 0 {
                    if next[vi] == 0 {
                        candidates.push(v);
                    }
                    next[vi] |= d;
                }
            }
        }
    }

    /// One chunk-parallel arc sweep: active-list chunks publish into an
    /// atomic view of the `next` words with `fetch_or`; the worker whose
    /// OR takes a word from zero to nonzero records the candidate, so the
    /// candidate list stays duplicate-free without coordination.
    fn sweep_parallel(&mut self, g: &CsrGraph, threads: usize) {
        let Self { seen, frontier, next, active, candidates, .. } = self;
        let next_a = atomic_view(next);
        let seen = &*seen;
        let frontier = &*frontier;
        let active = &*active;
        let ranges = chunk_ranges(active.len(), threads * 4, 64);
        let parts: Vec<Vec<NodeId>> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local: Vec<NodeId> = Vec::new();
                for &u in &active[lo..hi] {
                    let fu = frontier[u as usize];
                    for &v in g.neighbors(u) {
                        let vi = v as usize;
                        let d = fu & !seen[vi];
                        if d != 0 && next_a[vi].fetch_or(d, Ordering::Relaxed) == 0 {
                            local.push(v);
                        }
                    }
                }
                local
            })
            .collect();
        for part in parts {
            candidates.extend_from_slice(&part);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, gnm_random_connected, path_graph, star_graph};
    use crate::telemetry::RunRecorder;
    use crate::traversal::bfs_distances;
    use crate::GraphBuilder;

    fn oracle_rows(g: &CsrGraph, sources: &[NodeId]) -> Vec<(usize, u64)> {
        sources
            .iter()
            .map(|&s| {
                let d = bfs_distances(g, s);
                let reached = d.iter().filter(|&&x| x != INFINITE_DIST).count();
                let sum: u64 =
                    d.iter().filter(|&&x| x != INFINITE_DIST).map(|&x| u64::from(x)).sum();
                (reached, sum)
            })
            .collect()
    }

    fn assert_batch_matches(g: &CsrGraph, sources: &[NodeId], parallel: bool) {
        let mut ms = MsBfs::new(g.num_nodes());
        ms.set_row_recording(true);
        let rows = ms
            .run_batch_ctl_rec(g, sources, &RunControl::new(), parallel, &NullRecorder, |_, _, _| {})
            .unwrap();
        assert_eq!(rows, oracle_rows(g, sources), "(reached, Σd) rows");
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(
                ms.dist_row(i),
                &bfs_distances(g, s)[..g.num_nodes()],
                "distance row of source {s} (slot {i})"
            );
        }
    }

    #[test]
    fn matches_serial_bfs_on_structured_graphs() {
        for parallel in [false, true] {
            assert_batch_matches(&path_graph(50), &[0, 7, 49], parallel);
            assert_batch_matches(&complete_graph(17), &(0..17).collect::<Vec<_>>(), parallel);
            assert_batch_matches(&star_graph(40), &[0, 1, 39], parallel);
        }
    }

    #[test]
    fn matches_serial_bfs_on_random_graph_full_batch() {
        let g = gnm_random_connected(200, 420, 9);
        let sources: Vec<NodeId> = (0..MSBFS_BATCH as NodeId).map(|i| i * 3).collect();
        assert_batch_matches(&g, &sources, false);
        assert_batch_matches(&g, &sources, true);
    }

    #[test]
    fn ragged_batches_and_duplicates() {
        let g = gnm_random_connected(90, 150, 3);
        // Ragged (not a multiple of the word width) and duplicated sources:
        // each batch slot behaves as an independent BFS.
        let sources: Vec<NodeId> = vec![5, 5, 17, 88, 17, 0, 42];
        assert_batch_matches(&g, &sources, false);
        assert_batch_matches(&g, &sources, true);
        assert_batch_matches(&g, &[33], false);
    }

    #[test]
    fn disconnected_components_stay_unreached() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let mut ms = MsBfs::new(7);
        ms.set_row_recording(true);
        let rows = ms
            .run_batch_ctl_rec(&g, &[0, 3, 5], &RunControl::new(), false, &NullRecorder, |_, _, _| {})
            .unwrap();
        assert_eq!(rows, vec![(3, 3), (2, 1), (2, 1)]);
        assert_eq!(ms.dist_row(0)[3], INFINITE_DIST);
        assert_eq!(ms.dist_row(1)[0], INFINITE_DIST);
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let g1 = complete_graph(20);
        let g2 = path_graph(40);
        let mut ms = MsBfs::new(20);
        ms.set_row_recording(true);
        ms.run_batch(&g1, &[0, 5]);
        // Bigger graph, different batch width.
        let rows = ms
            .run_batch_ctl_rec(&g2, &[0, 39, 11], &RunControl::new(), false, &NullRecorder, |_, _, _| {})
            .unwrap();
        assert_eq!(rows, oracle_rows(&g2, &[0, 39, 11]));
        assert_eq!(ms.dist_row(0), &bfs_distances(&g2, 0)[..40]);
        // And back, without row recording.
        ms.set_row_recording(false);
        assert_eq!(ms.run_batch(&g1, &[3]), oracle_rows(&g1, &[3]));
    }

    #[test]
    fn interruption_is_clean_and_scratch_recovers() {
        let g = path_graph(60);
        let mut ms = MsBfs::new(60);
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let err = ms.run_batch_ctl_rec(&g, &[0, 30], &ctl, false, &NullRecorder, |_, _, _| {});
        assert_eq!(err, Err(RunOutcome::Deadline));
        // The same scratch must produce correct results afterwards.
        assert_eq!(ms.run_batch(&g, &[0, 30]), oracle_rows(&g, &[0, 30]));

        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        let err = ms.run_batch_ctl_rec(&g, &[5], &ctl, false, &NullRecorder, |_, _, _| {});
        assert_eq!(err, Err(RunOutcome::Cancelled));
    }

    #[test]
    fn visit_reports_each_discovery_once_with_level_tallies() {
        let g = gnm_random_connected(70, 120, 11);
        let sources: Vec<NodeId> = vec![0, 13, 37, 69];
        let mut acc = vec![0u64; 70];
        let mut ms = MsBfs::new(70);
        ms.run_batch_ctl_rec(&g, &sources, &RunControl::new(), false, &NullRecorder, |v, bits, d| {
            acc[v as usize] += u64::from(d) * u64::from(bits.count_ones());
        })
        .unwrap();
        for (v, &got) in acc.iter().enumerate() {
            let expect: u64 =
                sources.iter().map(|&s| u64::from(bfs_distances(&g, s)[v])).sum();
            assert_eq!(got, expect, "vertex {v}");
        }
    }

    #[test]
    fn recorded_sweeps_observe_occupancy_and_nanos() {
        let g = path_graph(30);
        let rec = RunRecorder::with_trace();
        let mut ms = MsBfs::new(30);
        let rows = ms
            .run_batch_ctl_rec(&g, &[0, 29], &RunControl::new(), false, &rec, |_, _, _| {})
            .unwrap();
        assert_eq!(rows, oracle_rows(&g, &[0, 29]));
        let sweeps = ms.last_stats().levels;
        assert!(sweeps >= 29, "a 30-path needs ≥29 sweeps, got {sweeps}");
        assert_eq!(rec.histogram(Metric::SweepNanos).count, sweeps);
        assert_eq!(rec.histogram(Metric::BatchOccupancy).count, sweeps);
        // Both sources stay live until the middle, then... at least the
        // first sweep carries the full batch.
        assert_eq!(rec.histogram(Metric::BatchOccupancy).max, 2);
        let spans = rec.trace_events().iter().filter(|e| e.name == "bfs.sweep").count();
        assert_eq!(spans as u64, sweeps);

        // A disabled recorder changes nothing.
        let mut plain = MsBfs::new(30);
        assert_eq!(plain.run_batch(&g, &[0, 29]), rows);
    }

    #[test]
    fn parallel_and_serial_sweeps_are_bit_identical() {
        let g = gnm_random_connected(150, 400, 21);
        let sources: Vec<NodeId> = (0..48).map(|i| (i * 3) % 150).collect();
        let mut a = MsBfs::new(150);
        let mut b = MsBfs::new(150);
        a.set_row_recording(true);
        b.set_row_recording(true);
        let ra = a
            .run_batch_ctl_rec(&g, &sources, &RunControl::new(), false, &NullRecorder, |_, _, _| {})
            .unwrap();
        let rb = b
            .run_batch_ctl_rec(&g, &sources, &RunControl::new(), true, &NullRecorder, |_, _, _| {})
            .unwrap();
        assert_eq!(ra, rb);
        for i in 0..sources.len() {
            assert_eq!(a.dist_row(i), b.dist_row(i), "slot {i}");
        }
    }
}
