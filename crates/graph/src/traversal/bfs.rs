//! Serial BFS with reusable scratch space.

use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};

/// Reusable BFS state: a distance array and a queue.
///
/// Running many BFS traversals (one per sampled source) dominates the
/// estimator's runtime; reusing the buffers avoids one `O(n)` allocation per
/// source. Reset between runs is `O(visited)`, not `O(n)`, via the touched
/// list.
#[derive(Clone, Debug)]
pub struct Bfs {
    dist: Vec<Dist>,
    queue: Vec<NodeId>,
    touched: Vec<NodeId>,
}

impl Bfs {
    /// Creates scratch space for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![INFINITE_DIST; n],
            queue: Vec::with_capacity(n),
            touched: Vec::with_capacity(n),
        }
    }

    /// Grows the scratch space if the graph is larger than at construction.
    ///
    /// Also reserves queue/touched capacity up front so the first traversal
    /// of a larger graph doesn't reallocate mid-BFS (both can hold up to
    /// `n` entries by the time a run finishes).
    pub fn resize(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DIST);
        }
        if self.queue.capacity() < n {
            self.queue.reserve(n - self.queue.len());
        }
        if self.touched.capacity() < n {
            self.touched.reserve(n - self.touched.len());
        }
    }

    /// Runs BFS from `source`, returning the distance array
    /// (`INFINITE_DIST` for unreachable vertices).
    ///
    /// The returned slice is valid until the next `run`/`run_with` call.
    pub fn run(&mut self, g: &CsrGraph, source: NodeId) -> &[Dist] {
        self.run_with(g, source, |_, _| {});
        &self.dist[..g.num_nodes()]
    }

    /// Runs BFS from `source`, invoking `visit(v, d)` for every reached
    /// vertex `v` at distance `d` (including the source at distance 0).
    ///
    /// Returns `(reached_count, sum_of_distances)` — exactly the quantities
    /// farness accumulation needs, computed inline so callers do not rescan
    /// the distance array.
    pub fn run_with<F: FnMut(NodeId, Dist)>(
        &mut self,
        g: &CsrGraph,
        source: NodeId,
        mut visit: F,
    ) -> (usize, u64) {
        debug_assert!((source as usize) < g.num_nodes());
        self.resize(g.num_nodes());
        // O(previously visited) reset.
        for &v in &self.touched {
            self.dist[v as usize] = INFINITE_DIST;
        }
        self.touched.clear();
        self.queue.clear();

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queue.push(source);
        visit(source, 0);

        let mut head = 0usize;
        let mut reached = 1usize;
        let mut sum = 0u64;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == INFINITE_DIST {
                    let dv = du + 1;
                    self.dist[v as usize] = dv;
                    self.touched.push(v);
                    self.queue.push(v);
                    visit(v, dv);
                    reached += 1;
                    sum += dv as u64;
                }
            }
        }
        (reached, sum)
    }

    /// Distance array from the most recent run.
    pub fn distances(&self) -> &[Dist] {
        &self.dist
    }

    /// Mutable distance array. Callers that write through this (e.g. the
    /// reduction-reconstruction replay) must restore any entry outside the
    /// visited set to `INFINITE_DIST` before the next run, because reset is
    /// tracked through the visited list only.
    pub fn distances_mut(&mut self) -> &mut [Dist] {
        &mut self.dist
    }
}

/// One-shot BFS: allocates fresh scratch, returns an owned distance vector.
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<Dist> {
    let mut bfs = Bfs::new(g.num_nodes());
    bfs.run(g, source);
    bfs.dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn cycle(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
        }
        b.build()
    }

    #[test]
    fn path_distances() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn cycle_distances() {
        let g = cycle(6);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITE_DIST);
        assert_eq!(d[3], INFINITE_DIST);
    }

    #[test]
    fn reuse_resets_state() {
        let g = cycle(5);
        let mut bfs = Bfs::new(5);
        let d0: Vec<_> = bfs.run(&g, 0).to_vec();
        let d3: Vec<_> = bfs.run(&g, 3).to_vec();
        assert_eq!(d0, vec![0, 1, 2, 2, 1]);
        assert_eq!(d3, vec![2, 2, 1, 0, 1]);
    }

    #[test]
    fn run_with_reports_reached_and_sum() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut bfs = Bfs::new(4);
        let (reached, sum) = bfs.run_with(&g, 0, |_, _| {});
        assert_eq!(reached, 4);
        assert_eq!(sum, 1 + 2 + 3);
    }

    #[test]
    fn run_with_visits_every_vertex_once() {
        let g = cycle(7);
        let mut bfs = Bfs::new(7);
        let mut seen = [0u32; 7];
        bfs.run_with(&g, 2, |v, d| {
            seen[v as usize] += 1;
            assert_eq!(d, bfs_distances(&cycle(7), 2)[v as usize]);
        });
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(bfs_distances(&g, 0), vec![0]);
    }

    #[test]
    fn resize_reserves_traversal_capacity() {
        let mut bfs = Bfs::new(0);
        bfs.resize(64);
        assert_eq!(bfs.dist.len(), 64);
        assert!(bfs.queue.capacity() >= 64, "queue capacity reserved");
        assert!(bfs.touched.capacity() >= 64, "touched capacity reserved");
    }

    #[test]
    fn scratch_grows_for_larger_graph() {
        let small = cycle(3);
        let big = cycle(10);
        let mut bfs = Bfs::new(3);
        bfs.run(&small, 0);
        let d = bfs.run(&big, 0).to_vec();
        assert_eq!(d.len(), 10);
        assert_eq!(d[5], 5);
    }
}
