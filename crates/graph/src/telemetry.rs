//! Zero-dependency run telemetry: phase spans, atomic counters and a
//! stable-schema JSON run report.
//!
//! Every layer that makes an invisible runtime decision — the reduction
//! pipeline, the BCT builder, the kernel scheduler, the cumulative engine
//! and the [`RunControl`](crate::control::RunControl) machinery — accepts a
//! `&R: Recorder` and emits counters/spans into it. Two implementations
//! exist:
//!
//! * [`NullRecorder`] — the default. Every method is an empty default
//!   with `enabled() == false`; under static dispatch the calls
//!   monomorphise away, so un-instrumented runs pay nothing.
//! * [`RunRecorder`] — thread-safe collection into atomic counters and a
//!   mutex-guarded span table, snapshotted into a [`RunReport`] whose JSON
//!   schema (`brics.run_report/v1`) is stable across releases.
//!
//! The contract threaded through the estimator stack: attaching a recorder
//! NEVER changes results. Recorders only observe; all instrumented code
//! paths compute bit-identical outputs with either implementation (the
//! `telemetry_invariance` integration test pins this).
//!
//! # Example
//!
//! ```
//! use brics_graph::telemetry::{Counter, Recorder, RunRecorder};
//! use std::time::Duration;
//!
//! let rec = RunRecorder::new();
//! rec.incr(Counter::BfsSources);
//! rec.add(Counter::EdgesScanned, 1_000);
//! rec.span("bfs", Duration::from_millis(5));
//! let report = rec.report();
//! assert_eq!(report.counters["bfs_sources"], 1);
//! assert_eq!(report.schema, "brics.run_report/v1");
//! ```

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of one monotone counter in a run report.
///
/// The discriminant doubles as the index into [`RunRecorder`]'s atomic
/// array; [`Counter::name`] is the stable snake_case key used in the JSON
/// report. Append new counters at the end — the names, not the positions,
/// are the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// BFS runs completed (one per finished source).
    BfsSources,
    /// BFS sources skipped because the run was interrupted first.
    BfsSourcesSkipped,
    /// Vertices reached, summed over all completed BFS runs.
    VerticesVisited,
    /// Arcs scanned, summed over all completed BFS runs. The instrumented
    /// drivers charge `num_arcs()` per completed source — the same
    /// convention the kernels benchmark uses — so `derived.mteps` in the
    /// report is directly comparable with `BENCH_kernels.json`.
    EdgesScanned,
    /// BFS levels expanded, summed over completed sources.
    FrontierLevels,
    /// Levels executed bottom-up by the direction-optimizing kernels.
    BottomUpLevels,
    /// Top-down ↔ bottom-up direction switches across all BFS runs.
    DirectionSwitches,
    /// Largest frontier (vertices) seen by any instrumented BFS level
    /// (max-type: updated with [`Recorder::max`]).
    PeakFrontier,
    /// Source batches dispatched to the serial top-down kernel.
    BatchesTopdown,
    /// Source batches dispatched to the serial direction-optimizing kernel.
    BatchesHybrid,
    /// Source batches dispatched to the frontier-parallel scheduler.
    BatchesFrontierParallel,
    /// Vertices removed by the identical-nodes rule (I).
    ReduceIdenticalRemoved,
    /// Chain-shaped vertices removed alongside identical nodes.
    ReduceIdenticalChainRemoved,
    /// Vertices removed by the redundant-chains rule (C).
    ReduceChainRemoved,
    /// Vertices removed by degree-2 chain contraction.
    ReduceContractedRemoved,
    /// Vertices removed by the redundant-nodes rule (R).
    ReduceRedundantRemoved,
    /// Fixpoint rounds the reduction pipeline executed.
    ReduceRounds,
    /// Vertices surviving reduction.
    ReduceSurvivingNodes,
    /// Edges surviving reduction.
    ReduceSurvivingEdges,
    /// Blocks in the block-cut tree.
    BctBlocks,
    /// Cut vertices in the block-cut tree.
    BctCutVertices,
    /// Phase-A tasks (cut-vertex BFS runs) in the cumulative engine.
    CumulativePhaseATasks,
    /// Phase-B tasks ((block, source) BFS runs) in the cumulative engine.
    CumulativePhaseBTasks,
    /// Record-homing restore rounds in the cumulative engine.
    CumulativeHomingRounds,
    /// Runs truncated by a [`RunControl`](crate::control::RunControl)
    /// deadline.
    DeadlineHits,
    /// Runs truncated by cooperative cancellation.
    Cancellations,
    /// Worker panics isolated by the fault-tolerance layer.
    PanicsIsolated,
    /// Memory-budget admissions that succeeded.
    MemoryAdmissions,
    /// Memory-budget admissions that were rejected.
    MemoryRejections,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 29] = [
        Counter::BfsSources,
        Counter::BfsSourcesSkipped,
        Counter::VerticesVisited,
        Counter::EdgesScanned,
        Counter::FrontierLevels,
        Counter::BottomUpLevels,
        Counter::DirectionSwitches,
        Counter::PeakFrontier,
        Counter::BatchesTopdown,
        Counter::BatchesHybrid,
        Counter::BatchesFrontierParallel,
        Counter::ReduceIdenticalRemoved,
        Counter::ReduceIdenticalChainRemoved,
        Counter::ReduceChainRemoved,
        Counter::ReduceContractedRemoved,
        Counter::ReduceRedundantRemoved,
        Counter::ReduceRounds,
        Counter::ReduceSurvivingNodes,
        Counter::ReduceSurvivingEdges,
        Counter::BctBlocks,
        Counter::BctCutVertices,
        Counter::CumulativePhaseATasks,
        Counter::CumulativePhaseBTasks,
        Counter::CumulativeHomingRounds,
        Counter::DeadlineHits,
        Counter::Cancellations,
        Counter::PanicsIsolated,
        Counter::MemoryAdmissions,
        Counter::MemoryRejections,
    ];

    /// Stable snake_case key for this counter in the JSON report.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::BfsSources => "bfs_sources",
            Counter::BfsSourcesSkipped => "bfs_sources_skipped",
            Counter::VerticesVisited => "vertices_visited",
            Counter::EdgesScanned => "edges_scanned",
            Counter::FrontierLevels => "frontier_levels",
            Counter::BottomUpLevels => "bottom_up_levels",
            Counter::DirectionSwitches => "direction_switches",
            Counter::PeakFrontier => "peak_frontier",
            Counter::BatchesTopdown => "batches_topdown",
            Counter::BatchesHybrid => "batches_hybrid",
            Counter::BatchesFrontierParallel => "batches_frontier_parallel",
            Counter::ReduceIdenticalRemoved => "reduce_identical_removed",
            Counter::ReduceIdenticalChainRemoved => "reduce_identical_chain_removed",
            Counter::ReduceChainRemoved => "reduce_chain_removed",
            Counter::ReduceContractedRemoved => "reduce_contracted_removed",
            Counter::ReduceRedundantRemoved => "reduce_redundant_removed",
            Counter::ReduceRounds => "reduce_rounds",
            Counter::ReduceSurvivingNodes => "reduce_surviving_nodes",
            Counter::ReduceSurvivingEdges => "reduce_surviving_edges",
            Counter::BctBlocks => "bct_blocks",
            Counter::BctCutVertices => "bct_cut_vertices",
            Counter::CumulativePhaseATasks => "cumulative_phase_a_tasks",
            Counter::CumulativePhaseBTasks => "cumulative_phase_b_tasks",
            Counter::CumulativeHomingRounds => "cumulative_homing_rounds",
            Counter::DeadlineHits => "deadline_hits",
            Counter::Cancellations => "cancellations",
            Counter::PanicsIsolated => "panics_isolated",
            Counter::MemoryAdmissions => "memory_admissions",
            Counter::MemoryRejections => "memory_rejections",
        }
    }
}

/// Observer for run telemetry. All methods default to no-ops so
/// [`NullRecorder`] costs nothing; implementors override what they store.
///
/// Call sites that would pay to *prepare* data for a recorder (formatting
/// event details, harvesting per-BFS stats) must guard the preparation
/// behind [`Recorder::enabled`] so disabled recorders skip it entirely.
pub trait Recorder: Sync {
    /// Whether this recorder stores anything. `false` lets call sites
    /// skip preparing data that would be dropped.
    fn enabled(&self) -> bool {
        false
    }

    /// Add `n` to a monotone counter.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Increment a monotone counter by one.
    fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Raise a max-type counter to at least `value`.
    fn max(&self, counter: Counter, value: u64) {
        let _ = (counter, value);
    }

    /// Record one timed execution of the named phase. Repeated spans for
    /// the same phase accumulate (total time + hit count).
    fn span(&self, phase: &'static str, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// Record a discrete event (deadline hit, isolated panic, …).
    fn event(&self, kind: &'static str, detail: &str) {
        let _ = (kind, detail);
    }
}

/// Runs `f`, recording its wall time as a span named `phase` when the
/// recorder is enabled. With a disabled recorder this is exactly `f()` —
/// not even the clock is read.
pub fn timed<R: Recorder, T>(rec: &R, phase: &'static str, f: impl FnOnce() -> T) -> T {
    if !rec.enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    rec.span(phase, start.elapsed());
    out
}

/// Records how a controlled run ended: a no-op for complete runs, a
/// counter bump plus an event for deadline hits and cancellations.
pub fn record_outcome<R: Recorder>(rec: &R, outcome: crate::control::RunOutcome, what: &str) {
    if !rec.enabled() {
        return;
    }
    match outcome {
        crate::control::RunOutcome::Complete => {}
        crate::control::RunOutcome::Deadline => {
            rec.incr(Counter::DeadlineHits);
            rec.event("deadline", what);
        }
        crate::control::RunOutcome::Cancelled => {
            rec.incr(Counter::Cancellations);
            rec.event("cancelled", what);
        }
    }
}

/// Records one isolated worker panic.
pub fn record_panic<R: Recorder>(rec: &R, detail: &str) {
    if !rec.enabled() {
        return;
    }
    rec.incr(Counter::PanicsIsolated);
    rec.event("panic_isolated", detail);
}

/// [`RunControl::admit_memory`](crate::control::RunControl::admit_memory)
/// with the verdict recorded (admission or rejection).
pub fn admit_memory_rec<R: Recorder>(
    ctl: &crate::control::RunControl,
    required_bytes: u64,
    rec: &R,
) -> Result<(), crate::control::MemoryBudgetExceeded> {
    match ctl.admit_memory(required_bytes) {
        Ok(()) => {
            if rec.enabled() {
                rec.incr(Counter::MemoryAdmissions);
            }
            Ok(())
        }
        Err(e) => {
            if rec.enabled() {
                rec.incr(Counter::MemoryRejections);
                rec.event("memory_rejected", &format!("required {required_bytes} bytes"));
            }
            Err(e)
        }
    }
}

/// The no-overhead default recorder: every method is the no-op default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Blanket impl so `&R` works wherever `R: Recorder` is expected.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn add(&self, counter: Counter, n: u64) {
        (**self).add(counter, n);
    }
    fn max(&self, counter: Counter, value: u64) {
        (**self).max(counter, value);
    }
    fn span(&self, phase: &'static str, elapsed: Duration) {
        (**self).span(phase, elapsed);
    }
    fn event(&self, kind: &'static str, detail: &str) {
        (**self).event(kind, detail);
    }
}

/// An optional recorder: `None` behaves exactly like [`NullRecorder`]
/// (every method a no-op, `enabled()` false), `Some(r)` delegates to `r`.
/// Lets call sites choose at runtime whether to record without giving up
/// static dispatch — e.g. a CLI that only builds a [`RunRecorder`] when
/// `--metrics` was passed.
impl<R: Recorder> Recorder for Option<R> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(Recorder::enabled)
    }
    fn add(&self, counter: Counter, n: u64) {
        if let Some(r) = self {
            r.add(counter, n);
        }
    }
    fn max(&self, counter: Counter, value: u64) {
        if let Some(r) = self {
            r.max(counter, value);
        }
    }
    fn span(&self, phase: &'static str, elapsed: Duration) {
        if let Some(r) = self {
            r.span(phase, elapsed);
        }
    }
    fn event(&self, kind: &'static str, detail: &str) {
        if let Some(r) = self {
            r.event(kind, detail);
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

/// Cap on stored events so a pathological run cannot balloon the report.
const MAX_EVENTS: usize = 64;

/// Thread-safe telemetry collector: atomic counters, accumulated phase
/// spans and a bounded event log, snapshotted via [`RunRecorder::report`].
pub struct RunRecorder {
    counters: [AtomicU64; NUM_COUNTERS],
    spans: Mutex<Vec<(&'static str, Duration, u64)>>,
    events: Mutex<Vec<(String, String)>>,
    dropped_events: AtomicU64,
    started: Instant,
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRecorder").finish_non_exhaustive()
    }
}

impl RunRecorder {
    /// Creates an empty recorder; the report's `elapsed_seconds` is
    /// measured from this call.
    pub fn new() -> Self {
        RunRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            dropped_events: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Snapshot everything recorded so far into a serializable report.
    pub fn report(&self) -> RunReport {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), self.counter(c)))
            .collect();
        let phases = self
            .spans
            .lock()
            .expect("telemetry span lock")
            .iter()
            .map(|&(name, total, count)| PhaseSpan {
                name: name.to_string(),
                total_seconds: total.as_secs_f64(),
                count,
            })
            .collect();
        let events = self
            .events
            .lock()
            .expect("telemetry event lock")
            .iter()
            .map(|(kind, detail)| ReportEvent { kind: kind.clone(), detail: detail.clone() })
            .collect();
        let elapsed = self.started.elapsed().as_secs_f64();
        let edges = self.counter(Counter::EdgesScanned) as f64;
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            counters,
            phases,
            events,
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
            derived: DerivedMetrics {
                elapsed_seconds: elapsed,
                mteps: if elapsed > 0.0 { edges / elapsed / 1e6 } else { 0.0 },
            },
        }
    }
}

impl Recorder for RunRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn max(&self, counter: Counter, value: u64) {
        self.counters[counter as usize].fetch_max(value, Ordering::Relaxed);
    }

    fn span(&self, phase: &'static str, elapsed: Duration) {
        let mut spans = self.spans.lock().expect("telemetry span lock");
        match spans.iter_mut().find(|(name, _, _)| *name == phase) {
            Some(entry) => {
                entry.1 += elapsed;
                entry.2 += 1;
            }
            None => spans.push((phase, elapsed, 1)),
        }
    }

    fn event(&self, kind: &'static str, detail: &str) {
        let mut events = self.events.lock().expect("telemetry event lock");
        if events.len() < MAX_EVENTS {
            events.push((kind.to_string(), detail.to_string()));
        } else {
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Accumulated time for one named phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name (insertion order in the report follows first use).
    pub name: String,
    /// Total wall time across all executions of the phase.
    pub total_seconds: f64,
    /// How many times the phase executed.
    pub count: u64,
}

/// One discrete event captured during the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportEvent {
    /// Event kind (`deadline`, `cancelled`, `panic_isolated`, …).
    pub kind: String,
    /// Free-form detail string.
    pub detail: String,
}

/// Metrics derived from the raw counters at snapshot time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Wall time from recorder construction to the snapshot.
    pub elapsed_seconds: f64,
    /// Millions of traversed arcs per second
    /// (`edges_scanned / elapsed_seconds / 1e6`), comparable with the
    /// kernels benchmark because both charge `num_arcs()` per source.
    pub mteps: f64,
}

/// Snapshot of one run's telemetry, serialized with the stable schema tag
/// `brics.run_report/v1`. All counter keys are always present (zeros
/// included) so downstream tooling can rely on the key set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema identifier; always [`RunReport::SCHEMA`].
    pub schema: String,
    /// Every counter by stable name (all keys present, zeros included).
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Accumulated phase spans, in first-use order.
    pub phases: Vec<PhaseSpan>,
    /// Discrete events, capped at an internal limit.
    pub events: Vec<ReportEvent>,
    /// Number of events discarded after the cap was reached.
    pub dropped_events: u64,
    /// Metrics derived from the counters at snapshot time.
    pub derived: DerivedMetrics,
}

impl RunReport {
    /// The stable schema tag emitted in every report.
    pub const SCHEMA: &'static str = "brics.run_report/v1";

    /// Renders a compact human-readable table (for `--metrics-summary`):
    /// phases with times, then all non-zero counters, then events.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("run report\n");
        out.push_str(&format!(
            "  elapsed {:.3}s  mteps {:.2}\n",
            self.derived.elapsed_seconds, self.derived.mteps
        ));
        if !self.phases.is_empty() {
            out.push_str("  phases:\n");
            for p in &self.phases {
                out.push_str(&format!(
                    "    {:<28} {:>10.3} ms  x{}\n",
                    p.name,
                    p.total_seconds * 1e3,
                    p.count
                ));
            }
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|(_, &v)| v != 0).collect();
        if !nonzero.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in nonzero {
                out.push_str(&format!("    {name:<28} {value:>12}\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str("  events:\n");
            for e in &self.events {
                out.push_str(&format!("    {}: {}\n", e.kind, e.detail));
            }
            if self.dropped_events > 0 {
                out.push_str(&format!("    … {} more dropped\n", self.dropped_events));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_match_all() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, NUM_COUNTERS);
    }

    #[test]
    fn null_recorder_is_disabled() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        rec.incr(Counter::BfsSources);
        rec.span("x", Duration::from_secs(1));
        rec.event("k", "d");
    }

    #[test]
    fn run_recorder_accumulates() {
        let rec = RunRecorder::new();
        rec.incr(Counter::BfsSources);
        rec.add(Counter::BfsSources, 2);
        rec.add(Counter::EdgesScanned, 100);
        rec.max(Counter::PeakFrontier, 7);
        rec.max(Counter::PeakFrontier, 3);
        rec.span("bfs", Duration::from_millis(2));
        rec.span("bfs", Duration::from_millis(3));
        rec.span("reduce", Duration::from_millis(1));
        rec.event("deadline", "hit after 2 sources");
        let report = rec.report();
        assert_eq!(report.counters["bfs_sources"], 3);
        assert_eq!(report.counters["edges_scanned"], 100);
        assert_eq!(report.counters["peak_frontier"], 7);
        // Untouched counters still present, zero-valued.
        assert_eq!(report.counters["reduce_rounds"], 0);
        assert_eq!(report.counters.len(), NUM_COUNTERS);
        let bfs = report.phases.iter().find(|p| p.name == "bfs").unwrap();
        assert_eq!(bfs.count, 2);
        assert!((bfs.total_seconds - 0.005).abs() < 1e-9);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.dropped_events, 0);
        assert!(report.derived.elapsed_seconds >= 0.0);
    }

    #[test]
    fn event_cap_drops_with_count() {
        let rec = RunRecorder::new();
        for i in 0..(MAX_EVENTS + 5) {
            rec.event("e", &i.to_string());
        }
        let report = rec.report();
        assert_eq!(report.events.len(), MAX_EVENTS);
        assert_eq!(report.dropped_events, 5);
    }

    #[test]
    fn report_round_trips_through_json() {
        let rec = RunRecorder::new();
        rec.add(Counter::EdgesScanned, 42);
        rec.span("assemble", Duration::from_micros(10));
        let report = rec.report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("brics.run_report/v1"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters["edges_scanned"], 42);
        assert_eq!(back.schema, RunReport::SCHEMA);
    }

    #[test]
    fn summary_table_shows_nonzero_counters_and_phases() {
        let rec = RunRecorder::new();
        rec.add(Counter::BfsSources, 4);
        rec.span("estimate", Duration::from_millis(1));
        rec.event("deadline", "expired");
        let table = rec.report().summary_table();
        assert!(table.contains("bfs_sources"));
        assert!(table.contains("estimate"));
        assert!(table.contains("deadline: expired"));
        assert!(!table.contains("reduce_rounds"));
    }

    #[test]
    fn recorder_by_reference_forwards() {
        fn takes<R: Recorder>(rec: &R) {
            rec.incr(Counter::BfsSources);
        }
        let rec = RunRecorder::new();
        takes(&&rec);
        assert_eq!(rec.counter(Counter::BfsSources), 1);
    }
}
