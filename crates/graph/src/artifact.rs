//! The `brics.artifact/v1` binary container: a versioned, checksummed
//! section file for persisted prepared-graph state.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic                b"BRICSART"
//! 8       4     format version       1
//! 12      4     endianness marker    0x01020304
//! 16      4     section count
//! 20      4     reserved (zero)
//! 24      32×N  section table        one entry per section
//! 24+32N  …     payloads             each padded to 8-byte alignment
//! ```
//!
//! Each section-table entry is `{ id: u32, reserved: u32, offset: u64,
//! len: u64, checksum: u64 }`; `checksum` is the [`crate::hash::FxHasher`]
//! digest of the payload bytes. The container is format-agnostic: section
//! ids and payload encodings are assigned by the layer that persists its
//! state (the engine crate), the container only guarantees integrity.
//!
//! Every open validates the header, the table, and every section checksum
//! before any byte is interpreted, so corruption and truncation surface as
//! typed [`ArtifactError`]s — never as a panic or a silently wrong
//! answer. The [`FaultSite::IoArtifact`](crate::control::FaultSite)
//! failpoint can inject failures at each validation stage (argument 0 =
//! header, 1 = section table, 2 = checksum) for chaos testing.

use crate::control::{FaultKind, FaultSite, RunControl};
use crate::hash::FxHasher;
use crate::storage::MappedFile;
use std::fmt;
use std::hash::Hasher;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every artifact file.
pub const MAGIC: [u8; 8] = *b"BRICSART";
/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness marker; reads back byte-swapped when the file was written
/// on a foreign-endian host.
pub const ENDIAN_MARKER: u32 = 0x0102_0304;

const HEADER_LEN: usize = 24;
const TABLE_ENTRY_LEN: usize = 32;

/// Why an artifact could not be written or opened.
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The bytes are not a valid `brics.artifact/v1` file (bad magic,
    /// unsupported version, foreign endianness, truncation, out-of-bounds
    /// sections, or a checksum mismatch).
    Format(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
            ArtifactError::Format(msg) => write!(f, "artifact format: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// The checksum used for every section: the workspace's FxHash digest of
/// the payload bytes.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Accumulates sections in memory, then writes the container in one pass.
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Ids must be unique; table order is append order.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate artifact section id {id}"
        );
        self.sections.push((id, payload));
    }

    /// The container digest the written file will report: the checksum of
    /// all section checksums in append (= table) order. Matches
    /// [`ArtifactReader::digest`] of the file [`write_to`](Self::write_to)
    /// produces.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        for (_, payload) in &self.sections {
            h.write_u64(checksum(payload));
        }
        h.finish()
    }

    /// Writes the container to `path`, replacing any existing file.
    /// Returns the total bytes written.
    pub fn write_to(&self, path: &Path) -> Result<u64, ArtifactError> {
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let mut out = Vec::with_capacity(
            HEADER_LEN + table_len + self.sections.iter().map(|(_, p)| p.len() + 8).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_MARKER.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());

        // Lay out payloads after the table, each 8-byte aligned.
        let mut offset = HEADER_LEN + table_len;
        let mut placed = Vec::with_capacity(self.sections.len());
        for (id, payload) in &self.sections {
            offset = (offset + 7) & !7;
            placed.push((*id, offset as u64, payload.len() as u64, checksum(payload)));
            offset += payload.len();
        }
        for (id, off, len, sum) in &placed {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&sum.to_le_bytes());
        }
        for ((_, payload), (_, off, _, _)) in self.sections.iter().zip(&placed) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(payload);
        }

        let mut file = std::fs::File::create(path)?;
        file.write_all(&out)?;
        file.flush()?;
        Ok(out.len() as u64)
    }
}

/// One validated section-table entry.
#[derive(Clone, Copy, Debug)]
struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
}

/// An opened, fully validated artifact: header checked, table bounds
/// checked, every section checksum verified — all without materializing
/// any payload into owned memory.
#[derive(Debug)]
pub struct ArtifactReader {
    file: Arc<MappedFile>,
    sections: Vec<SectionEntry>,
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Evaluates the `io.artifact` failpoint at a validation stage; a fired
/// `io-error` or `panic` arm surfaces as a typed format error (artifact
/// loading must never propagate a panic).
fn artifact_fault(ctl: &RunControl, stage: u64, what: &str) -> Result<(), ArtifactError> {
    match ctl.fault_apply(FaultSite::IoArtifact, stage) {
        Some(FaultKind::IoError) | Some(FaultKind::Panic) => Err(ArtifactError::Format(format!(
            "injected artifact fault at {what} stage (io.artifact)"
        ))),
        _ => Ok(()),
    }
}

impl ArtifactReader {
    /// Opens and validates `path`. `use_mmap` selects the backend:
    /// memory-mapped (with heap fallback) or forced read-into-heap.
    pub fn open(path: &Path, use_mmap: bool, ctl: &RunControl) -> Result<Self, ArtifactError> {
        let file = if use_mmap { MappedFile::map(path)? } else { MappedFile::read(path)? };
        Self::validate(file, ctl)
    }

    fn validate(file: Arc<MappedFile>, ctl: &RunControl) -> Result<Self, ArtifactError> {
        let bytes = file.bytes();
        artifact_fault(ctl, 0, "header")?;
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Format(format!(
                "file too short for header ({} bytes)",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(ArtifactError::Format("bad magic (not a brics artifact)".into()));
        }
        let version = le_u32(bytes, 8);
        if version != FORMAT_VERSION {
            return Err(ArtifactError::Format(format!(
                "unsupported artifact version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let endian = le_u32(bytes, 12);
        if endian != ENDIAN_MARKER {
            return Err(ArtifactError::Format(format!(
                "endianness marker {endian:#010x} does not match {ENDIAN_MARKER:#010x} \
                 (artifact written on a foreign-endian host?)"
            )));
        }
        let count = le_u32(bytes, 16) as usize;

        artifact_fault(ctl, 1, "section table")?;
        let table_end = HEADER_LEN
            .checked_add(count.checked_mul(TABLE_ENTRY_LEN).ok_or_else(|| {
                ArtifactError::Format(format!("section count {count} overflows"))
            })?)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                ArtifactError::Format(format!(
                    "section table for {count} sections exceeds {}-byte file",
                    bytes.len()
                ))
            })?;
        let mut sections = Vec::with_capacity(count);
        let mut checksums = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let id = le_u32(bytes, at);
            let offset = le_u64(bytes, at + 8);
            let len = le_u64(bytes, at + 16);
            let sum = le_u64(bytes, at + 24);
            let (offset, len) = match (usize::try_from(offset), usize::try_from(len)) {
                (Ok(o), Ok(l)) => (o, l),
                _ => {
                    return Err(ArtifactError::Format(format!(
                        "section {id}: offset/len exceed this host's address space"
                    )))
                }
            };
            let in_bounds = offset >= table_end
                && offset.checked_add(len).is_some_and(|end| end <= bytes.len());
            if !in_bounds {
                return Err(ArtifactError::Format(format!(
                    "section {id}: range [{offset}, +{len}) out of bounds \
                     of {}-byte file",
                    bytes.len()
                )));
            }
            if sections.iter().any(|s: &SectionEntry| s.id == id) {
                return Err(ArtifactError::Format(format!("duplicate section id {id}")));
            }
            sections.push(SectionEntry { id, offset, len });
            checksums.push(sum);
        }

        artifact_fault(ctl, 2, "checksum")?;
        for (entry, expected) in sections.iter().zip(&checksums) {
            let actual = checksum(&bytes[entry.offset..entry.offset + entry.len]);
            if actual != *expected {
                return Err(ArtifactError::Format(format!(
                    "section {}: checksum mismatch (file corrupt?)",
                    entry.id
                )));
            }
        }
        Ok(Self { file, sections })
    }

    /// The backing file, for constructing in-place
    /// [`Buffer`](crate::storage::Buffer)s over sections.
    pub fn file(&self) -> &Arc<MappedFile> {
        &self.file
    }

    /// Whether the backing file is served by a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    /// A digest of the whole container: the checksum of all section
    /// checksums in table order — cheap, stable, and sensitive to any
    /// payload or layout change.
    pub fn digest(&self) -> u64 {
        let bytes = self.file.bytes();
        let mut h = FxHasher::default();
        for entry in &self.sections {
            h.write_u64(checksum(&bytes[entry.offset..entry.offset + entry.len]));
        }
        h.finish()
    }

    /// Byte range `(offset, len)` of a section, if present.
    pub fn section_range(&self, id: u32) -> Option<(usize, usize)> {
        self.sections.iter().find(|s| s.id == id).map(|s| (s.offset, s.len))
    }

    /// A section's raw payload bytes, if present.
    pub fn section_bytes(&self, id: u32) -> Option<&[u8]> {
        self.section_range(id).map(|(offset, len)| &self.file.bytes()[offset..offset + len])
    }

    /// Whether a section with this id exists.
    pub fn has_section(&self, id: u32) -> bool {
        self.sections.iter().any(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::FaultPlan;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("brics_artifact_{name}_{}", std::process::id()))
    }

    fn sample(path: &Path) -> u64 {
        let mut w = ArtifactWriter::new();
        w.section(1, b"first payload".to_vec());
        w.section(2, (0u32..16).flat_map(|v| v.to_le_bytes()).collect());
        w.section(9, Vec::new());
        w.write_to(path).unwrap()
    }

    #[test]
    fn write_then_open_roundtrips_sections() {
        let path = tmp("roundtrip");
        let written = sample(&path);
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        for use_mmap in [true, false] {
            let r = ArtifactReader::open(&path, use_mmap, &RunControl::new()).unwrap();
            assert_eq!(r.section_bytes(1).unwrap(), b"first payload");
            assert_eq!(r.section_bytes(2).unwrap().len(), 64);
            assert_eq!(r.section_bytes(9).unwrap(), b"");
            assert!(r.section_bytes(3).is_none());
            assert!(r.has_section(9) && !r.has_section(3));
            // Payload offsets are 8-byte aligned for in-place service.
            let (off, _) = r.section_range(2).unwrap();
            assert_eq!(off % 8, 0);
        }
        let a = ArtifactReader::open(&path, true, &RunControl::new()).unwrap().digest();
        let b = ArtifactReader::open(&path, false, &RunControl::new()).unwrap().digest();
        assert_eq!(a, b, "digest is backend-independent");
        let mut w = ArtifactWriter::new();
        w.section(1, b"first payload".to_vec());
        w.section(2, (0u32..16).flat_map(|v| v.to_le_bytes()).collect());
        w.section(9, Vec::new());
        assert_eq!(w.digest(), a, "writer digest matches the written file's");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_a_format_error() {
        let path = tmp("truncated");
        let written = sample(&path) as usize;
        let bytes = std::fs::read(&path).unwrap();
        for keep in [0, 7, HEADER_LEN - 1, HEADER_LEN + 5, written - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
            assert!(matches!(err, ArtifactError::Format(_)), "keep={keep}: {err}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let path = tmp("flipped");
        sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt payload, not header
        std::fs::write(&path, &bytes).unwrap();
        let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_version_and_endianness_are_rejected() {
        let path = tmp("header");
        sample(&path);
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        let mut bad = good;
        bad[12..16].copy_from_slice(&ENDIAN_MARKER.to_be_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("endianness"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_section_is_rejected() {
        let path = tmp("oob");
        sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // First table entry's len at header+16: point past EOF.
        let at = HEADER_LEN + 16;
        bytes[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArtifactReader::open(&path, true, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_artifact_fault_fires_per_stage() {
        let path = tmp("fault");
        sample(&path);
        for (trigger, what) in [("on:0", "header"), ("on:1", "section table"), ("on:2", "checksum")]
        {
            let plan = FaultPlan::parse(&format!("io.artifact=io-error@{trigger}")).unwrap();
            let ctl = RunControl::new().with_fault_plan(plan.clone());
            let err = ArtifactReader::open(&path, true, &ctl).unwrap_err();
            assert!(err.to_string().contains(what), "{trigger}: {err}");
            assert_eq!(plan.fired(FaultSite::IoArtifact), 1);
        }
        // An unarmed control passes all three stages.
        assert!(ArtifactReader::open(&path, true, &RunControl::new()).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}
