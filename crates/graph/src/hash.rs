//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! Identical-node detection hashes millions of short neighbour lists; the
//! std `SipHash` is needlessly slow for that (see the Rust Performance Book,
//! "Hashing"). This is the well-known Fx multiply-rotate-xor construction
//! (as used by rustc), reimplemented here (~40 lines) instead of adding a
//! crate outside the allowed dependency set. HashDoS resistance is not a
//! concern: inputs are graph structure, not attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes a slice of node ids in one shot (used for neighbour-list grouping).
pub fn hash_ids(ids: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(ids.len());
    for &id in ids {
        h.write_u32(id);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_hash_equal() {
        assert_eq!(hash_ids(&[1, 2, 3]), hash_ids(&[1, 2, 3]));
    }

    #[test]
    fn different_slices_hash_differently() {
        // Not guaranteed in general, but these must differ for any sane hash.
        assert_ne!(hash_ids(&[1, 2, 3]), hash_ids(&[1, 2, 4]));
        assert_ne!(hash_ids(&[1, 2]), hash_ids(&[1, 2, 0]));
        assert_ne!(hash_ids(&[]), hash_ids(&[0]));
    }

    #[test]
    fn order_matters() {
        assert_ne!(hash_ids(&[1, 2]), hash_ids(&[2, 1]));
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(42, 7);
        assert_eq!(m.get(&42), Some(&7));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }

    #[test]
    fn write_bytes_consistent_with_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
