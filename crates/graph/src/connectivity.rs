//! Connected components and the "make connected" normalisation.
//!
//! The paper requires connected inputs and states (§IV-B) that disconnected
//! datasets were patched by adding a few edges. [`make_connected`] reproduces
//! that: it links one representative of every non-giant component to a
//! representative of the largest component.

use crate::traversal::Bfs;
use crate::{CsrGraph, GraphBuilder, NodeId, INVALID_NODE};

/// Vertex partition into connected components.
#[derive(Clone, Debug)]
pub struct Components {
    /// `comp[v]` = component index of `v` (dense, `0..num_components`).
    pub comp: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index of the largest component (ties broken by lowest index).
    pub fn largest(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Labels connected components with repeated BFS. `O(n + m)`.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_nodes();
    let mut comp = vec![INVALID_NODE; n];
    let mut sizes = Vec::new();
    let mut bfs = Bfs::new(n);
    for v in 0..n as NodeId {
        if comp[v as usize] != INVALID_NODE {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        bfs.run_with(g, v, |u, _| {
            comp[u as usize] = id;
            size += 1;
        });
        sizes.push(size);
    }
    Components { comp, sizes }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.num_nodes() == 0 || connected_components(g).count() == 1
}

/// Returns a connected version of `g`: one edge is added from the
/// minimum-id vertex of each non-giant component to the minimum-id vertex
/// of the largest component. Returns the graph unchanged (clone) if already
/// connected, along with the number of edges added.
pub fn make_connected(g: &CsrGraph) -> (CsrGraph, usize) {
    let comps = connected_components(g);
    if comps.count() <= 1 {
        return (g.clone(), 0);
    }
    let giant = comps.largest() as u32;
    // Minimum-id representative per component.
    let mut rep = vec![INVALID_NODE; comps.count()];
    for v in 0..g.num_nodes() {
        let c = comps.comp[v] as usize;
        if rep[c] == INVALID_NODE {
            rep[c] = v as NodeId;
        }
    }
    let anchor = rep[giant as usize];
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() + comps.count());
    b.extend_edges(g.edges());
    let mut added = 0usize;
    for (c, &r) in rep.iter().enumerate() {
        if c as u32 != giant {
            b.add_edge(anchor, r);
            added += 1;
        }
    }
    (b.build(), added)
}

/// Returns the subgraph induced by the largest connected component, with
/// its id mapping — the alternative normalisation to [`make_connected`]
/// (keep the giant component, drop the rest) that network-analysis
/// pipelines often prefer.
pub fn largest_component(g: &CsrGraph) -> crate::InducedSubgraph {
    let comps = connected_components(g);
    let giant = comps.largest() as u32;
    let verts: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| comps.comp[v as usize] == giant)
        .collect();
    crate::InducedSubgraph::extract(g, &verts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_component_extracts_giant() {
        let g = GraphBuilder::from_edges(8, &[(0, 1), (1, 2), (2, 3), (5, 6)]);
        let sub = largest_component(&g);
        assert_eq!(sub.len(), 4);
        assert!(is_connected(&sub.graph));
        assert_eq!(sub.to_global(0), 0);
        assert_eq!(sub.to_local(5), None);
    }

    #[test]
    fn largest_component_of_connected_is_identity_sized() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(largest_component(&g).len(), 4);
    }

    #[test]
    fn single_component() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes, vec![4]);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components_labelled() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.comp[0], c.comp[1]);
        assert_eq!(c.comp[2], c.comp[3]);
        assert_eq!(c.comp[3], c.comp[4]);
        assert_ne!(c.comp[0], c.comp[2]);
        assert_ne!(c.comp[2], c.comp[5]);
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
    }

    #[test]
    fn largest_picks_biggest() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.sizes[c.largest()], 3);
    }

    #[test]
    fn make_connected_noop_when_connected() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let (g2, added) = make_connected(&g);
        assert_eq!(added, 0);
        assert_eq!(g2, g);
    }

    #[test]
    fn make_connected_links_all_components() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (g2, added) = make_connected(&g);
        assert_eq!(added, 2);
        assert!(is_connected(&g2));
        assert_eq!(g2.num_edges(), g.num_edges() + 2);
    }

    #[test]
    fn make_connected_handles_isolated_vertices() {
        let g = GraphBuilder::from_edges(4, &[(0, 1)]);
        let (g2, added) = make_connected(&g);
        assert_eq!(added, 2);
        assert!(is_connected(&g2));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&CsrGraph::empty()));
    }
}
