//! Vertex relabelling for cache locality.
//!
//! BFS kernels stream neighbour lists; when graph ids are scattered, every
//! frontier expansion hops across the whole distance array. Relabelling
//! vertices so that topological neighbours get nearby ids (the classic
//! "BFS renumbering" / Cuthill–McKee idea) improves cache behaviour of all
//! downstream traversals without touching any algorithm. The estimators
//! are id-agnostic, so callers can relabel first and translate results back
//! through the permutation.

use crate::traversal::Bfs;
use crate::{CsrGraph, GraphBuilder, NodeId, INVALID_NODE};

/// A relabelled graph plus both directions of the permutation.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// The relabelled graph.
    pub graph: CsrGraph,
    /// `new_of_old[v]` — the new id of original vertex `v`.
    pub new_of_old: Vec<NodeId>,
    /// `old_of_new[v]` — the original id of new vertex `v`.
    pub old_of_new: Vec<NodeId>,
}

impl Relabeling {
    /// Translates a per-vertex vector from new-id order back to original-id
    /// order (e.g. farness values computed on the relabelled graph).
    pub fn to_original_order<T: Copy + Default>(&self, values_new: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); values_new.len()];
        for (new_id, &old_id) in self.old_of_new.iter().enumerate() {
            out[old_id as usize] = values_new[new_id];
        }
        out
    }
}

fn relabel_with_order(g: &CsrGraph, old_of_new: Vec<NodeId>) -> Relabeling {
    let n = g.num_nodes();
    debug_assert_eq!(old_of_new.len(), n);
    let mut new_of_old = vec![INVALID_NODE; n];
    for (new_id, &old_id) in old_of_new.iter().enumerate() {
        new_of_old[old_id as usize] = new_id as NodeId;
    }
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (u, v) in g.edges() {
        b.add_edge(new_of_old[u as usize], new_of_old[v as usize]);
    }
    Relabeling { graph: b.build(), new_of_old, old_of_new }
}

/// Relabels vertices in BFS discovery order starting from `start`
/// (remaining components are appended in id order). Neighbours end up with
/// close ids, which is what traversal kernels want.
pub fn bfs_relabel(g: &CsrGraph, start: NodeId) -> Relabeling {
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut bfs = Bfs::new(n);
    let enqueue = |s: NodeId, order: &mut Vec<NodeId>, seen: &mut Vec<bool>, bfs: &mut Bfs| {
        if !seen[s as usize] {
            bfs.run_with(g, s, |v, _| {
                seen[v as usize] = true;
                order.push(v);
            });
        }
    };
    if n > 0 {
        enqueue(start.min(n as NodeId - 1), &mut order, &mut seen, &mut bfs);
        for v in 0..n as NodeId {
            enqueue(v, &mut order, &mut seen, &mut bfs);
        }
    }
    relabel_with_order(g, order)
}

/// Relabels vertices by descending degree (hubs first) — clusters the
/// high-traffic rows of the CSR at the front of memory. Ties break by
/// original id, so the result is deterministic.
pub fn degree_relabel(g: &CsrGraph) -> Relabeling {
    let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    relabel_with_order(g, order)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::generators::{gnm_random_connected, web_like, ClassParams};
    use crate::traversal::bfs_distances;

    fn assert_isomorphic(g: &CsrGraph, r: &Relabeling) {
        assert_eq!(r.graph.num_nodes(), g.num_nodes());
        assert_eq!(r.graph.num_edges(), g.num_edges());
        // Permutation is a bijection.
        let mut seen = vec![false; g.num_nodes()];
        for &o in &r.old_of_new {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        // Every original edge maps to a relabelled edge.
        for (u, v) in g.edges() {
            assert!(r
                .graph
                .has_edge(r.new_of_old[u as usize], r.new_of_old[v as usize]));
        }
    }

    #[test]
    fn bfs_relabel_is_isomorphism() {
        let g = gnm_random_connected(60, 90, 4);
        let r = bfs_relabel(&g, 0);
        assert_isomorphic(&g, &r);
        // Distances are preserved under the permutation.
        let d_old = bfs_distances(&g, 7);
        let d_new = bfs_distances(&r.graph, r.new_of_old[7]);
        for v in 0..60 {
            assert_eq!(d_old[v], d_new[r.new_of_old[v] as usize]);
        }
    }

    #[test]
    fn degree_relabel_sorts_hubs_first() {
        let g = web_like(ClassParams::new(500, 3));
        let r = degree_relabel(&g);
        assert_isomorphic(&g, &r);
        for w in (0..r.graph.num_nodes() as NodeId).collect::<Vec<_>>().windows(2) {
            assert!(r.graph.degree(w[0]) >= r.graph.degree(w[1]));
        }
    }

    #[test]
    fn to_original_order_roundtrips() {
        let g = gnm_random_connected(30, 40, 1);
        let r = bfs_relabel(&g, 5);
        // Values keyed by new ids = the new ids themselves.
        let vals_new: Vec<u32> = (0..30).collect();
        let back = r.to_original_order(&vals_new);
        for old in 0..30 {
            assert_eq!(back[old], r.new_of_old[old]);
        }
    }

    #[test]
    fn handles_disconnected_and_trivial() {
        let g = crate::GraphBuilder::from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs_relabel(&g, 3);
        assert_isomorphic(&g, &r);
        let empty = CsrGraph::empty();
        let r = bfs_relabel(&empty, 0);
        assert_eq!(r.graph.num_nodes(), 0);
    }

    #[test]
    fn bfs_order_improves_locality_metric() {
        // Mean |id(u) - id(v)| over edges should shrink after relabelling
        // a web-like graph (hubs + fringe allocated far apart by the
        // generator).
        let g = web_like(ClassParams::new(3000, 9));
        let spread = |g: &CsrGraph| -> f64 {
            let mut s = 0f64;
            for (u, v) in g.edges() {
                s += (u.abs_diff(v)) as f64;
            }
            s / g.num_edges() as f64
        };
        let before = spread(&g);
        let after = spread(&bfs_relabel(&g, 0).graph);
        assert!(
            after < before,
            "BFS relabelling should reduce mean edge span: {before} -> {after}"
        );
    }
}
