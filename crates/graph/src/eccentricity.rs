//! Eccentricity, diameter and radius.
//!
//! The diameter shapes every farness value (distances are bounded by it)
//! and the paper leans on diameter-related work for context (Crescenzi et
//! al., reference 7 of the paper). This module provides the standard toolkit:
//!
//! * [`double_sweep`] — the classic two-BFS heuristic: a *lower* bound on
//!   the diameter that is exact on trees and extremely tight on real-world
//!   graphs;
//! * [`diameter_bounds`] — iterative refinement (a light-weight variant of
//!   iFUB): repeatedly sweeps from high-eccentricity vertices, maintaining
//!   certified lower and upper bounds until they meet or a budget runs out;
//! * [`exact_eccentricities`] — one BFS per vertex, parallel; the oracle.

use crate::traversal::Bfs;
use crate::{CsrGraph, Dist, NodeId, INFINITE_DIST};
use rayon::prelude::*;

/// Certified diameter bounds (`lower == upper` means exact).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiameterBounds {
    /// Largest distance actually observed.
    pub lower: Dist,
    /// Certified upper bound.
    pub upper: Dist,
    /// BFS traversals spent.
    pub bfs_runs: usize,
}

/// One BFS from `v`: returns (farthest vertex, its distance).
/// Ties break to the smallest id. Requires a connected graph for a
/// meaningful result; unreachable vertices are ignored.
fn farthest(bfs: &mut Bfs, g: &CsrGraph, v: NodeId) -> (NodeId, Dist) {
    let mut best = (v, 0);
    bfs.run_with(g, v, |u, d| {
        if d > best.1 {
            best = (u, d);
        }
    });
    best
}

/// Double-sweep heuristic: BFS from `start`, then BFS from the farthest
/// vertex found. Returns a certified **lower** bound on the diameter
/// (exact on trees).
pub fn double_sweep(g: &CsrGraph, start: NodeId) -> Dist {
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut bfs = Bfs::new(g.num_nodes());
    let (a, _) = farthest(&mut bfs, g, start);
    let (_, d) = farthest(&mut bfs, g, a);
    d
}

/// Iteratively tightens diameter bounds with at most `budget` BFS runs
/// beyond the initial double sweep. Works on connected graphs; on
/// disconnected input the bounds describe `start`'s component.
///
/// Strategy: maintain `lower` = max distance seen. The eccentricity of any
/// vertex `v` bounds the diameter: `diam ≤ 2·ecc(v)`; sweeping from
/// midpoints of long paths shrinks the upper bound quickly.
pub fn diameter_bounds(g: &CsrGraph, start: NodeId, budget: usize) -> DiameterBounds {
    let n = g.num_nodes();
    if n == 0 {
        return DiameterBounds { lower: 0, upper: 0, bfs_runs: 0 };
    }
    let mut bfs = Bfs::new(n);
    let mut runs = 0usize;

    // Double sweep for the initial lower bound; remember the middle of the
    // long path as a good low-eccentricity candidate.
    let (a, _) = farthest(&mut bfs, g, start);
    runs += 1;
    let mut far_b = a;
    let mut lower = 0;
    let mut parent_path_mid = a;
    {
        // BFS from a, tracking distances to find the far end and midpoint.
        bfs.run_with(g, a, |_, _| {});
        runs += 1;
        let dist = bfs.distances();
        for v in 0..n as NodeId {
            let d = dist[v as usize];
            if d != INFINITE_DIST && d > lower {
                lower = d;
                far_b = v;
            }
        }
        // Midpoint of the a—far_b path: any vertex at distance lower/2
        // from a on the path; approximate with any vertex at that level.
        let half = lower / 2;
        for v in 0..n as NodeId {
            if dist[v as usize] == half {
                parent_path_mid = v;
                break;
            }
        }
    }
    let _ = far_b;
    // ecc(mid) gives upper = 2·ecc(mid); refine from the highest-level
    // vertices of mid's BFS tree.
    let (_, ecc_mid) = farthest(&mut bfs, g, parent_path_mid);
    runs += 1;
    let mut upper = ecc_mid.saturating_mul(2);
    lower = lower.max(ecc_mid);

    // Refine: sweep from vertices with the largest distance from mid.
    let levels: Vec<(NodeId, Dist)> = {
        let dist = bfs.distances();
        let mut vs: Vec<(NodeId, Dist)> = (0..n as NodeId)
            .map(|v| (v, dist[v as usize]))
            .filter(|&(_, d)| d != INFINITE_DIST)
            .collect();
        vs.sort_by_key(|&(v, d)| (std::cmp::Reverse(d), v));
        vs
    };
    for &(v, level) in levels.iter().take(budget) {
        if lower >= upper || lower >= ecc_mid + level {
            // No unvisited vertex can extend the diameter beyond what is
            // already certified: ecc(v) ≤ level(v) + ecc_mid ≤ lower.
            upper = upper.min(lower.max(ecc_mid + level));
            break;
        }
        let (_, e) = farthest(&mut bfs, g, v);
        runs += 1;
        lower = lower.max(e);
        // Visited prefix is measured; the rest is bounded through mid.
        upper = upper.min(lower.max(ecc_mid + level));
    }
    DiameterBounds { lower, upper: upper.max(lower), bfs_runs: runs }
}

/// Exact eccentricity of every vertex (`INFINITE_DIST` on disconnected
/// graphs for vertices that cannot reach everything). One BFS per vertex.
pub fn exact_eccentricities(g: &CsrGraph) -> Vec<Dist> {
    let n = g.num_nodes();
    (0..n as NodeId)
        .into_par_iter()
        .map_init(
            || Bfs::new(n),
            |bfs, v| {
                let mut ecc = 0;
                let (reached, _) = bfs.run_with(g, v, |_, d| ecc = ecc.max(d));
                if reached == n {
                    ecc
                } else {
                    INFINITE_DIST
                }
            },
        )
        .collect()
}

/// Exact diameter (max eccentricity) and radius (min eccentricity).
/// Returns `None` for empty or disconnected graphs.
pub fn diameter_radius(g: &CsrGraph) -> Option<(Dist, Dist)> {
    let ecc = exact_eccentricities(g);
    if ecc.is_empty() || ecc.contains(&INFINITE_DIST) {
        return None;
    }
    Some((*ecc.iter().max().unwrap(), *ecc.iter().min().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        complete_graph, cycle_graph, gnm_random_connected, grid_graph, path_graph, star_graph,
    };

    #[test]
    fn path_diameter_exact_via_double_sweep() {
        let g = path_graph(17);
        assert_eq!(double_sweep(&g, 8), 16);
        let b = diameter_bounds(&g, 8, 10);
        assert_eq!(b.lower, 16);
        assert!(b.upper >= 16);
    }

    #[test]
    fn known_diameters() {
        assert_eq!(diameter_radius(&path_graph(10)), Some((9, 5)));
        assert_eq!(diameter_radius(&cycle_graph(10)), Some((5, 5)));
        assert_eq!(diameter_radius(&star_graph(7)), Some((2, 1)));
        assert_eq!(diameter_radius(&complete_graph(5)), Some((1, 1)));
        assert_eq!(diameter_radius(&grid_graph(3, 4)), Some((5, 3)));
    }

    #[test]
    fn bounds_bracket_exact_diameter() {
        for seed in 0..10 {
            let g = gnm_random_connected(60, 90, seed);
            let (diam, _) = diameter_radius(&g).unwrap();
            let b = diameter_bounds(&g, 0, 8);
            assert!(b.lower <= diam, "seed {seed}: lower {} > diam {diam}", b.lower);
            assert!(b.upper >= diam, "seed {seed}: upper {} < diam {diam}", b.upper);
            // Double sweep is usually exact on these graphs; certify ≥ half.
            assert!(b.lower * 2 >= diam, "seed {seed}");
        }
    }

    #[test]
    fn eccentricities_on_path() {
        let e = exact_eccentricities(&path_graph(5));
        assert_eq!(e, vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn disconnected_handled() {
        let g = crate::GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter_radius(&g), None);
        let e = exact_eccentricities(&g);
        assert!(e.iter().all(|&x| x == INFINITE_DIST));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(diameter_radius(&CsrGraph::empty()), None);
        let single = crate::GraphBuilder::new(1).build();
        assert_eq!(diameter_radius(&single), Some((0, 0)));
        assert_eq!(double_sweep(&single, 0), 0);
    }
}
