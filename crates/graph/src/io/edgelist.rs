//! SNAP-style edge list format.
//!
//! One `u v` pair per line, any whitespace separator; lines beginning with
//! `#` or `%` are comments. Vertex ids are arbitrary `u32`s; the reader
//! sizes the graph to `max id + 1`. Directed inputs are symmetrised by the
//! builder, matching the paper's preprocessing.

use super::{limits, IoError};
use crate::{CsrGraph, GraphBuilder, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an edge list from any reader.
pub fn read_edge_list_from<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut b = GraphBuilder::new(0);
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<NodeId, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: lineno,
                message: "expected two vertex ids".into(),
            })?
            .parse::<NodeId>()
            .map_err(|e| IoError::Parse { line: lineno, message: format!("bad vertex id: {e}") })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        // `u32::MAX` would overflow the id space when the builder sizes the
        // graph to max id + 1 — reject instead of corrupting the invariant.
        if u.max(v) > limits::MAX_NODE_ID {
            return Err(IoError::Limit(format!(
                "vertex id {} at line {lineno} exceeds the maximum supported id {}",
                u.max(v),
                limits::MAX_NODE_ID
            )));
        }
        b.ensure_node(u.max(v));
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads an edge list file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    read_edge_list_from(std::fs::File::open(path)?)
}

/// Writes each undirected edge once as `u v`, preceded by a summary comment.
pub fn write_edge_list_to<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected simple graph: {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list file.
pub fn write_edge_list<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), IoError> {
    write_edge_list_to(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let data = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = read_edge_list_from(data.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn tolerates_tabs_and_extra_columns() {
        let data = "0\t5\t1.5\n5 2 weight\n";
        let g = read_edge_list_from(data.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetrises_directed_input() {
        let data = "0 1\n1 0\n";
        let g = read_edge_list_from(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list_from("0 x\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_missing_column() {
        assert!(read_edge_list_from("42\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_ids_outside_the_u32_id_space() {
        // u32::MAX itself fails to parse one past it; u32::MAX and
        // u32::MAX - 1 parse but are rejected as over-limit.
        for bad in [u32::MAX as u64, (u32::MAX - 1) as u64] {
            let data = format!("0 {bad}\n");
            match read_edge_list_from(data.as_bytes()).unwrap_err() {
                IoError::Limit(m) => assert!(m.contains(&bad.to_string()), "{m}"),
                other => panic!("expected Limit, got {other}"),
            }
        }
        // One past u32::MAX is a parse error, not a silent wrap.
        let data = format!("{} 0\n", u32::MAX as u64 + 1);
        assert!(matches!(
            read_edge_list_from(data.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn roundtrip() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let g2 = read_edge_list_from(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list_from("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("brics-edgelist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g, g2);
    }
}
