//! METIS graph format.
//!
//! The format of the METIS partitioner the paper contrasts against (§I-A):
//! a header `n m [fmt [ncon]]` followed by one line per vertex listing its
//! neighbours, **1-based**. We read the plain unweighted variant (fmt
//! absent or `0`/`00`/`000`) and tolerate-but-ignore vertex/edge weights
//! for `fmt ∈ {1, 10, 11, 100, 101, 110, 111}` is *not* attempted — those
//! interleave weights positionally and silently misreading them would
//! corrupt the graph, so they are rejected with a clear error.

use super::{limits, IoError};
use crate::{CsrGraph, GraphBuilder, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a METIS graph file (unweighted variant).
pub fn read_metis_from<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;

    // Header: first non-comment line. Comments start with '%'.
    let (n, m) = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(IoError::Format("empty file".into()));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(IoError::Format("header needs at least 'n m'".into()));
        }
        let n: usize = fields[0]
            .parse()
            .map_err(|e| IoError::Parse { line: lineno, message: format!("bad n: {e}") })?;
        let m: usize = fields[1]
            .parse()
            .map_err(|e| IoError::Parse { line: lineno, message: format!("bad m: {e}") })?;
        if let Some(fmt) = fields.get(2) {
            if fmt.chars().any(|c| c != '0') {
                return Err(IoError::Format(format!(
                    "weighted METIS format '{fmt}' is not supported (weights would be \
                     silently misread); strip weights first"
                )));
            }
        }
        break (n, m);
    };
    // Untrusted header: keep the declared sizes inside the u32 id space /
    // plausibility caps so a corrupt file gets a typed error, not a builder
    // abort or an obedient giant allocation.
    if n > limits::MAX_DECLARED_NODES {
        return Err(IoError::Limit(format!(
            "declared {n} vertices exceeds the supported maximum {}",
            limits::MAX_DECLARED_NODES
        )));
    }
    if m > limits::MAX_DECLARED_EDGES {
        return Err(IoError::Limit(format!(
            "declared {m} edges exceeds the supported maximum {}",
            limits::MAX_DECLARED_EDGES
        )));
    }

    let mut b = GraphBuilder::with_capacity(n, m);
    let mut vertex = 0usize;
    while vertex < n {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(IoError::Format(format!(
                "expected {n} vertex lines, found {vertex}"
            )));
        }
        lineno += 1;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        for tok in t.split_whitespace() {
            let w: usize = tok.parse().map_err(|e| IoError::Parse {
                line: lineno,
                message: format!("bad neighbour id '{tok}': {e}"),
            })?;
            if w == 0 || w > n {
                return Err(IoError::Parse {
                    line: lineno,
                    message: format!("neighbour {w} outside 1..={n}"),
                });
            }
            b.add_edge(vertex as NodeId, (w - 1) as NodeId);
        }
        vertex += 1;
    }
    let g = b.build();
    if g.num_edges() != m {
        // METIS counts each undirected edge once; tolerate mismatches from
        // deduplication but report blatant corruption.
        if g.num_edges() > m {
            return Err(IoError::Format(format!(
                "header claims {m} edges but file contains {}",
                g.num_edges()
            )));
        }
    }
    Ok(g)
}

/// Reads a METIS file.
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    read_metis_from(std::fs::File::open(path)?)
}

/// Writes the graph in METIS format (unweighted).
pub fn write_metis_to<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% written by brics-graph")?;
    writeln!(w, "{} {}", g.num_nodes(), g.num_edges())?;
    for v in g.nodes() {
        let mut first = true;
        for &u in g.neighbors(v) {
            if first {
                write!(w, "{}", u + 1)?;
                first = false;
            } else {
                write!(w, " {}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a METIS file.
pub fn write_metis<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), IoError> {
    write_metis_to(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIANGLE_TAIL: &str = "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n";

    #[test]
    fn parses_basic() {
        let g = read_metis_from(TRIANGLE_TAIL.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn isolated_vertices_blank_lines() {
        let data = "3 1\n2\n1\n\n";
        let g = read_metis_from(data.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn rejects_weighted_format() {
        let data = "2 1 1\n2 5\n1 5\n";
        assert!(matches!(read_metis_from(data.as_bytes()), Err(IoError::Format(_))));
        let data011 = "2 1 011\n";
        assert!(read_metis_from(data011.as_bytes()).is_err());
    }

    #[test]
    fn accepts_fmt_zero() {
        let data = "2 1 0\n2\n1\n";
        let g = read_metis_from(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_out_of_range_and_garbage() {
        assert!(read_metis_from("2 1\n3\n\n".as_bytes()).is_err());
        assert!(read_metis_from("2 1\n0\n\n".as_bytes()).is_err());
        assert!(read_metis_from("2 1\nx\n\n".as_bytes()).is_err());
        assert!(read_metis_from("".as_bytes()).is_err());
        assert!(read_metis_from("5\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncation_and_overcount() {
        assert!(read_metis_from("3 2\n2\n1\n".as_bytes()).is_err()); // missing line
        assert!(read_metis_from("3 1\n2 3\n1 3\n1 2\n".as_bytes()).is_err()); // >m edges
    }

    #[test]
    fn rejects_absurd_declared_sizes() {
        let data = format!("{} 1\n", u32::MAX as u64);
        assert!(matches!(read_metis_from(data.as_bytes()), Err(IoError::Limit(_))));
        let data = "3 99999999999999\n2\n1\n\n";
        assert!(matches!(read_metis_from(data.as_bytes()), Err(IoError::Limit(_))));
    }

    #[test]
    fn roundtrip() {
        let g = crate::GraphBuilder::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
        );
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let g2 = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_roundtrip() {
        let g = crate::GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("brics-metis-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.graph");
        write_metis(&g, &path).unwrap();
        assert_eq!(read_metis(&path).unwrap(), g);
    }
}
