//! MatrixMarket coordinate format (SuiteSparse / UF collection).
//!
//! Supported: `%%MatrixMarket matrix coordinate <field> <symmetry>` where
//! the field is `pattern`, `real` or `integer` (values are ignored — the
//! paper treats all graphs as unweighted) and symmetry is `general` or
//! `symmetric`. Ids in the file are 1-based per the specification.

use super::{limits, IoError};
use crate::{CsrGraph, GraphBuilder, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a MatrixMarket coordinate file as an undirected graph.
pub fn read_mtx_from<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;

    // Header line.
    if reader.read_line(&mut line)? == 0 {
        return Err(IoError::Format("empty file".into()));
    }
    lineno += 1;
    let header: Vec<String> = line.split_whitespace().map(|s| s.to_ascii_lowercase()).collect();
    if header.len() < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
        return Err(IoError::Format(format!("not a MatrixMarket header: {}", line.trim())));
    }
    if header[2] != "coordinate" {
        return Err(IoError::Format(format!("unsupported storage '{}'", header[2])));
    }
    match header[3].as_str() {
        "pattern" | "real" | "integer" => {}
        other => return Err(IoError::Format(format!("unsupported field '{other}'"))),
    }
    match header[4].as_str() {
        "general" | "symmetric" => {}
        other => return Err(IoError::Format(format!("unsupported symmetry '{other}'"))),
    }

    // Size line (first non-comment line).
    let (rows, cols, nnz) = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(IoError::Format("missing size line".into()));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next_usize = || -> Result<usize, IoError> {
            it.next()
                .ok_or_else(|| IoError::Parse { line: lineno, message: "short size line".into() })?
                .parse::<usize>()
                .map_err(|e| IoError::Parse { line: lineno, message: format!("bad size: {e}") })
        };
        break (next_usize()?, next_usize()?, next_usize()?);
    };
    if rows != cols {
        return Err(IoError::Format(format!("adjacency matrix must be square, got {rows}x{cols}")));
    }
    // Untrusted header: a declared dimension past the u32 id space would
    // trip the builder's id-space assert (abort, not error), and an absurd
    // nnz is corruption — fail with a typed error before allocating.
    if rows > limits::MAX_DECLARED_NODES {
        return Err(IoError::Limit(format!(
            "declared dimension {rows} exceeds the supported maximum {}",
            limits::MAX_DECLARED_NODES
        )));
    }
    if nnz > limits::MAX_DECLARED_EDGES {
        return Err(IoError::Limit(format!(
            "declared {nnz} entries exceeds the supported maximum {}",
            limits::MAX_DECLARED_EDGES
        )));
    }

    let mut b = GraphBuilder::with_capacity(rows, nnz);
    let mut seen = 0usize;
    while seen < nnz {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(IoError::Format(format!("expected {nnz} entries, found {seen}")));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next_id = || -> Result<usize, IoError> {
            it.next()
                .ok_or_else(|| IoError::Parse { line: lineno, message: "short entry".into() })?
                .parse::<usize>()
                .map_err(|e| IoError::Parse { line: lineno, message: format!("bad id: {e}") })
        };
        let i = next_id()?;
        let j = next_id()?;
        if i == 0 || j == 0 || i > rows || j > rows {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("entry ({i},{j}) outside 1..={rows}"),
            });
        }
        b.add_edge((i - 1) as NodeId, (j - 1) as NodeId);
        seen += 1;
    }
    Ok(b.build())
}

/// Reads a MatrixMarket file.
pub fn read_mtx<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    read_mtx_from(std::fs::File::open(path)?)
}

/// Writes the graph as a symmetric pattern MatrixMarket file.
pub fn write_mtx_to<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(w, "{} {} {}", g.num_nodes(), g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        // Symmetric format stores the lower triangle: row >= column.
        writeln!(w, "{} {}", v + 1, u + 1)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a MatrixMarket file.
pub fn write_mtx<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), IoError> {
    write_mtx_to(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIANGLE: &str = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                            % a triangle\n\
                            3 3 3\n\
                            2 1\n3 1\n3 2\n";

    #[test]
    fn parses_symmetric_pattern() {
        let g = read_mtx_from(TRIANGLE.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn parses_real_general_ignoring_values() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 4\n\
                    1 2 0.5\n2 1 0.5\n2 3 1.25\n1 1 9.0\n";
        let g = read_mtx_from(data.as_bytes()).unwrap();
        // self-loop (1,1) dropped, (1,2)/(2,1) collapsed
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_non_square() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(matches!(read_mtx_from(data.as_bytes()), Err(IoError::Format(_))));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_mtx_from("hello\n".as_bytes()).is_err());
        assert!(read_mtx_from(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_truncated_entries() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
        assert!(read_mtx_from(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n";
        assert!(read_mtx_from(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_absurd_declared_sizes() {
        // Dimension past the u32 id space: typed error, not a builder abort.
        let n = u32::MAX as u64;
        let data = format!("%%MatrixMarket matrix coordinate pattern general\n{n} {n} 1\n1 2\n");
        assert!(matches!(read_mtx_from(data.as_bytes()), Err(IoError::Limit(_))));
        // Entry count no real dataset reaches: treated as a corrupt header.
        let data =
            "%%MatrixMarket matrix coordinate pattern general\n10 10 99999999999999\n1 2\n";
        assert!(matches!(read_mtx_from(data.as_bytes()), Err(IoError::Limit(_))));
    }

    #[test]
    fn truncated_header_is_an_error() {
        assert!(read_mtx_from("%%MatrixMarket matrix coordinate pattern\n".as_bytes()).is_err());
        assert!(read_mtx_from(
            "%%MatrixMarket matrix coordinate pattern general\n3 3\n".as_bytes()
        )
        .is_err());
        assert!(
            read_mtx_from("%%MatrixMarket matrix coordinate pattern general\n".as_bytes()).is_err()
        );
    }

    #[test]
    fn roundtrip() {
        let g = crate::GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut buf = Vec::new();
        write_mtx_to(&g, &mut buf).unwrap();
        let g2 = read_mtx_from(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn one_based_ids_mapped() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n4 1\n";
        let g = read_mtx_from(data.as_bytes()).unwrap();
        assert!(g.has_edge(3, 0));
    }
}
