//! Typed IO errors.

use std::fmt;

/// Errors produced by the graph readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem / stream error.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file header or contents are structurally invalid for the format.
    Format(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::Parse { line: 3, message: "bad id".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad id");
        let e = IoError::Format("empty header".into());
        assert!(e.to_string().contains("empty header"));
    }

    #[test]
    fn io_error_sources() {
        use std::error::Error;
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
