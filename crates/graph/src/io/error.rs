//! Typed IO errors and the hard limits the readers enforce.

use std::fmt;

/// Hard ceilings enforced on untrusted input by every reader.
///
/// Graph files come from the outside world; a lying header or an
/// out-of-range id must produce a typed error, never a huge allocation or
/// an id-space overflow that corrupts the builder's invariants.
pub mod limits {
    /// Highest usable vertex id. `CsrGraph` ids are `u32` and the builder
    /// requires `num_nodes < u32::MAX`, so with `num_nodes = max_id + 1`
    /// the largest admissible id is `u32::MAX - 2`.
    pub const MAX_NODE_ID: u32 = u32::MAX - 2;
    /// Largest vertex count a file header may declare (`MAX_NODE_ID + 1`).
    pub const MAX_DECLARED_NODES: usize = MAX_NODE_ID as usize + 1;
    /// Largest edge count a file header may declare. Far beyond any real
    /// dataset; headers past it are treated as corrupt rather than obeyed.
    pub const MAX_DECLARED_EDGES: usize = 1 << 33;
}

/// Errors produced by the graph readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem / stream error.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file header or contents are structurally invalid for the format.
    Format(String),
    /// The input exceeds a hard limit from [`limits`] — an id outside the
    /// `u32` id space or a declared size no real dataset reaches.
    Limit(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Limit(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::Parse { line: 3, message: "bad id".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad id");
        let e = IoError::Format("empty header".into());
        assert!(e.to_string().contains("empty header"));
        let e = IoError::Limit("id 4294967295 out of range".into());
        assert!(e.to_string().contains("limit exceeded"));
    }

    #[test]
    fn limits_are_consistent_with_the_builder() {
        // The builder asserts num_nodes < u32::MAX; the declared-nodes cap
        // must never let a reader trip that assert.
        assert!(limits::MAX_DECLARED_NODES < u32::MAX as usize);
        assert_eq!(limits::MAX_NODE_ID as usize + 1, limits::MAX_DECLARED_NODES);
    }

    #[test]
    fn io_error_sources() {
        use std::error::Error;
        let e: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
