//! Graph file IO.
//!
//! Three formats cover the paper's data sources and the surrounding
//! toolchain:
//!
//! * `edgelist` — whitespace-separated `u v` pairs per line, `#`/`%`
//!   comments; the SNAP collection's native format.
//! * `mtx` — MatrixMarket `coordinate` files; the University of Florida
//!   (SuiteSparse) collection's native format.
//! * `metis` — the METIS partitioner's adjacency format (unweighted
//!   variant), for interop with the decomposition tooling the paper
//!   contrasts against (§I-A).
//!
//! Both readers normalise through [`crate::GraphBuilder`], so loaded graphs
//! are always simple and undirected, as the paper's preprocessing requires.

mod edgelist;
mod error;
mod metis;
mod mtx;

pub use edgelist::{read_edge_list, read_edge_list_from, write_edge_list, write_edge_list_to};
pub use error::{limits, IoError};
pub use metis::{read_metis, read_metis_from, write_metis, write_metis_to};
pub use mtx::{read_mtx, read_mtx_from, write_mtx, write_mtx_to};
