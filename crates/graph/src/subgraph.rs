//! Induced subgraph extraction with id mapping.
//!
//! The BRICS cumulative estimator runs BFS *inside* each biconnected
//! component (paper Algorithm 5, step 2). Blocks are materialised as compact
//! CSR graphs over local ids `0..|B|`, with both directions of the id
//! mapping retained so distances can be reported against original ids.

use crate::{CsrGraph, GraphBuilder, NodeId, INVALID_NODE};

/// A vertex-induced subgraph plus the local↔global id maps.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph over local ids `0..local_to_global.len()`.
    pub graph: CsrGraph,
    /// `local_to_global[l]` = original id of local vertex `l`.
    pub local_to_global: Vec<NodeId>,
    /// `global_to_local[g]` = local id of original vertex `g`,
    /// or `INVALID_NODE` if `g` is not in the subgraph.
    pub global_to_local: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph induced by `vertices` (duplicates are ignored;
    /// local ids follow first-occurrence order of `vertices`).
    pub fn extract(g: &CsrGraph, vertices: &[NodeId]) -> Self {
        let mut global_to_local = vec![INVALID_NODE; g.num_nodes()];
        let mut local_to_global = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if global_to_local[v as usize] == INVALID_NODE {
                global_to_local[v as usize] = local_to_global.len() as NodeId;
                local_to_global.push(v);
            }
        }
        let mut b = GraphBuilder::new(local_to_global.len());
        for (l, &v) in local_to_global.iter().enumerate() {
            for &w in g.neighbors(v) {
                let lw = global_to_local[w as usize];
                if lw != INVALID_NODE && (lw as usize) > l {
                    b.add_edge(l as NodeId, lw);
                }
            }
        }
        Self { graph: b.build(), local_to_global, global_to_local }
    }

    /// Extracts a subgraph over `vertices` keeping only the listed `edges`
    /// (given in *global* ids). Used for biconnected blocks, where the block
    /// is defined by an edge set: a cut vertex belongs to several blocks and
    /// the induced edge set would wrongly merge them.
    pub fn from_edge_list(g: &CsrGraph, vertices: &[NodeId], edges: &[(NodeId, NodeId)]) -> Self {
        let mut global_to_local = vec![INVALID_NODE; g.num_nodes()];
        let mut local_to_global = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if global_to_local[v as usize] == INVALID_NODE {
                global_to_local[v as usize] = local_to_global.len() as NodeId;
                local_to_global.push(v);
            }
        }
        let mut b = GraphBuilder::with_capacity(local_to_global.len(), edges.len());
        for &(u, v) in edges {
            let lu = global_to_local[u as usize];
            let lv = global_to_local[v as usize];
            assert!(
                lu != INVALID_NODE && lv != INVALID_NODE,
                "edge ({u},{v}) references a vertex outside the subgraph"
            );
            b.add_edge(lu, lv);
        }
        Self { graph: b.build(), local_to_global, global_to_local }
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.local_to_global.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.local_to_global.is_empty()
    }

    /// Local id of a global vertex, if present.
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        let l = self.global_to_local[global as usize];
        (l != INVALID_NODE).then_some(l)
    }

    /// Global id of a local vertex.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.local_to_global[local as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_plus_tail() -> CsrGraph {
        // 0-1, 0-2, 1-3, 2-3 (diamond), 3-4 (tail)
        GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn extract_induced_keeps_internal_edges_only() {
        let g = diamond_plus_tail();
        let sub = InducedSubgraph::extract(&g, &[0, 1, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.graph.num_edges(), 2); // 0-1 and 1-3
        assert!(sub.graph.has_edge(0, 1)); // local(0)-local(1)
        let l3 = sub.to_local(3).unwrap();
        let l0 = sub.to_local(0).unwrap();
        assert!(!sub.graph.has_edge(l0, l3)); // 0-3 not an edge in g
    }

    #[test]
    fn id_maps_roundtrip() {
        let g = diamond_plus_tail();
        let sub = InducedSubgraph::extract(&g, &[4, 2, 3]);
        for l in 0..sub.len() as NodeId {
            assert_eq!(sub.to_local(sub.to_global(l)), Some(l));
        }
        assert_eq!(sub.to_local(0), None);
        assert_eq!(sub.to_global(0), 4); // first-occurrence order
    }

    #[test]
    fn duplicates_ignored() {
        let g = diamond_plus_tail();
        let sub = InducedSubgraph::extract(&g, &[1, 1, 2, 1]);
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn from_edge_list_restricts_edges() {
        let g = diamond_plus_tail();
        // Vertices of the diamond, but only 3 of its 4 edges.
        let sub =
            InducedSubgraph::from_edge_list(&g, &[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(sub.graph.num_edges(), 3);
        let l2 = sub.to_local(2).unwrap();
        let l3 = sub.to_local(3).unwrap();
        assert!(!sub.graph.has_edge(l2, l3));
    }

    #[test]
    #[should_panic(expected = "outside the subgraph")]
    fn from_edge_list_rejects_foreign_edges() {
        let g = diamond_plus_tail();
        InducedSubgraph::from_edge_list(&g, &[0, 1], &[(3, 4)]);
    }

    #[test]
    fn empty_extraction() {
        let g = diamond_plus_tail();
        let sub = InducedSubgraph::extract(&g, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph.num_nodes(), 0);
    }
}
