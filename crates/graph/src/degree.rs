//! Degree statistics.
//!
//! The paper's per-class analysis (§IV-C2) is driven by degree structure:
//! road networks are "70–85 % nodes of degree one and two", web graphs have
//! huge identical-node groups, etc. These statistics feed Table I style
//! summaries and the generators' self-checks.

use crate::{CsrGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Count of degree-1 vertices.
    pub deg1: usize,
    /// Count of degree-2 vertices.
    pub deg2: usize,
    /// Count of degree-3 vertices.
    pub deg3: usize,
    /// Count of degree-4 vertices.
    pub deg4: usize,
}

impl DegreeStats {
    /// Fraction of vertices with degree one or two — the paper's headline
    /// statistic for chain-reduction potential.
    pub fn low_degree_fraction(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        (self.deg1 + self.deg2) as f64 / self.num_nodes as f64
    }
}

/// Computes [`DegreeStats`] in one pass.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_nodes();
    let mut s = DegreeStats {
        num_nodes: n,
        num_edges: g.num_edges(),
        min: usize::MAX,
        ..Default::default()
    };
    if n == 0 {
        s.min = 0;
        return s;
    }
    for v in 0..n as NodeId {
        let d = g.degree(v);
        s.min = s.min.min(d);
        s.max = s.max.max(d);
        match d {
            1 => s.deg1 += 1,
            2 => s.deg2 += 1,
            3 => s.deg3 += 1,
            4 => s.deg4 += 1,
            _ => {}
        }
    }
    s.mean = 2.0 * g.num_edges() as f64 / n as f64;
    s
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.num_nodes() as NodeId {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn star_stats() {
        // Star K_{1,4}: centre degree 4, leaves degree 1.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.deg1, 4);
        assert_eq!(s.deg4, 1);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert!((s.low_degree_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn histogram_matches_counts() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 2, 3]);
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&CsrGraph::empty());
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.low_degree_fraction(), 0.0);
    }

    #[test]
    fn isolated_vertex_counts_degree_zero() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        let h = degree_histogram(&g);
        assert_eq!(h[0], 1);
    }
}
