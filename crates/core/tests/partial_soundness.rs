//! Property tests for the fault-tolerance contract: an estimate produced
//! under an interrupting `RunControl` — whatever subset of BFS sources
//! actually completed — must still satisfy every soundness invariant of a
//! complete run.
//!
//! The key property: `lower_bounds()` never exceeds the true farness. The
//! per-source interruption protocol (a source either runs to completion and
//! contributes everywhere, or is skipped and contributes nowhere, with
//! coverage counting only completed sources) is exactly what makes this
//! hold for *any* completed prefix; thread timing varies which prefix each
//! run produces, and the property must hold for all of them.

use brics::{
    exact_farness, BricsEstimator, CancelToken, ExecutionContext, Method, RunControl, SampleSize,
};
use brics_graph::generators::gnm_random_connected;
use proptest::prelude::*;
use std::time::Duration;

/// A small connected graph, an estimation method, a sampling rate and a
/// deadline in the microsecond range — short enough to interrupt most runs
/// mid-flight, long enough that some sources usually complete.
fn scenario() -> impl Strategy<Value = (usize, usize, u64, u8, f64, u64)> {
    (
        10usize..120,   // vertices
        0usize..160,    // extra edges beyond the connecting tree
        0u64..1000,     // graph seed
        0u8..4,         // method selector
        0.1f64..1.0,    // sampling rate
        0u64..300,      // deadline in microseconds
    )
}

fn method_of(sel: u8) -> Method {
    match sel {
        0 => Method::RandomSampling,
        1 => Method::CR,
        2 => Method::ICR,
        _ => Method::Cumulative,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partial estimate's lower bounds stay below the exact farness,
    /// and its sampled sources carry their exact value.
    #[test]
    fn partial_lower_bounds_never_exceed_exact(
        (n, extra, seed, msel, rate, deadline_us) in scenario()
    ) {
        let g = gnm_random_connected(n, n - 1 + extra, seed);
        let exact = exact_farness(&g).unwrap();
        let est = BricsEstimator::new(method_of(msel))
            .sample(SampleSize::Fraction(rate))
            .seed(seed)
            .run_in(
                &g,
                &ExecutionContext::new().with_control(
                    RunControl::new().with_timeout(Duration::from_micros(deadline_us)),
                ),
            )
            .unwrap();
        let lb = est.lower_bounds();
        for v in 0..g.num_nodes() {
            prop_assert!(
                lb[v] <= exact[v],
                "vertex {v}: lower bound {} > exact {} (outcome {:?}, {} sources)",
                lb[v], exact[v], est.outcome(), est.num_sources()
            );
            if est.is_sampled(v as u32) {
                prop_assert_eq!(
                    est.raw()[v], exact[v],
                    "sampled vertex {} must be exact (outcome {:?})", v, est.outcome()
                );
            }
        }
        // Coverage must never claim more than a complete run could deliver,
        // and a vertex no completed source reached must carry no mass.
        for (v, (&c, &r)) in est.coverage().iter().zip(est.raw()).enumerate() {
            prop_assert!((c as usize) < g.num_nodes());
            if c == 0 && !est.is_sampled(v as u32) {
                prop_assert_eq!(r, 0, "vertex {} has distance mass but zero coverage", v);
            }
        }
    }

    /// Cancellation before the run starts yields the trivial partial
    /// estimate: zero completed sources, zero coverage — and its bounds are
    /// still sound (n − 1 per vertex on a connected graph).
    #[test]
    fn cancelled_runs_degrade_to_trivial_bounds(
        (n, extra, seed, msel, rate, _) in scenario()
    ) {
        let g = gnm_random_connected(n, n - 1 + extra, seed);
        let ctl = RunControl::new();
        let token: CancelToken = ctl.cancel_token();
        token.cancel();
        let est = BricsEstimator::new(method_of(msel))
            .sample(SampleSize::Fraction(rate))
            .seed(seed)
            .run_in(&g, &ExecutionContext::new().with_control(ctl))
            .unwrap();
        prop_assert!(est.is_partial());
        prop_assert_eq!(est.num_sources(), 0);
        let exact = exact_farness(&g).unwrap();
        for (lb, &x) in est.lower_bounds().into_iter().zip(&exact) {
            prop_assert!(lb <= x);
        }
    }
}
