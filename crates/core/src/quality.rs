//! Estimate quality metrics (paper §IV-C1).
//!
//! `AR(v) = farness_estimated(v) / farness_actual(v)` and
//! `Quality = (Σ_v AR(v)) / n`. The paper's estimates are unscaled partial
//! sums, so `AR(v) ∈ [0, 1]` and higher is better (1.0 = exact everywhere).

/// Approximation ratio of a single vertex. Vertices with actual farness 0
/// (only possible when `n == 1`) report 1.0.
pub fn approximation_ratio(estimated: u64, actual: u64) -> f64 {
    if actual == 0 {
        1.0
    } else {
        estimated as f64 / actual as f64
    }
}

/// Mean approximation ratio over all vertices — the paper's "Quality".
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn quality(estimated: &[u64], actual: &[u64]) -> f64 {
    assert_eq!(estimated.len(), actual.len(), "length mismatch");
    if estimated.is_empty() {
        return 1.0;
    }
    let sum: f64 = estimated
        .iter()
        .zip(actual)
        .map(|(&e, &a)| approximation_ratio(e, a))
        .sum();
    sum / estimated.len() as f64
}

/// Quality of a scaled (`f64`) estimate, measured as the mean of
/// `min(est, actual) / max(est, actual)` so over-estimates are penalised
/// symmetrically. Used for the scaled-estimator ablation.
pub fn symmetric_quality(estimated: &[f64], actual: &[u64]) -> f64 {
    assert_eq!(estimated.len(), actual.len(), "length mismatch");
    if estimated.is_empty() {
        return 1.0;
    }
    let sum: f64 = estimated
        .iter()
        .zip(actual)
        .map(|(&e, &a)| {
            let a = a as f64;
            if a == 0.0 && e == 0.0 {
                1.0
            } else {
                let (lo, hi) = if e < a { (e, a) } else { (a, e) };
                if hi == 0.0 {
                    1.0
                } else {
                    (lo / hi).max(0.0)
                }
            }
        })
        .sum();
    sum / estimated.len() as f64
}

/// Mean absolute percentage error of a scaled estimate — the "average error
/// percentage" view the paper's abstract mentions.
pub fn mean_error_percent(estimated: &[f64], actual: &[u64]) -> f64 {
    assert_eq!(estimated.len(), actual.len(), "length mismatch");
    if estimated.is_empty() {
        return 0.0;
    }
    let sum: f64 = estimated
        .iter()
        .zip(actual)
        .map(|(&e, &a)| {
            if a == 0 {
                0.0
            } else {
                ((e - a as f64) / a as f64).abs()
            }
        })
        .sum();
    100.0 * sum / estimated.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_basics() {
        assert_eq!(approximation_ratio(5, 10), 0.5);
        assert_eq!(approximation_ratio(10, 10), 1.0);
        assert_eq!(approximation_ratio(3, 0), 1.0);
    }

    #[test]
    fn quality_averages() {
        assert_eq!(quality(&[5, 10], &[10, 10]), 0.75);
        assert_eq!(quality(&[], &[]), 1.0);
        assert_eq!(quality(&[7, 7], &[7, 7]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn quality_checks_lengths() {
        quality(&[1], &[1, 2]);
    }

    #[test]
    fn symmetric_penalises_overestimates() {
        let q = symmetric_quality(&[20.0], &[10]);
        assert!((q - 0.5).abs() < 1e-12);
        let q = symmetric_quality(&[5.0], &[10]);
        assert!((q - 0.5).abs() < 1e-12);
        assert_eq!(symmetric_quality(&[0.0], &[0]), 1.0);
    }

    #[test]
    fn error_percent() {
        let e = mean_error_percent(&[9.0, 11.0], &[10, 10]);
        assert!((e - 10.0).abs() < 1e-9);
        assert_eq!(mean_error_percent(&[], &[]), 0.0);
    }
}
