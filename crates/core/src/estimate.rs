//! The estimator output type.

use brics_graph::RunOutcome;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Farness estimates for every vertex of a graph.
///
/// Estimates follow the paper's semantics (§II-A): a vertex that served as a
/// BFS source has its farness computed *exactly*; any other vertex carries
/// the partial sum of its distances to the sampled sources. The
/// [`FarnessEstimate::scaled`] view additionally applies the
/// Eppstein–Wang-style expansion `(population − 1) / samples` to the partial
/// sums, an extension the paper does not use but which makes estimates
/// magnitude-comparable with exact values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FarnessEstimate {
    /// Raw estimate per vertex (paper semantics; unscaled partial sums).
    raw: Vec<u64>,
    /// Scaled estimate per vertex.
    scaled: Vec<f64>,
    /// Whether each vertex was a BFS source (its raw value is then exact;
    /// in the cumulative method removed/reconstructed vertices are never
    /// sources but cut vertices always are).
    sampled: Vec<bool>,
    /// How many of the other `n - 1` vertices contributed distance mass to
    /// each vertex's raw value (`n - 1` ⇒ the raw value is exact). Every
    /// uncovered vertex is at distance ≥ 1, which makes
    /// [`FarnessEstimate::lower_bounds`] sound.
    coverage: Vec<u32>,
    /// Total number of BFS sources that actually *completed*. On an
    /// interrupted run this is smaller than the number scheduled, and
    /// `coverage`/`raw` reflect only those completed sources — which keeps
    /// [`FarnessEstimate::lower_bounds`] sound even for partial results.
    num_sources: usize,
    /// Wall-clock time of the estimation run.
    elapsed: Duration,
    /// Whether the run completed or stopped early (deadline/cancellation).
    outcome: RunOutcome,
}

impl FarnessEstimate {
    /// Assembles an estimate. `scaled` may equal the raw values cast to
    /// `f64` when an estimator does not support expansion.
    pub(crate) fn new(
        raw: Vec<u64>,
        scaled: Vec<f64>,
        sampled: Vec<bool>,
        coverage: Vec<u32>,
        num_sources: usize,
        elapsed: Duration,
        outcome: RunOutcome,
    ) -> Self {
        debug_assert_eq!(raw.len(), scaled.len());
        debug_assert_eq!(raw.len(), sampled.len());
        debug_assert_eq!(raw.len(), coverage.len());
        Self { raw, scaled, sampled, coverage, num_sources, elapsed, outcome }
    }

    /// Raw farness estimates (paper semantics).
    pub fn raw(&self) -> &[u64] {
        &self.raw
    }

    /// Scaled farness estimates.
    pub fn scaled(&self) -> &[f64] {
        &self.scaled
    }

    /// Whether vertex `v` was a BFS source (estimate is exact).
    pub fn is_sampled(&self, v: u32) -> bool {
        self.sampled[v as usize]
    }

    /// Per-vertex sampled mask.
    pub fn sampled_mask(&self) -> &[bool] {
        &self.sampled
    }

    /// Per-vertex coverage: how many of the other vertices contributed
    /// distance mass to the raw value (`n - 1` ⇒ exact).
    pub fn coverage(&self) -> &[u32] {
        &self.coverage
    }

    /// Sound per-vertex **lower bounds** on the true farness:
    /// `raw(v) + (n − 1 − coverage(v))` — the raw partial sum plus one hop
    /// for every vertex it has not seen. Exact for fully-covered vertices.
    /// These bounds drive the exact top-k pruning in [`crate::topk`].
    pub fn lower_bounds(&self) -> Vec<u64> {
        let n = self.raw.len() as u64;
        self.raw
            .iter()
            .zip(&self.coverage)
            .map(|(&r, &c)| r + (n - 1).saturating_sub(c as u64))
            .collect()
    }

    /// Number of BFS sources that completed.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Whether the run completed or was interrupted (and why).
    pub fn outcome(&self) -> RunOutcome {
        self.outcome
    }

    /// Merges a later outcome into the recorded one (degradation-ladder
    /// bookkeeping: a clean sweep answering below the requested rung is
    /// still a degraded answer).
    pub(crate) fn merge_outcome(&mut self, later: RunOutcome) {
        self.outcome = self.outcome.merge(later);
    }

    /// `true` when the run stopped early and the estimate covers only the
    /// sources that completed before the interruption.
    pub fn is_partial(&self) -> bool {
        !self.outcome.is_complete()
    }

    /// Wall-clock estimation time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the estimate covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Closeness view of the estimates: `1 / farness` over the **scaled**
    /// values, with `0.0` for vertices of farness 0 (single-vertex graphs).
    ///
    /// Raw values are not comparable across the sampled/unsampled divide —
    /// a non-source carries only a partial sum over the `k` sources, so
    /// inverting it would overstate its closeness by roughly `(n − 1) / k`
    /// relative to the sources' exact values. The scaled view applies that
    /// expansion, making every entry magnitude-comparable.
    pub fn closeness(&self) -> Vec<f64> {
        self.scaled
            .iter()
            .map(|&f| if f <= 0.0 { 0.0 } else { 1.0 / f })
            .collect()
    }

    /// The `k` most central vertices (smallest farness, highest closeness),
    /// ranked by the sound per-vertex [`Self::lower_bounds`], ties broken
    /// by vertex id.
    ///
    /// Ranking raw values directly would be wrong in exactly the way the
    /// bounds fix: a BFS source holds its *exact* farness while everyone
    /// else holds a small partial sum, so sources — including a graph's
    /// true centre — would systematically sink to the bottom. The lower
    /// bound adds one hop per uncovered vertex, putting both groups on a
    /// common scale (and reducing to the exact ranking at full coverage).
    pub fn top_k_central(&self, k: usize) -> Vec<u32> {
        let bounds = self.lower_bounds();
        let mut idx: Vec<u32> = (0..self.raw.len() as u32).collect();
        idx.sort_by_key(|&v| (bounds[v as usize], v));
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(raw: Vec<u64>) -> FarnessEstimate {
        let scaled = raw.iter().map(|&x| x as f64).collect();
        let n = raw.len();
        FarnessEstimate::new(
            raw,
            scaled,
            vec![false; n],
            vec![0; n],
            0,
            Duration::ZERO,
            RunOutcome::Complete,
        )
    }

    #[test]
    fn lower_bounds_add_uncovered_hops() {
        // n = 3; vertex 0 fully covered (exact), vertex 1 saw 1 of 2 others.
        let e = FarnessEstimate::new(
            vec![10, 4, 0],
            vec![10.0, 4.0, 0.0],
            vec![true, false, false],
            vec![2, 1, 0],
            1,
            Duration::ZERO,
            RunOutcome::Complete,
        );
        assert_eq!(e.lower_bounds(), vec![10, 5, 2]);
    }

    #[test]
    fn closeness_inverts() {
        let e = est(vec![4, 2, 0]);
        assert_eq!(e.closeness(), vec![0.25, 0.5, 0.0]);
    }

    #[test]
    fn top_k_orders_by_farness() {
        let e = est(vec![9, 3, 7, 3]);
        assert_eq!(e.top_k_central(3), vec![1, 3, 2]);
        assert_eq!(e.top_k_central(0), Vec::<u32>::new());
        assert_eq!(e.top_k_central(10).len(), 4);
    }

    /// K_{1,4} star, hub 0, sampled sources {0, 1} of k = 2. Exact farness:
    /// hub 4, leaves 7. Non-source leaves hold the partial sum
    /// d(0,v) + d(1,v) = 3 with coverage 2.
    fn star_with_hub_sampled() -> FarnessEstimate {
        FarnessEstimate::new(
            vec![4, 7, 3, 3, 3],
            vec![4.0, 7.0, 6.0, 6.0, 6.0], // partials expanded by (n-1)/k = 2
            vec![true, true, false, false, false],
            vec![4, 4, 2, 2, 2],
            2,
            Duration::ZERO,
            RunOutcome::Complete,
        )
    }

    #[test]
    fn top_k_ranks_sampled_hub_above_partial_leaves() {
        // Regression: ranking by raw would order the unsampled leaves (raw 3)
        // ahead of the hub (exact raw 4), burying the true centre. The lower
        // bounds (hub 4, leaves 3 + 2 = 5, source leaf 7) restore it.
        let e = star_with_hub_sampled();
        assert_eq!(e.top_k_central(1), vec![0]);
        assert_eq!(e.top_k_central(5), vec![0, 2, 3, 4, 1]);
    }

    #[test]
    fn closeness_is_comparable_across_the_sampled_divide() {
        // Regression: inverting raw partial sums gave unsampled leaves
        // closeness 1/3, above the hub's exact 1/4 — an overestimate by
        // ~(n-1)/k. From the scaled view the hub is the closest vertex.
        let e = star_with_hub_sampled();
        let c = e.closeness();
        assert_eq!(c[0], 0.25);
        for leaf in 2..5 {
            assert!(
                c[leaf] < c[0],
                "unsampled leaf {leaf} ({}) must not beat the exact hub ({})",
                c[leaf],
                c[0]
            );
            assert!((c[leaf] - 1.0 / 6.0).abs() < 1e-12);
        }
        assert!((c[1] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let e = FarnessEstimate::new(
            vec![1, 2],
            vec![1.0, 2.0],
            vec![true, false],
            vec![1, 1],
            1,
            Duration::from_millis(5),
            RunOutcome::Complete,
        );
        assert!(e.is_sampled(0));
        assert!(!e.is_sampled(1));
        assert_eq!(e.num_sources(), 1);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.elapsed(), Duration::from_millis(5));
        assert_eq!(e.outcome(), RunOutcome::Complete);
        assert!(!e.is_partial());
        let partial = FarnessEstimate::new(
            vec![0],
            vec![0.0],
            vec![false],
            vec![0],
            0,
            Duration::ZERO,
            RunOutcome::Deadline,
        );
        assert!(partial.is_partial());
        assert_eq!(partial.outcome(), RunOutcome::Deadline);
    }
}
