//! Graceful degradation: quarantine-and-retry sampling plus the quality
//! ladder that answers a query with *something sound* when the run trips.
//!
//! The ladder has three rungs, walked top to bottom until one produces an
//! estimate:
//!
//! 1. **The requested estimate.** For random sampling this already runs
//!    through the resilient sweep below, so a worker panic quarantines one
//!    source and retries it (bounded by
//!    [`DegradationPolicy::max_retries`], with linear backoff) instead of
//!    failing the query; when the retries succeed the result is
//!    bit-identical to a fault-free run, because per-source contributions
//!    are buffered and only published after a source's BFS completes.
//! 2. **Reduced-rate sampling** on the prepared working graph at
//!    [`DegradationPolicy::fallback_rate`]. When rung 1 was itself a
//!    sampling run, the fallback sources are a *prefix* of rung 1's sorted
//!    source set, so every per-vertex value is dominated by the fault-free
//!    value; otherwise a fresh seeded draw is used (still a sound lower
//!    bound on exact farness).
//! 3. **Already-accumulated partial lower bounds.** The trivial
//!    zero-coverage estimate: every raw value is `0`, every lower bound
//!    `n − 1`. Sound on a connected graph, and the honest answer when
//!    nothing else ran to completion.
//!
//! Hard errors — empty graph, disconnected graph, a sampling spec that
//! resolves to zero sources — propagate immediately: no rung can answer
//! those. Soft errors (worker panics, memory denial, deadline expiry on
//! all-or-nothing computations) step down one rung.
//!
//! The ladder reuses the [`PreparedGraph`] artifact: no re-reduction, no
//! re-decomposition. It is armed via
//! [`ExecutionContext::with_degradation`] and run through
//! [`run_degraded`]; the CLI exposes it as `--degrade`.

use crate::config::{Method, SampleSize};
use crate::engine::{zero_coverage_estimate, ExecutionContext, PreparedGraph};
use crate::sampling::draw_sources;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::telemetry::{admit_memory_rec, record_outcome, timed, Counter, Recorder};
use brics_graph::traversal::{par_bfs_accumulate_isolated_rec, KernelConfig};
use brics_graph::{CsrGraph, NodeId, RunControl, RunOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Tunables for the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationPolicy {
    /// How many times a quarantined source (or a panicked prepare stage) is
    /// retried before the run gives up on it.
    pub max_retries: u32,
    /// Base sleep between retry rounds; round `i` sleeps `i × backoff`.
    pub backoff: Duration,
    /// Sampling rate (fraction of `n`) used by the fallback rung.
    pub fallback_rate: f64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self { max_retries: 2, backoff: Duration::from_millis(1), fallback_rate: 0.1 }
    }
}

impl DegradationPolicy {
    /// Sets the retry bound for quarantined sources.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base backoff between retry rounds.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the fallback rung's sampling rate, clamped to `(0, 1]`.
    pub fn with_fallback_rate(mut self, rate: f64) -> Self {
        self.fallback_rate = if rate.is_finite() { rate.clamp(f64::MIN_POSITIVE, 1.0) } else { 0.1 };
        self
    }

    /// The fallback rung's source count on an `n`-vertex graph: at least
    /// one, at most `n`.
    pub fn fallback_k(&self, n: usize) -> usize {
        ((n as f64 * self.fallback_rate).ceil() as usize).clamp(1, n.max(1))
    }
}

/// What [`run_degraded`] should try to answer at rung 1.
#[derive(Clone, Debug, PartialEq)]
pub enum DegradedRequest {
    /// Exact farness of every vertex (all-or-nothing at rung 1).
    Exact,
    /// One of the estimation methods.
    Estimate(Method),
}

impl DegradedRequest {
    fn label(&self) -> String {
        match self {
            DegradedRequest::Exact => "exact".to_string(),
            DegradedRequest::Estimate(m) => m.name().to_string(),
        }
    }
}

/// A ladder answer: the estimate plus the bookkeeping the run report and
/// the CLI exit code are stamped from.
#[derive(Clone, Debug)]
pub struct DegradedEstimate {
    /// The answering estimate (original-id order).
    pub estimate: FarnessEstimate,
    /// Name of the rung that produced [`DegradedEstimate::estimate`]:
    /// the requested method's name, `"sampling@<rate>"`, or
    /// `"partial-lower-bounds"`.
    pub answered_by: String,
    /// Every rung entered, in order; the last entry answered. Prepare-stage
    /// fallbacks (`"reduce:skipped"`, `"bct:skipped"`) are prepended.
    pub path: Vec<String>,
    /// Sources re-attempted after quarantine during the ladder's sweeps.
    pub retries: u64,
    /// Sources permanently quarantined (still panicking after the retry
    /// budget).
    pub quarantined: usize,
    /// Whether the answer is weaker than the request: a lower rung
    /// answered, sources stayed quarantined, or the prepare stage fell
    /// back. A fully recovered run (retries that succeeded) is *not*
    /// degraded — it is bit-identical to the fault-free run.
    pub degraded: bool,
}

/// Outcome of one resilient sweep (crate-internal plumbing).
pub(crate) struct ResilientRun {
    pub(crate) estimate: FarnessEstimate,
    pub(crate) retries: u64,
    pub(crate) quarantined: usize,
}

/// Quarantine-and-retry accumulation sweep over an explicit source set.
///
/// Runs the panic-isolating driver, retries quarantined sources up to
/// `policy.max_retries` times with linear backoff, and gives up on the
/// stragglers by merging [`RunOutcome::Degraded`] into the outcome. The
/// accumulator only ever holds contributions of *completed* sources, so
/// retried sources publish exactly once and a fully recovered sweep is
/// bit-identical to a fault-free one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resilient_sources_query<R: Recorder>(
    g: &CsrGraph,
    sources: &[NodeId],
    admit_bytes: u64,
    policy: &DegradationPolicy,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<ResilientRun, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    if sources.is_empty() {
        return Err(CentralityError::NoSamples);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let start = Instant::now();
    let mut acc = vec![0u64; n];
    let mut rows: Vec<Option<(usize, u64)>> = vec![None; sources.len()];
    let mut outcome = RunOutcome::Complete;
    let mut retries = 0u64;
    let mut quarantined = 0usize;
    let mut pending: Vec<usize> = (0..sources.len()).collect();
    let mut round = 0u32;
    loop {
        let subset: Vec<NodeId> = pending.iter().map(|&i| sources[i]).collect();
        let run = timed(rec, "sampling.bfs", || {
            par_bfs_accumulate_isolated_rec(g, &subset, &mut acc, ctl, kcfg, rec)
        });
        for (j, row) in run.per_source.iter().enumerate() {
            if row.is_some() {
                rows[pending[j]] = *row;
            }
        }
        outcome = outcome.merge(run.outcome);
        let failed: Vec<usize> = run.quarantined.iter().map(|&j| pending[j]).collect();
        if failed.is_empty() {
            break;
        }
        if outcome.is_interrupted() || round >= policy.max_retries {
            // Give up on the stragglers; the answer is sound without them,
            // just weaker.
            quarantined = failed.len();
            if rec.enabled() {
                rec.add(Counter::SourcesQuarantined, failed.len() as u64);
            }
            outcome = outcome.merge(RunOutcome::Degraded);
            break;
        }
        round += 1;
        retries += failed.len() as u64;
        if rec.enabled() {
            rec.add(Counter::FaultRetries, failed.len() as u64);
        }
        if !policy.backoff.is_zero() {
            std::thread::sleep(policy.backoff * round);
        }
        pending = failed;
    }
    record_outcome(rec, outcome, "resilient sampling sweep");
    if rows.iter().flatten().any(|&(reached, _)| reached != n) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }
    let estimate = crate::engine::assemble_flat(n, acc, sources, &rows, 0, start, outcome);
    Ok(ResilientRun { estimate, retries, quarantined })
}

/// Whether no ladder rung can answer after this error.
fn is_hard(e: &CentralityError) -> bool {
    matches!(
        e,
        CentralityError::EmptyGraph
            | CentralityError::Disconnected { .. }
            | CentralityError::NoSamples
    )
}

/// Builds the full-coverage estimate the exact query degenerates to.
fn exact_estimate(raw: Vec<u64>, start: Instant) -> FarnessEstimate {
    let n = raw.len();
    let scaled: Vec<f64> = raw.iter().map(|&x| x as f64).collect();
    FarnessEstimate::new(
        raw,
        scaled,
        vec![true; n],
        vec![n.saturating_sub(1) as u32; n],
        n,
        start.elapsed(),
        RunOutcome::Complete,
    )
}

/// Runs a query through the degradation ladder against a prepared
/// artifact. See the module docs for the rung semantics.
///
/// The policy comes from [`ExecutionContext::with_degradation`];
/// [`DegradationPolicy::default`] is used when none is armed.
pub fn run_degraded<R: Recorder>(
    p: &PreparedGraph<'_>,
    request: &DegradedRequest,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<DegradedEstimate, CentralityError> {
    let policy = ctx.degradation().copied().unwrap_or_default();
    let rec = ctx.recorder();
    let n = p.original().num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let start = Instant::now();
    let mut path: Vec<String> = p.prepare_degradation().to_vec();
    let mut degraded = !path.is_empty();
    let mut seen = RunOutcome::Complete;

    // ---- Rung 1: the requested estimate --------------------------------
    let rung1_label = request.label();
    path.push(rung1_label.clone());
    let mut rung1_sources: Option<Vec<NodeId>> = None;
    let rung1 = match request {
        DegradedRequest::Exact => p.exact(ctx).map(|raw| ResilientRun {
            estimate: exact_estimate(raw, start),
            retries: 0,
            quarantined: 0,
        }),
        DegradedRequest::Estimate(Method::RandomSampling) => {
            let k = sample.resolve(n);
            if k == 0 {
                return Err(CentralityError::NoSamples);
            }
            let srcs = draw_sources(n, k, &mut StdRng::seed_from_u64(seed));
            let r = p.resilient_on(&srcs, &policy, ctx);
            rung1_sources = Some(srcs);
            r
        }
        DegradedRequest::Estimate(m) => {
            let est = if m.uses_bcc() {
                p.cumulative(sample, seed, ctx)
            } else {
                p.reduced(sample, seed, ctx)
            };
            est.map(|estimate| ResilientRun { estimate, retries: 0, quarantined: 0 })
        }
    };
    match rung1 {
        Ok(r) => {
            let mut answered_by = rung1_label;
            if r.quarantined > 0 {
                degraded = true;
            }
            if r.estimate.outcome().is_interrupted() {
                // The partial accumulation *is* the bottom rung's artifact:
                // sound lower bounds from whatever finished before the stop.
                answered_by = "partial-lower-bounds".to_string();
                path.push(answered_by.clone());
                degraded = true;
            }
            return Ok(DegradedEstimate {
                estimate: r.estimate,
                answered_by,
                path,
                retries: r.retries,
                quarantined: r.quarantined,
                degraded,
            });
        }
        Err(e) if is_hard(&e) => return Err(e),
        Err(e) => {
            if let CentralityError::Interrupted { outcome } = &e {
                seen = seen.merge(*outcome);
            }
            if rec.enabled() {
                rec.event("degrade", &format!("rung 1 failed ({e}); falling back to sampling"));
            }
        }
    }

    // ---- Rung 2: reduced-rate sampling on the working graph ------------
    degraded = true;
    let rung2_label = format!("sampling@{}", policy.fallback_rate);
    path.push(rung2_label.clone());
    let k2 = policy.fallback_k(n);
    let srcs2: Vec<NodeId> = match rung1_sources {
        // Prefix of the rung-1 draw: every per-vertex sum is dominated by
        // the fault-free run's value.
        Some(s1) if !s1.is_empty() => s1[..k2.min(s1.len())].to_vec(),
        _ => draw_sources(n, k2, &mut StdRng::seed_from_u64(seed.rotate_left(17) ^ 0x9e37_79b9)),
    };
    match p.resilient_on(&srcs2, &policy, ctx) {
        Ok(mut r) => {
            // A lower rung answered: the result is degraded relative to the
            // request even when the sweep itself ran clean.
            r.estimate.merge_outcome(RunOutcome::Degraded);
            let mut answered_by = rung2_label;
            if r.estimate.outcome().is_interrupted() && r.estimate.num_sources() == 0 {
                answered_by = "partial-lower-bounds".to_string();
                path.push(answered_by.clone());
            }
            Ok(DegradedEstimate {
                estimate: r.estimate,
                answered_by,
                path,
                retries: r.retries,
                quarantined: r.quarantined,
                degraded,
            })
        }
        Err(e) if is_hard(&e) => Err(e),
        Err(e) => {
            if let CentralityError::Interrupted { outcome } = &e {
                seen = seen.merge(*outcome);
            }
            if rec.enabled() {
                rec.event("degrade", &format!("rung 2 failed ({e}); answering with zero coverage"));
            }
            // ---- Rung 3: the trivial sound answer ----------------------
            let answered_by = "partial-lower-bounds".to_string();
            path.push(answered_by.clone());
            let outcome = RunOutcome::Degraded.merge(seen);
            Ok(DegradedEstimate {
                estimate: zero_coverage_estimate(n, start, outcome),
                answered_by,
                path,
                retries: 0,
                quarantined: 0,
                degraded,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PrepareConfig;
    use crate::exact_farness;
    use brics_graph::generators::{cycle_graph, gnm_random_connected};
    use brics_graph::FaultPlan;

    fn req_random() -> DegradedRequest {
        DegradedRequest::Estimate(Method::RandomSampling)
    }

    fn no_bcc() -> PrepareConfig {
        PrepareConfig { use_bcc: false, ..Default::default() }
    }

    fn faulted_ctx(spec: &str) -> ExecutionContext<'static> {
        ExecutionContext::new()
            .with_control(RunControl::new().with_fault_plan(FaultPlan::parse(spec).unwrap()))
            .with_degradation(DegradationPolicy::default().with_backoff(Duration::ZERO))
    }

    #[test]
    fn faultless_ladder_is_bit_identical_to_direct_query() {
        let g = gnm_random_connected(80, 140, 7);
        let ctx = ExecutionContext::new();
        let p = PreparedGraph::build_with(&g, no_bcc(), &ctx).unwrap();
        let direct = p.sample(SampleSize::Count(12), 5, &ctx).unwrap();
        let d = run_degraded(&p, &req_random(), SampleSize::Count(12), 5, &ctx).unwrap();
        assert_eq!(d.estimate.raw(), direct.raw());
        assert_eq!(d.estimate.scaled(), direct.scaled());
        assert!(!d.degraded);
        assert_eq!(d.answered_by, "random");
        assert_eq!(d.path, ["random"]);
        assert_eq!((d.retries, d.quarantined), (0, 0));
    }

    #[test]
    fn quarantined_source_retries_to_bit_identical_result() {
        let g = gnm_random_connected(60, 100, 3);
        let clean_ctx = ExecutionContext::new();
        let p = PreparedGraph::build_with(&g, no_bcc(), &clean_ctx).unwrap();
        let clean = run_degraded(&p, &req_random(), SampleSize::Count(10), 5, &clean_ctx).unwrap();
        let ctx = faulted_ctx("bfs.source=panic@nth:1");
        let d = run_degraded(&p, &req_random(), SampleSize::Count(10), 5, &ctx).unwrap();
        assert!(d.retries >= 1);
        assert_eq!(d.quarantined, 0);
        assert!(!d.degraded);
        assert!(d.estimate.outcome().is_complete());
        assert_eq!(d.estimate.raw(), clean.estimate.raw());
        assert_eq!(d.estimate.scaled(), clean.estimate.scaled());
    }

    #[test]
    fn unrecoverable_source_is_quarantined_and_degrades() {
        let g = cycle_graph(40);
        let p = PreparedGraph::build_with(&g, no_bcc(), &ExecutionContext::new()).unwrap();
        let victim = draw_sources(40, 6, &mut StdRng::seed_from_u64(5))[0];
        let ctx = faulted_ctx(&format!("bfs.source=panic@on:{victim}"));
        let d = run_degraded(&p, &req_random(), SampleSize::Count(6), 5, &ctx).unwrap();
        assert_eq!(d.quarantined, 1);
        assert!(d.degraded);
        assert_eq!(d.retries, u64::from(DegradationPolicy::default().max_retries));
        assert_eq!(d.estimate.outcome(), RunOutcome::Degraded);
        assert!(!d.estimate.is_sampled(victim));
        let exact = exact_farness(&g).unwrap();
        for (lb, ex) in d.estimate.raw().iter().zip(&exact) {
            assert!(lb <= ex);
        }
    }

    #[test]
    fn memory_denial_falls_back_to_reduced_rate_sampling() {
        let g = gnm_random_connected(100, 180, 9);
        let clean_ctx = ExecutionContext::new();
        let p = PreparedGraph::build_with(&g, no_bcc(), &clean_ctx).unwrap();
        let clean = p.sample(SampleSize::Count(40), 11, &clean_ctx).unwrap();
        let ctx = faulted_ctx("alloc.admit=mem-deny");
        let d = run_degraded(&p, &req_random(), SampleSize::Count(40), 11, &ctx).unwrap();
        assert!(d.degraded);
        assert_eq!(d.answered_by, "sampling@0.1");
        assert_eq!(d.path, ["random", "sampling@0.1"]);
        assert_eq!(d.estimate.outcome(), RunOutcome::Degraded);
        assert!(d.estimate.num_sources() > 0);
        // Fallback sources are a prefix of the rung-1 draw, so every
        // per-vertex value is dominated by the fault-free run's.
        for (a, b) in d.estimate.raw().iter().zip(clean.raw()) {
            assert!(a <= b);
        }
    }

    #[test]
    fn expired_deadline_walks_down_to_partial_lower_bounds() {
        let g = cycle_graph(30);
        let p = PreparedGraph::build_with(&g, no_bcc(), &ExecutionContext::new()).unwrap();
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(Duration::ZERO))
            .with_degradation(DegradationPolicy::default());
        let d = run_degraded(&p, &DegradedRequest::Exact, SampleSize::Count(5), 1, &ctx).unwrap();
        assert_eq!(d.answered_by, "partial-lower-bounds");
        assert_eq!(d.path, ["exact", "sampling@0.1", "partial-lower-bounds"]);
        assert!(d.estimate.outcome().is_interrupted());
        assert!(d.estimate.lower_bounds().iter().all(|&b| b == 29));
    }

    #[test]
    fn mid_run_deadline_fault_answers_with_accumulated_partials() {
        let g = cycle_graph(50);
        let p = PreparedGraph::build_with(&g, no_bcc(), &ExecutionContext::new()).unwrap();
        let ctx = faulted_ctx("bfs.source=deadline-expire@nth:3");
        let d = run_degraded(&p, &req_random(), SampleSize::Count(10), 2, &ctx).unwrap();
        assert_eq!(d.answered_by, "partial-lower-bounds");
        assert_eq!(d.path, ["random", "partial-lower-bounds"]);
        assert!(d.estimate.outcome().is_interrupted());
        let exact = exact_farness(&g).unwrap();
        for (lb, ex) in d.estimate.raw().iter().zip(&exact) {
            assert!(lb <= ex);
        }
    }

    #[test]
    fn reduce_panic_degrades_prepare_to_unreduced_artifact() {
        let g = gnm_random_connected(50, 80, 2);
        let ctx = faulted_ctx("reduce.rule=panic@every:1");
        let p = PreparedGraph::build_with(&g, no_bcc(), &ctx).unwrap();
        assert_eq!(p.prepare_degradation(), ["reduce:skipped"]);
        assert_eq!(p.num_surviving(), g.num_nodes());
        let d = run_degraded(&p, &req_random(), SampleSize::Count(8), 1, &ctx).unwrap();
        assert!(d.degraded);
        assert_eq!(d.path, ["reduce:skipped", "random"]);
        assert_eq!(d.answered_by, "random");
    }

    #[test]
    fn reduce_panic_without_policy_is_a_plain_internal_error() {
        let g = gnm_random_connected(50, 80, 2);
        let ctx = ExecutionContext::new().with_control(
            RunControl::new()
                .with_fault_plan(FaultPlan::parse("reduce.rule=panic@every:1").unwrap()),
        );
        let e = PreparedGraph::build_with(&g, no_bcc(), &ctx).unwrap_err();
        assert!(matches!(e, CentralityError::Internal { .. }));
    }

    #[test]
    fn bct_build_panic_skips_bcc_and_cumulative_falls_through() {
        let g = gnm_random_connected(70, 120, 4);
        let ctx = faulted_ctx("bct.build=panic@every:1");
        let p = PreparedGraph::build_with(&g, PrepareConfig::default(), &ctx).unwrap();
        assert!(!p.has_bcc());
        assert_eq!(p.prepare_degradation(), ["bct:skipped"]);
        let d = run_degraded(
            &p,
            &DegradedRequest::Estimate(Method::Cumulative),
            SampleSize::Count(10),
            3,
            &ctx,
        )
        .unwrap();
        assert!(d.degraded);
        assert_eq!(d.answered_by, "sampling@0.1");
        assert_eq!(d.path, ["bct:skipped", "cumulative", "sampling@0.1"]);
        let exact = exact_farness(&g).unwrap();
        for (lb, ex) in d.estimate.raw().iter().zip(&exact) {
            assert!(lb <= ex);
        }
    }
}
