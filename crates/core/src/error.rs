//! Error type for the estimators.

use std::fmt;

/// Errors returned by the farness estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CentralityError {
    /// Farness is defined on connected graphs only (the paper preprocesses
    /// datasets into connected form; see
    /// `brics_graph::connectivity::make_connected`).
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
    /// A sampling specification resolved to zero sources.
    NoSamples,
}

impl fmt::Display for CentralityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CentralityError::Disconnected { components } => write!(
                f,
                "graph is disconnected ({components} components); farness requires a \
                 connected graph — consider brics_graph::connectivity::make_connected"
            ),
            CentralityError::EmptyGraph => write!(f, "graph has no vertices"),
            CentralityError::NoSamples => {
                write!(f, "sampling specification resolved to zero BFS sources")
            }
        }
    }
}

impl std::error::Error for CentralityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = CentralityError::Disconnected { components: 3 };
        assert!(e.to_string().contains("3 components"));
        assert!(e.to_string().contains("make_connected"));
        assert!(CentralityError::EmptyGraph.to_string().contains("no vertices"));
        assert!(CentralityError::NoSamples.to_string().contains("zero"));
    }
}
