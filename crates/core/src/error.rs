//! Error type for the estimators.

use brics_graph::control::MemoryBudgetExceeded;
use brics_graph::traversal::WorkerPanic;
use brics_graph::RunOutcome;
use std::fmt;

/// Errors returned by the farness estimators.
///
/// Marked `#[non_exhaustive]`: future fault classes (new resource budgets,
/// new interruption causes) must not break downstream `match`es.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CentralityError {
    /// Farness is defined on connected graphs only (the paper preprocesses
    /// datasets into connected form; see
    /// `brics_graph::connectivity::make_connected`).
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
    /// A sampling specification resolved to zero sources.
    NoSamples,
    /// A worker panicked. The run's shared state may be torn, so no partial
    /// estimate is produced — unlike deadline/cancellation, which interrupt
    /// only *between* sources.
    Internal {
        /// Panic payload rendered as text.
        detail: String,
    },
    /// The run's planned allocations exceed the configured memory budget.
    /// Raised up-front, before the large allocations happen.
    BudgetExceeded {
        /// Bytes the run would need.
        required_bytes: u64,
        /// The configured cap.
        budget_bytes: u64,
    },
    /// A prepared-graph artifact could not be written, or the file opened
    /// for loading is not a valid artifact (corrupt, truncated, foreign
    /// format/endianness, or an unsupported version). The artifact is
    /// *input* from the engine's point of view — the CLI maps this to the
    /// input-error exit code.
    Artifact {
        /// What failed, rendered as text.
        detail: String,
    },
    /// An all-or-nothing computation (e.g. [`crate::exact_farness`]) was
    /// interrupted by deadline or cancellation. Such computations cannot
    /// return sound partial results, so interruption is an error; sampling
    /// estimators instead return a partial [`crate::FarnessEstimate`]
    /// tagged with the outcome.
    Interrupted {
        /// Why the run stopped ([`RunOutcome::Deadline`] or
        /// [`RunOutcome::Cancelled`]).
        outcome: RunOutcome,
    },
}

impl fmt::Display for CentralityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CentralityError::Disconnected { components } => write!(
                f,
                "graph is disconnected ({components} components); farness requires a \
                 connected graph — consider brics_graph::connectivity::make_connected"
            ),
            CentralityError::EmptyGraph => write!(f, "graph has no vertices"),
            CentralityError::NoSamples => {
                write!(f, "sampling specification resolved to zero BFS sources")
            }
            CentralityError::Internal { detail } => {
                write!(f, "internal error: worker panicked: {detail}")
            }
            CentralityError::BudgetExceeded { required_bytes, budget_bytes } => write!(
                f,
                "memory budget exceeded: run needs {required_bytes} bytes but the \
                 budget is {budget_bytes} bytes — raise the budget or reduce the \
                 sample/block size"
            ),
            CentralityError::Artifact { detail } => write!(
                f,
                "prepared-graph artifact error: {detail} — regenerate the file with \
                 `brics prepare`"
            ),
            CentralityError::Interrupted { outcome } => {
                let cause = match outcome {
                    RunOutcome::Deadline => "wall-clock deadline expired",
                    RunOutcome::Cancelled => "run was cancelled",
                    RunOutcome::MemoryLimit => {
                        "live memory grew past the configured budget"
                    }
                    RunOutcome::Degraded => "run degraded below the requested estimate",
                    RunOutcome::Complete => "run completed", // unreachable in practice
                };
                write!(f, "computation interrupted before completion: {cause}")
            }
        }
    }
}

impl std::error::Error for CentralityError {}

impl From<WorkerPanic> for CentralityError {
    fn from(p: WorkerPanic) -> Self {
        CentralityError::Internal { detail: p.detail }
    }
}

impl From<brics_graph::artifact::ArtifactError> for CentralityError {
    fn from(e: brics_graph::artifact::ArtifactError) -> Self {
        CentralityError::Artifact { detail: e.to_string() }
    }
}

impl From<MemoryBudgetExceeded> for CentralityError {
    fn from(e: MemoryBudgetExceeded) -> Self {
        CentralityError::BudgetExceeded {
            required_bytes: e.required_bytes,
            budget_bytes: e.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = CentralityError::Disconnected { components: 3 };
        assert!(e.to_string().contains("3 components"));
        assert!(e.to_string().contains("make_connected"));
        assert!(CentralityError::EmptyGraph.to_string().contains("no vertices"));
        assert!(CentralityError::NoSamples.to_string().contains("zero"));
        let e = CentralityError::Internal { detail: "boom".into() };
        assert!(e.to_string().contains("boom"));
        let e = CentralityError::BudgetExceeded { required_bytes: 10, budget_bytes: 5 };
        assert!(e.to_string().contains("10 bytes"));
        assert!(e.to_string().contains("5 bytes"));
        let e = CentralityError::Interrupted { outcome: RunOutcome::Deadline };
        assert!(e.to_string().contains("deadline"));
        let e = CentralityError::Artifact { detail: "bad magic".into() };
        assert!(e.to_string().contains("bad magic"));
        assert!(e.to_string().contains("brics prepare"));
    }

    #[test]
    fn conversions_from_graph_layer() {
        let p = WorkerPanic { detail: "injected".into() };
        assert_eq!(
            CentralityError::from(p),
            CentralityError::Internal { detail: "injected".into() }
        );
        let m = MemoryBudgetExceeded { required_bytes: 100, budget_bytes: 64 };
        assert_eq!(
            CentralityError::from(m),
            CentralityError::BudgetExceeded { required_bytes: 100, budget_bytes: 64 }
        );
    }
}
