//! Betweenness centrality (Brandes) — the sibling metric the paper's
//! related work builds decomposition techniques for (Pachorkar et al.
//! \[23\], Nasre et al. \[19\]). Provided as an extension so the workspace
//! covers the
//! standard centrality pair; the BRICS reductions themselves target
//! farness and are not applied here.
//!
//! * [`exact_betweenness`] — Brandes' algorithm, one augmented BFS per
//!   source, parallel over sources.
//! * [`sampled_betweenness`] — the Brandes–Pich pivot estimator: run the
//!   source loop over `k` random pivots and scale by `n/k`.
//!
//! Dependency accumulation uses fixed-point arithmetic (scaled `u64`
//! atomics) so parallel runs are bit-deterministic, matching the integer
//! farness sums elsewhere in the crate. With `SCALE = 2³²` the per-vertex
//! error is bounded by `n · 2⁻³²` per source — negligible against the
//! sampling error, and zero for the exactness oracles used in tests (they
//! compare with a tolerance).

use crate::budget::accumulate_run_bytes;
use crate::config::SampleSize;
use crate::engine::ExecutionContext;
use crate::sampling::draw_sources;
use crate::CentralityError;
use brics_graph::telemetry::{admit_memory_rec, record_outcome, timed, Recorder};
use brics_graph::traversal::WorkerGuard;
use brics_graph::{CsrGraph, NodeId, RunControl, RunOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const SCALE: f64 = (1u64 << 32) as f64;

/// Scratch for one Brandes source iteration.
struct BrandesScratch {
    order: Vec<NodeId>,
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    queue_head: usize,
}

impl BrandesScratch {
    fn new(n: usize) -> Self {
        Self {
            order: Vec::with_capacity(n),
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            queue_head: 0,
        }
    }

    /// One source's dependency accumulation, publishing into `acc`.
    fn run(&mut self, g: &CsrGraph, s: NodeId, acc: &[AtomicU64]) {
        // Reset only what the previous run touched.
        for &v in &self.order {
            self.dist[v as usize] = -1;
            self.sigma[v as usize] = 0.0;
            self.delta[v as usize] = 0.0;
        }
        self.order.clear();
        self.queue_head = 0;

        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.order.push(s);
        while self.queue_head < self.order.len() {
            let u = self.order[self.queue_head];
            self.queue_head += 1;
            let du = self.dist[u as usize];
            let su = self.sigma[u as usize];
            for &v in g.neighbors(u) {
                let dv = &mut self.dist[v as usize];
                if *dv < 0 {
                    *dv = du + 1;
                    self.order.push(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += su;
                }
            }
        }
        // Reverse order: accumulate dependencies.
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            let coeff = (1.0 + self.delta[w as usize]) / self.sigma[w as usize];
            for &v in g.neighbors(w) {
                if self.dist[v as usize] == dw - 1 {
                    self.delta[v as usize] += self.sigma[v as usize] * coeff;
                }
            }
            if w != s {
                let contrib = (self.delta[w as usize] * SCALE).round() as u64;
                if contrib > 0 {
                    acc[w as usize].fetch_add(contrib, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Runs the Brandes source loop under a control. Returns the raw fixed-point
/// accumulator, the number of sources that completed and the outcome; the
/// caller applies the scale appropriate to the completed count.
fn betweenness_from_sources_ctl(
    g: &CsrGraph,
    sources: &[NodeId],
    ctl: &RunControl,
) -> Result<(Vec<u64>, usize, RunOutcome), CentralityError> {
    let n = g.num_nodes();
    let mut acc = vec![0u64; n];
    let atomic = brics_graph::traversal::atomic_view(&mut acc);
    let guard = WorkerGuard::new(ctl);
    let completed: Vec<bool> = sources
        .par_iter()
        .map_init(
            || BrandesScratch::new(n),
            |scratch, &s| guard.run_source(s, || scratch.run(g, s, atomic)).is_some(),
        )
        .collect();
    let outcome = guard.finish()?;
    let done = completed.iter().filter(|&&c| c).count();
    Ok((acc, done, outcome))
}

fn scale_acc(acc: &[u64], scale_up: f64) -> Vec<f64> {
    // Undirected graphs: every pair is counted from both endpoints → halve.
    acc.iter().map(|&x| x as f64 / SCALE * scale_up / 2.0).collect()
}

/// Exact betweenness centrality of every vertex (unnormalised, undirected
/// convention: each unordered pair counted once).
pub fn exact_betweenness(g: &CsrGraph) -> Vec<f64> {
    let sources: Vec<NodeId> = g.nodes().collect();
    let (acc, _, _) = betweenness_from_sources_ctl(g, &sources, &RunControl::new())
        .expect("unbounded control cannot fail");
    scale_acc(&acc, 1.0)
}

/// Pivot-sampled betweenness (Brandes–Pich): `k` random sources, each
/// contribution scaled by `n / k`. Unbiased; variance shrinks as `1/k`.
pub fn sampled_betweenness(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
) -> Result<Vec<f64>, CentralityError> {
    sampled_betweenness_in(g, sample, seed, &ExecutionContext::new()).map(|(b, _)| b)
}

/// [`sampled_betweenness`] under an [`ExecutionContext`]. On interruption
/// the scale uses the number of pivots that actually completed, keeping the
/// estimator unbiased over the pivots it did run (fewer pivots ⇒ higher
/// variance, not bias).
pub fn sampled_betweenness_in<R: Recorder>(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<(Vec<f64>, RunOutcome), CentralityError> {
    let admit = accumulate_run_bytes(g.num_nodes(), ctx.thread_count());
    timed(ctx.recorder(), "estimate", || {
        betweenness_query(g, admit, sample, seed, ctx.control(), ctx.recorder())
    })
}

/// The query stage shared by [`sampled_betweenness_in`] and
/// [`crate::engine::PreparedGraph::betweenness`].
pub(crate) fn betweenness_query<R: Recorder>(
    g: &CsrGraph,
    admit_bytes: u64,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    rec: &R,
) -> Result<(Vec<f64>, RunOutcome), CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let k = sample.resolve(n);
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = draw_sources(n, k, &mut rng);
    let (acc, done, outcome) = betweenness_from_sources_ctl(g, &sources, ctl)?;
    record_outcome(rec, outcome, "sampled-betweenness pivot sweep");
    let scale_up = if done > 0 { n as f64 / done as f64 } else { 1.0 };
    Ok((scale_acc(&acc, scale_up), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{
        complete_graph, cycle_graph, gnm_random_connected, path_graph, star_graph,
    };
    use brics_graph::GraphBuilder;

    const EPS: f64 = 1e-6;

    #[test]
    fn path_betweenness() {
        // Path 0-1-2-3-4: interior vertex i lies on (i)(n-1-i) pairs.
        let b = exact_betweenness(&path_graph(5));
        let expect = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (got, want) in b.iter().zip(expect) {
            assert!((got - want).abs() < EPS, "{b:?}");
        }
    }

    #[test]
    fn star_centre_carries_everything() {
        // Star K_{1,5}: centre on all C(5,2) = 10 leaf pairs.
        let b = exact_betweenness(&star_graph(6));
        assert!((b[0] - 10.0).abs() < EPS);
        assert!(b[1..].iter().all(|&x| x.abs() < EPS));
    }

    #[test]
    fn complete_graph_zero() {
        let b = exact_betweenness(&complete_graph(6));
        assert!(b.iter().all(|&x| x.abs() < EPS));
    }

    #[test]
    fn cycle_even_split() {
        // C6: for each pair at distance 3 there are 2 shortest paths; by
        // symmetry every vertex gets the same value. Total dependency mass:
        // Σ over pairs (d-1 interior slots) split across paths.
        let b = exact_betweenness(&cycle_graph(6));
        let first = b[0];
        assert!(b.iter().all(|&x| (x - first).abs() < EPS));
        assert!(first > 0.0);
    }

    /// Brute force over all shortest paths (Floyd–Warshall style counting)
    /// for small random graphs.
    fn brute_betweenness(g: &CsrGraph) -> Vec<f64> {
        let n = g.num_nodes();
        let inf = i64::MAX / 4;
        let mut d = vec![vec![inf; n]; n];
        let mut cnt = vec![vec![0f64; n]; n];
        for v in 0..n {
            d[v][v] = 0;
            cnt[v][v] = 1.0;
        }
        for (u, v) in g.edges() {
            d[u as usize][v as usize] = 1;
            d[v as usize][u as usize] = 1;
            cnt[u as usize][v as usize] = 1.0;
            cnt[v as usize][u as usize] = 1.0;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                        cnt[i][j] = cnt[i][k] * cnt[k][j];
                    } else if via == d[i][j] && k != i && k != j {
                        cnt[i][j] += cnt[i][k] * cnt[k][j];
                    }
                }
            }
        }
        let mut b = vec![0f64; n];
        for s in 0..n {
            for t in (s + 1)..n {
                if d[s][t] >= inf || cnt[s][t] == 0.0 {
                    continue;
                }
                for (v, bv) in b.iter_mut().enumerate() {
                    if v == s || v == t {
                        continue;
                    }
                    if d[s][v] + d[v][t] == d[s][t] {
                        *bv += cnt[s][v] * cnt[v][t] / cnt[s][t];
                    }
                }
            }
        }
        b
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm_random_connected(25, 40, seed);
            let fast = exact_betweenness(&g);
            let brute = brute_betweenness(&g);
            for v in 0..25 {
                assert!(
                    (fast[v] - brute[v]).abs() < 1e-4,
                    "seed {seed} v {v}: {} vs {}",
                    fast[v],
                    brute[v]
                );
            }
        }
    }

    #[test]
    fn full_pivot_sampling_is_exact() {
        let g = gnm_random_connected(40, 60, 2);
        let exact = exact_betweenness(&g);
        let sampled = sampled_betweenness(&g, SampleSize::Fraction(1.0), 3).unwrap();
        for v in 0..40 {
            assert!((exact[v] - sampled[v]).abs() < 1e-4, "v {v}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_plausible() {
        let g = gnm_random_connected(60, 90, 4);
        let a = sampled_betweenness(&g, SampleSize::Fraction(0.4), 9).unwrap();
        let b = sampled_betweenness(&g, SampleSize::Fraction(0.4), 9).unwrap();
        assert_eq!(a, b);
        // Unbiasedness smoke check: total mass within 2x of exact total.
        let exact_total: f64 = exact_betweenness(&g).iter().sum();
        let est_total: f64 = a.iter().sum();
        assert!(est_total > exact_total * 0.5 && est_total < exact_total * 2.0);
    }

    #[test]
    fn bridge_vertex_dominates() {
        // Two triangles joined through vertex 2 (the bow-tie): the waist
        // carries all 3x3 cross pairs minus... it lies on every cross pair.
        let g = GraphBuilder::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        );
        let b = exact_betweenness(&g);
        let max = b.iter().cloned().fold(0.0f64, f64::max);
        assert!((b[2] - max).abs() < EPS);
        assert!((b[2] - 4.0).abs() < EPS); // pairs {0,1}×{3,4}
    }

    #[test]
    fn empty_rejected() {
        assert!(sampled_betweenness(&CsrGraph::empty(), SampleSize::Count(1), 0).is_err());
    }

    #[test]
    fn ctl_deadline_yields_zero_partial() {
        let g = gnm_random_connected(30, 45, 1);
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let (b, outcome) =
            sampled_betweenness_in(&g, SampleSize::Count(10), 0, &ctx).unwrap();
        assert_eq!(outcome, RunOutcome::Deadline);
        assert!(b.iter().all(|&x| x == 0.0));

        let ctl = RunControl::new().with_injected_panic(5);
        let sources: Vec<NodeId> = (0..30).collect();
        assert!(matches!(
            betweenness_from_sources_ctl(&g, &sources, &ctl).unwrap_err(),
            CentralityError::Internal { .. }
        ));
    }
}
