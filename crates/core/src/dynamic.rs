//! Dynamic farness estimation under edge insertions — the paper's stated
//! future work ("Extension of this problem to dynamic setting is an
//! interesting study", §V), built here as an extension.
//!
//! The estimator keeps the sampled sources' full distance arrays
//! (`O(k·n)` memory). Inserting an edge can only *shrink* distances, so
//! each source's array is repaired incrementally: seed a BFS wave at the
//! endpoint whose distance improved and relax outward, touching only the
//! vertices whose distance actually changes (Ramalingam–Reps style).
//! Farness sums are updated by the deltas, so a batch of insertions costs
//! time proportional to the distances it changes rather than to a full
//! re-estimation.
//!
//! Edge *deletions* can grow distances, which this structure does not
//! repair incrementally; [`DynamicFarness::rebuild`] re-estimates from
//! scratch (same sources) for that case.
//!
//! Reductions are deliberately not composed with dynamism: an insertion
//! can invalidate identical/chain/redundant classifications arbitrarily,
//! so the dynamic estimator builds on the random-sampling baseline
//! (paper Algorithm 1) semantics.

use crate::config::SampleSize;
use crate::sampling::draw_sources;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::traversal::Bfs;
use brics_graph::{CsrGraph, Dist, GraphBuilder, NodeId, INFINITE_DIST};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Farness estimates maintained under edge insertions.
#[derive(Clone, Debug)]
pub struct DynamicFarness {
    /// Mutable adjacency (sorted neighbour lists).
    adj: Vec<Vec<NodeId>>,
    /// Number of undirected edges.
    num_edges: usize,
    /// The sampled BFS sources (fixed for the structure's lifetime).
    sources: Vec<NodeId>,
    /// Per-source distance rows, kept exact under insertions.
    rows: Vec<Vec<Dist>>,
    /// `acc[v] = Σ_s d(s, v)` — the partial farness of every vertex.
    acc: Vec<u64>,
    /// `Σ_x d(s, x)` per source — the exact farness of each source.
    source_sum: Vec<u64>,
    /// Sampled mask.
    sampled: Vec<bool>,
    /// Cumulative wall-clock time spent building and repairing the
    /// structure (initial BFS sweep + every incremental repair/rebuild).
    elapsed: Duration,
}

impl DynamicFarness {
    /// Builds the structure on a connected graph, sampling `sample` sources
    /// with `seed` (paper Algorithm 1 semantics).
    pub fn new(g: &CsrGraph, sample: SampleSize, seed: u64) -> Result<Self, CentralityError> {
        let n = g.num_nodes();
        if n == 0 {
            return Err(CentralityError::EmptyGraph);
        }
        let k = sample.resolve(n);
        if k == 0 {
            return Err(CentralityError::NoSamples);
        }
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let sources = draw_sources(n, k, &mut rng);
        let rows: Vec<Vec<Dist>> = sources
            .par_iter()
            .map_init(
                || Bfs::new(n),
                |bfs, &s| bfs.run(g, s)[..n].to_vec(),
            )
            .collect();
        if rows.iter().any(|r| r.contains(&INFINITE_DIST)) {
            let comps = brics_graph::connectivity::connected_components(g).count();
            return Err(CentralityError::Disconnected { components: comps });
        }
        let mut acc = vec![0u64; n];
        let mut source_sum = vec![0u64; sources.len()];
        for (si, row) in rows.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                acc[v] += d as u64;
                source_sum[si] += d as u64;
            }
        }
        let mut sampled = vec![false; n];
        for &s in &sources {
            sampled[s as usize] = true;
        }
        Ok(Self {
            adj: g.nodes().map(|v| g.neighbors(v).to_vec()).collect(),
            num_edges: g.num_edges(),
            sources,
            rows,
            acc,
            source_sum,
            sampled,
            elapsed: start.elapsed(),
        })
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (current).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The fixed sampled sources.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Inserts the undirected edge `{u, v}` and repairs every source's
    /// distances incrementally. Returns the total number of (source,
    /// vertex) distance entries that improved. Inserting an existing edge
    /// or a self-loop is a no-op returning 0.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> usize {
        let start = Instant::now();
        let n = self.adj.len();
        assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range");
        if u == v {
            return 0;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return 0,
            Err(pos) => self.adj[u as usize].insert(pos, v),
        }
        let pos = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pos, u);
        self.num_edges += 1;

        // Repair every source row in parallel; each worker owns its row and
        // returns the per-vertex deltas it applied.
        let adj = &self.adj;
        let deltas: Vec<Vec<(NodeId, u32)>> = self
            .rows
            .par_iter_mut()
            .map(|row| repair_row(adj, row, u, v))
            .collect();
        let mut improved_entries = 0usize;
        for (si, delta) in deltas.iter().enumerate() {
            for &(x, by) in delta {
                self.acc[x as usize] -= by as u64;
                self.source_sum[si] -= by as u64;
                improved_entries += 1;
            }
        }
        self.elapsed += start.elapsed();
        improved_entries
    }

    /// Total wall-clock time spent computing distances: the initial BFS
    /// sweep of [`Self::new`] plus every [`Self::insert_edge`] repair and
    /// [`Self::rebuild`]. This is what [`FarnessEstimate::elapsed`] reports
    /// on the estimates this structure produces.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Current estimate in the baseline's semantics: sources exact,
    /// everyone else the partial sum over sources.
    ///
    /// The estimate's `elapsed` is [`Self::elapsed`] — the cumulative
    /// build + repair time that actually produced these numbers — not the
    /// (microscopic) cost of assembling the result vectors.
    pub fn estimate(&self) -> FarnessEstimate {
        let n = self.adj.len();
        let k = self.sources.len();
        let mut raw = self.acc.clone();
        for (si, &s) in self.sources.iter().enumerate() {
            raw[s as usize] = self.source_sum[si];
        }
        let factor = (n as f64 - 1.0) / k as f64;
        let scaled: Vec<f64> = raw
            .iter()
            .zip(&self.sampled)
            .map(|(&x, &is_src)| if is_src { x as f64 } else { x as f64 * factor })
            .collect();
        let coverage: Vec<u32> = self
            .sampled
            .iter()
            .map(|&s| if s { (n - 1) as u32 } else { k as u32 })
            .collect();
        FarnessEstimate::new(
            raw,
            scaled,
            self.sampled.clone(),
            coverage,
            k,
            self.elapsed,
            brics_graph::RunOutcome::Complete,
        )
    }

    /// The current graph as CSR (rebuilt on demand).
    pub fn graph(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.adj.len(), self.num_edges);
        for (x, nbrs) in self.adj.iter().enumerate() {
            for &y in nbrs {
                if (x as NodeId) < y {
                    b.add_edge(x as NodeId, y);
                }
            }
        }
        b.build()
    }

    /// Full re-estimation with the same sources (the deletion fallback).
    pub fn rebuild(&mut self) {
        let start = Instant::now();
        let g = self.graph();
        let n = g.num_nodes();
        let rows: Vec<Vec<Dist>> = self
            .sources
            .par_iter()
            .map_init(
                || Bfs::new(n),
                |bfs, &s| bfs.run(&g, s)[..n].to_vec(),
            )
            .collect();
        self.acc = vec![0u64; n];
        self.source_sum = vec![0u64; self.sources.len()];
        for (si, row) in rows.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                self.acc[v] += d as u64;
                self.source_sum[si] += d as u64;
            }
        }
        self.rows = rows;
        self.elapsed += start.elapsed();
    }
}

/// Repairs one source row after inserting `{u, v}`: relaxes outward from
/// whichever endpoint got closer, touching only improved vertices.
/// Returns the `(vertex, improvement)` list.
fn repair_row(adj: &[Vec<NodeId>], row: &mut [Dist], u: NodeId, v: NodeId) -> Vec<(NodeId, u32)> {
    let (du, dv) = (row[u as usize], row[v as usize]);
    // The edge helps only if it shortcuts one endpoint through the other.
    let start = if du + 1 < dv {
        v
    } else if dv + 1 < du {
        u
    } else {
        return Vec::new();
    };
    let mut deltas = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let improved_to = row[u as usize].min(row[v as usize]) + 1;
    deltas.push((start, row[start as usize] - improved_to));
    row[start as usize] = improved_to;
    queue.push_back(start);
    while let Some(x) = queue.pop_front() {
        let dx = row[x as usize];
        for &y in &adj[x as usize] {
            if dx + 1 < row[y as usize] {
                deltas.push((y, row[y as usize] - (dx + 1)));
                row[y as usize] = dx + 1;
                queue.push_back(y);
            }
        }
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::random_sampling;
    use brics_graph::generators::{cycle_graph, gnm_random_connected, path_graph};
    use rand::Rng;

    /// Oracle: after any insertions, the dynamic estimate must equal a
    /// from-scratch estimation with the *same* sources on the new graph.
    fn assert_matches_scratch(dyn_f: &DynamicFarness) {
        let g = dyn_f.graph();
        let n = g.num_nodes();
        let mut bfs = Bfs::new(n);
        let mut acc = vec![0u64; n];
        let mut sums = Vec::new();
        for &s in dyn_f.sources() {
            let (_, sum) = bfs.run_with(&g, s, |x, d| acc[x as usize] += d as u64);
            sums.push(sum);
        }
        let est = dyn_f.estimate();
        for v in 0..n {
            let expect = if est.is_sampled(v as u32) {
                sums[dyn_f.sources().iter().position(|&s| s == v as u32).unwrap()]
            } else {
                acc[v]
            };
            assert_eq!(est.raw()[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn single_insertion_on_path() {
        // Path 0..9, then close it into a cycle: distances shrink a lot.
        let g = path_graph(10);
        let mut d = DynamicFarness::new(&g, SampleSize::Fraction(1.0), 3).unwrap();
        let improved = d.insert_edge(0, 9);
        assert!(improved > 0);
        assert_eq!(d.num_edges(), 10);
        assert_matches_scratch(&d);
        // Now matches the cycle's exact farness everywhere (all sampled).
        let exact = crate::exact_farness(&cycle_graph(10)).unwrap();
        assert_eq!(d.estimate().raw(), exact.as_slice());
    }

    #[test]
    fn duplicate_and_self_edges_are_noops() {
        let g = cycle_graph(6);
        let mut d = DynamicFarness::new(&g, SampleSize::Fraction(0.5), 1).unwrap();
        assert_eq!(d.insert_edge(0, 1), 0); // exists
        assert_eq!(d.insert_edge(3, 3), 0); // self-loop
        assert_eq!(d.num_edges(), 6);
        assert_matches_scratch(&d);
    }

    #[test]
    fn random_insertion_sequences_match_scratch() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..6 {
            let g = gnm_random_connected(40, 50, trial);
            let mut d = DynamicFarness::new(&g, SampleSize::Fraction(0.4), trial).unwrap();
            for _ in 0..15 {
                let u = rng.gen_range(0..40) as NodeId;
                let v = rng.gen_range(0..40) as NodeId;
                if u != v {
                    d.insert_edge(u, v);
                }
            }
            assert_matches_scratch(&d);
        }
    }

    #[test]
    fn estimate_agrees_with_static_sampling_before_updates() {
        let g = gnm_random_connected(60, 80, 4);
        let d = DynamicFarness::new(&g, SampleSize::Fraction(0.3), 11).unwrap();
        let s = random_sampling(&g, SampleSize::Fraction(0.3), 11).unwrap();
        assert_eq!(d.estimate().raw(), s.raw());
        assert_eq!(d.estimate().sampled_mask(), s.sampled_mask());
    }

    #[test]
    fn farness_never_increases_under_insertion() {
        let g = gnm_random_connected(50, 60, 2);
        let mut d = DynamicFarness::new(&g, SampleSize::Fraction(1.0), 5).unwrap();
        let before = d.estimate().raw().to_vec();
        d.insert_edge(0, 25);
        d.insert_edge(10, 40);
        let after = d.estimate().raw().to_vec();
        for v in 0..50 {
            assert!(after[v] <= before[v], "farness grew at {v}");
        }
    }

    #[test]
    fn rebuild_is_equivalent_to_incremental() {
        let g = gnm_random_connected(45, 55, 8);
        let mut a = DynamicFarness::new(&g, SampleSize::Fraction(0.5), 2).unwrap();
        let mut b = a.clone();
        for (u, v) in [(0u32, 22u32), (5, 33), (14, 40)] {
            a.insert_edge(u, v);
            b.insert_edge(u, v);
        }
        b.rebuild();
        assert_eq!(a.estimate().raw(), b.estimate().raw());
    }

    #[test]
    fn elapsed_reports_cumulative_build_and_repair_time() {
        // Regression: `estimate()` used to start its own clock around result
        // assembly, so the reported elapsed covered neither the initial BFS
        // sweep nor any repair work.
        let g = gnm_random_connected(200, 260, 3);
        let mut d = DynamicFarness::new(&g, SampleSize::Fraction(0.5), 1).unwrap();
        let after_build = d.elapsed();
        assert!(after_build > Duration::ZERO, "build time not accounted");
        assert_eq!(d.estimate().elapsed(), after_build);
        d.insert_edge(0, 100);
        let after_repair = d.elapsed();
        assert!(after_repair >= after_build, "repair time went backwards");
        // The estimate reports the structure's cumulative time, and reading
        // it does not advance the clock.
        assert_eq!(d.estimate().elapsed(), after_repair);
        assert_eq!(d.estimate().elapsed(), after_repair);
        d.rebuild();
        assert!(d.elapsed() >= after_repair);
    }

    #[test]
    fn rejects_empty_graph() {
        let g = CsrGraph::empty();
        assert!(DynamicFarness::new(&g, SampleSize::Count(1), 0).is_err());
    }

    #[test]
    fn rejects_disconnected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            DynamicFarness::new(&g, SampleSize::Fraction(1.0), 0),
            Err(CentralityError::Disconnected { .. })
        ));
    }
}
