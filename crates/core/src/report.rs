//! Experiment-facing comparison runs: time a method, compare against the
//! random-sampling baseline and exact ground truth — the measurements
//! behind the paper's Figures 4–9.

use crate::quality::{quality, symmetric_quality};
use crate::{exact_farness, BricsEstimator, CentralityError, Method, SampleSize};
use brics_graph::CsrGraph;
use serde::{Deserialize, Serialize};

/// One method's measured outcome on one graph.
///
/// Two quality views are reported (see DESIGN.md §5 and EXPERIMENTS.md):
///
/// * `quality_raw` — the paper's §IV-C1 formula on the raw (unscaled
///   partial-sum) estimates. Under this formula every method's quality is
///   dominated by its effective source count.
/// * `quality` — the headline metric: symmetric accuracy of the *scaled*
///   estimates (`mean(min/max)`), which rewards the Cumulative method's
///   exact inter-block mass rather than just its raw distance coverage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Method name (as in the paper's legends).
    pub method: String,
    /// Sampling rate/size used.
    pub sample: SampleSize,
    /// Wall-clock seconds of the estimation run.
    pub seconds: f64,
    /// Symmetric quality of the scaled estimates (`None` without ground truth).
    pub quality: Option<f64>,
    /// The paper's raw-AR quality (`None` without ground truth).
    pub quality_raw: Option<f64>,
    /// Number of BFS sources used.
    pub num_sources: usize,
}

/// A baseline-vs-method comparison (one bar pair of Fig. 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// The random-sampling baseline.
    pub baseline: MethodOutcome,
    /// The method under test.
    pub candidate: MethodOutcome,
    /// `baseline.seconds / candidate.seconds` — the paper's speedup.
    pub speedup: f64,
}

/// Runs `method` on `g` and measures it; computes Quality against
/// `exact` when provided.
pub fn measure(
    g: &CsrGraph,
    method: Method,
    sample: SampleSize,
    seed: u64,
    exact: Option<&[u64]>,
) -> Result<MethodOutcome, CentralityError> {
    let est = BricsEstimator::new(method).sample(sample).seed(seed).run(g)?;
    Ok(MethodOutcome {
        method: method.name().to_string(),
        sample,
        seconds: est.elapsed().as_secs_f64(),
        quality: exact.map(|x| symmetric_quality(est.scaled(), x)),
        quality_raw: exact.map(|x| quality(est.raw(), x)),
        num_sources: est.num_sources(),
    })
}

/// Compares `method` at `candidate_rate` against random sampling at
/// `baseline_rate` (e.g. the paper's Fig. 4(b): Cumulative@20 % vs
/// Random@30 %). Computes Quality when `with_quality` (runs exact farness —
/// only affordable on evaluation-scale graphs).
pub fn compare(
    g: &CsrGraph,
    method: Method,
    candidate_rate: SampleSize,
    baseline_rate: SampleSize,
    seed: u64,
    with_quality: bool,
) -> Result<Comparison, CentralityError> {
    let exact = if with_quality { Some(exact_farness(g)?) } else { None };
    let exact_ref = exact.as_deref();
    let baseline = measure(g, Method::RandomSampling, baseline_rate, seed, exact_ref)?;
    let candidate = measure(g, method, candidate_rate, seed, exact_ref)?;
    let speedup = if candidate.seconds > 0.0 {
        baseline.seconds / candidate.seconds
    } else {
        f64::INFINITY
    };
    Ok(Comparison { baseline, candidate, speedup })
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{social_like, ClassParams};

    #[test]
    fn measure_reports_quality() {
        let g = social_like(ClassParams::new(300, 2));
        let exact = exact_farness(&g).unwrap();
        let o = measure(&g, Method::Cumulative, SampleSize::Fraction(0.3), 1, Some(&exact))
            .unwrap();
        let q = o.quality.unwrap();
        assert!(q > 0.0 && q <= 1.0 + 1e-9, "quality {q}");
        assert!(o.num_sources > 0);
    }

    #[test]
    fn compare_produces_speedup() {
        let g = social_like(ClassParams::new(300, 3));
        let c = compare(
            &g,
            Method::Cumulative,
            SampleSize::Fraction(0.2),
            SampleSize::Fraction(0.3),
            1,
            true,
        )
        .unwrap();
        assert!(c.speedup > 0.0);
        assert_eq!(c.baseline.method, "random");
        assert_eq!(c.candidate.method, "cumulative");
        // On the scaled (headline) metric, cumulative at 20 % should be in
        // the same band as random at 30 % — the exact inter-block mass and
        // per-block scaling compensate for the smaller source budget
        // (the paper's Fig. 4(b) claim). Allow sampling-noise slack.
        let qb = c.baseline.quality.unwrap();
        let qc = c.candidate.quality.unwrap();
        assert!(qc > qb - 0.15, "cumulative {qc} vs baseline {qb}");
        assert!(qc > 0.5, "cumulative scaled quality too low: {qc}");
    }

    #[test]
    fn serde_roundtrip() {
        let o = MethodOutcome {
            method: "random".into(),
            sample: SampleSize::Fraction(0.3),
            seconds: 0.5,
            quality: Some(0.8),
            quality_raw: Some(0.4),
            num_sources: 10,
        };
        let s = serde_json::to_string(&o).unwrap();
        let back: MethodOutcome = serde_json::from_str(&s).unwrap();
        assert_eq!(back.method, "random");
        assert_eq!(back.num_sources, 10);
    }
}
