//! Up-front memory planning for estimation runs.
//!
//! Estimators call [`RunControl::admit_memory`](brics_graph::RunControl::admit_memory)
//! with the figures computed here *before* performing their large
//! allocations, so a run that would blow a configured budget fails fast with
//! [`CentralityError::BudgetExceeded`](crate::CentralityError::BudgetExceeded)
//! instead of getting OOM-killed halfway through. The
//! [`PreparedGraph`](crate::engine::PreparedGraph) artifact precomputes all
//! three figures once into a [`MemoryPlan`](crate::engine::MemoryPlan).
//!
//! The numbers are planning estimates of the dominant dense allocations, not
//! exact accounting: CSR storage of the input graph (already resident when an
//! estimator starts) and small O(k) bookkeeping vectors are excluded. They
//! are deliberately *upper bounds* over every kernel a run may pick
//! (`--kernel auto` batches through the bit-parallel engine, whose scratch is
//! the widest), so the tracking allocator's observed per-span peak
//! ([`RunReport::memory`](brics_graph::telemetry::RunReport)) stays at or
//! under `planned_bytes` on a fault-free run — pinned by the
//! `memory_tracking` integration tests.

/// Bytes/vertex of the widest per-thread traversal scratch any BFS kernel
/// allocates. The bit-parallel engine ([`MsBfs`]) dominates: the
/// `seen`/`frontier`/`next` word arrays (3 × 8 bytes) plus its
/// `active`/`candidates`/`touched` reset lists (3 × 4 bytes). The classic
/// queue BFS (12 B/vertex), the direction-optimizing scratch (16 B/vertex)
/// and the top-k verification's [`BfsCut`] (~16.3 B/vertex including its
/// two frontier bitmaps) all fit under this ceiling.
///
/// [`MsBfs`]: brics_graph::traversal::MsBfs
/// [`BfsCut`]: brics_graph::traversal::BfsCut
pub(crate) const THREAD_SCRATCH_BYTES_PER_VERTEX: u64 = 36;

/// Bytes/vertex of the MS-BFS per-source distance rows when row recording
/// is enabled (the cumulative engine's block tasks replay removal records
/// against full rows): one batch of 64 sources × 4-byte distances.
pub(crate) const MSBFS_ROW_BYTES_PER_VERTEX: u64 = 256;

/// Bytes of a whole-graph accumulation run
/// ([`crate::sampling::random_sampling`],
/// [`crate::harmonic::harmonic_sampling`]): one shared `u64` accumulator,
/// the result's coverage/sampled bookkeeping, and the widest per-thread
/// BFS scratch per worker (rows stay off for flat accumulation).
pub(crate) fn accumulate_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    let n = n as u64;
    8 * n + 16 * n + threads * THREAD_SCRATCH_BYTES_PER_VERTEX * n
}

/// Bytes of one exact-BFS sweep ([`crate::exact_farness`]): per-thread BFS
/// scratch only — there is no shared accumulator.
pub(crate) fn exact_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    threads * THREAD_SCRATCH_BYTES_PER_VERTEX * n as u64
}

/// Bytes of a cumulative-engine run
/// ([`crate::cumulative::cumulative_estimate`]): three shared `u64`
/// accumulators (intra / inter / exact) plus, per worker thread, a global
/// `u32` distance array, the widest BFS scratch, and the MS-BFS distance
/// rows its block tasks record.
pub(crate) fn cumulative_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    let n = n as u64;
    3 * 8 * n
        + threads
            * (THREAD_SCRATCH_BYTES_PER_VERTEX + 4 + MSBFS_ROW_BYTES_PER_VERTEX)
            * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_linearly() {
        let t = rayon::current_num_threads().max(1);
        assert!(accumulate_run_bytes(2000, t) >= 2 * accumulate_run_bytes(1000, t) - 16);
        assert!(exact_run_bytes(100, t) < accumulate_run_bytes(100, t));
        assert_eq!(accumulate_run_bytes(0, t), 0);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(accumulate_run_bytes(10, 0), accumulate_run_bytes(10, 1));
        assert!(cumulative_run_bytes(10, 4) > cumulative_run_bytes(10, 1));
    }

    // The constant comparisons ARE the point: they document which kernel
    // scratch figures the planning ceiling must dominate.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn per_thread_scratch_covers_every_kernel() {
        // The plan's per-thread figure must dominate each concrete scratch
        // struct: MS-BFS word arrays + reset lists (24 + 12), classic queue
        // BFS (12), direction-optimizing (16), BfsCut with two bitmaps
        // (16 + 2 × 1/8). If a kernel grows past this, raise the constant —
        // the memory_tracking tests pin planned >= observed at runtime.
        assert!(THREAD_SCRATCH_BYTES_PER_VERTEX >= 24 + 12);
        assert!(THREAD_SCRATCH_BYTES_PER_VERTEX as f64 >= 16.0 + 2.0 / 8.0);
        // Row recording is 64 sources × 4-byte distances per vertex and is
        // only charged to the cumulative plan, which must therefore exceed
        // the accumulate plan at any thread count.
        assert_eq!(MSBFS_ROW_BYTES_PER_VERTEX, 64 * 4);
        for t in [1, 2, 8, 64] {
            assert!(cumulative_run_bytes(1000, t) > accumulate_run_bytes(1000, t));
        }
    }
}
