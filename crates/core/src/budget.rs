//! Up-front memory planning for estimation runs.
//!
//! Estimators call [`RunControl::admit_memory`](brics_graph::RunControl::admit_memory)
//! with the figures computed here *before* performing their large
//! allocations, so a run that would blow a configured budget fails fast with
//! [`CentralityError::BudgetExceeded`](crate::CentralityError::BudgetExceeded)
//! instead of getting OOM-killed halfway through. The
//! [`PreparedGraph`](crate::engine::PreparedGraph) artifact precomputes all
//! three figures once into a [`MemoryPlan`](crate::engine::MemoryPlan).
//!
//! The numbers are planning estimates of the dominant dense allocations, not
//! exact accounting: CSR storage of the input graph (already resident when an
//! estimator starts) and small O(k) bookkeeping vectors are excluded.

/// Bytes of a whole-graph accumulation run
/// ([`crate::sampling::random_sampling`],
/// [`crate::harmonic::harmonic_sampling`]): one shared `u64` accumulator
/// plus one BFS scratch (`u32` distance + `u32` queue per vertex) per
/// worker thread.
pub(crate) fn accumulate_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    let n = n as u64;
    8 * n + threads * 8 * n
}

/// Bytes of one exact-BFS sweep ([`crate::exact_farness`]): per-thread BFS
/// scratch only — there is no shared accumulator.
pub(crate) fn exact_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    threads * 8 * n as u64
}

/// Bytes of a cumulative-engine run
/// ([`crate::cumulative::cumulative_estimate`]): three shared `u64`
/// accumulators (intra / inter / exact) plus a per-thread global distance
/// array (`u32`) and block-local BFS scratch.
pub(crate) fn cumulative_run_bytes(n: usize, threads: usize) -> u64 {
    let threads = threads.max(1) as u64;
    let n = n as u64;
    3 * 8 * n + threads * 12 * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_linearly() {
        let t = rayon::current_num_threads().max(1);
        assert!(accumulate_run_bytes(2000, t) >= 2 * accumulate_run_bytes(1000, t) - 16);
        assert!(exact_run_bytes(100, t) < accumulate_run_bytes(100, t));
        assert_eq!(accumulate_run_bytes(0, t), 0);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(accumulate_run_bytes(10, 0), accumulate_run_bytes(10, 1));
        assert!(cumulative_run_bytes(10, 4) > cumulative_run_bytes(10, 1));
    }
}
