//! Harmonic centrality — the companion metric.
//!
//! `harmonic(v) = Σ_{w ≠ v} 1 / d(v, w)` is closeness's robust sibling
//! (it tolerates disconnected graphs and is the variant Boldi–Vigna argue
//! for). The BFS-sampling machinery of the farness estimators transfers
//! verbatim: one traversal per sampled source, accumulating reciprocal
//! distances. Provided as an extension — the paper studies farness only —
//! so downstream users get both metrics from one crate.
//!
//! Sums are accumulated in fixed-point (1/d scaled by `SCALE`) so the
//! parallel accumulation stays deterministic regardless of thread
//! interleaving, mirroring the integer farness sums.

use crate::budget::accumulate_run_bytes;
use crate::config::SampleSize;
use crate::engine::ExecutionContext;
use crate::sampling::draw_sources;
use crate::CentralityError;
use brics_graph::telemetry::{admit_memory_rec, record_outcome, record_panic, timed, Recorder};
use brics_graph::traversal::{Bfs, WorkerGuard};
use brics_graph::{CsrGraph, NodeId, RunControl, RunOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

/// Fixed-point scale for reciprocal-distance accumulation. With distances
/// ≤ ~10⁵ and n ≤ ~10⁷ the accumulated error stays below 10⁻⁶ per vertex.
const SCALE: u64 = 1 << 32;

/// Harmonic centrality estimate.
#[derive(Clone, Debug)]
pub struct HarmonicEstimate {
    /// Estimated harmonic centrality per vertex. Sources carry their exact
    /// value; others the partial sum over sampled sources.
    pub values: Vec<f64>,
    /// Scaled (expanded) view, magnitude-comparable with exact values.
    pub scaled: Vec<f64>,
    /// Whether each vertex was a BFS source (and its BFS completed).
    pub sampled: Vec<bool>,
    /// Whether the run completed or was interrupted. Partial values are
    /// still valid *lower* bounds of the true harmonic centrality (every
    /// reciprocal distance is non-negative).
    pub outcome: RunOutcome,
}

/// Exact harmonic centrality: one BFS per vertex, in parallel. Unlike
/// farness, disconnected graphs are fine (unreachable pairs contribute 0).
pub fn exact_harmonic(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_nodes();
    (0..n as NodeId)
        .into_par_iter()
        .map_init(
            || Bfs::new(n),
            |bfs, v| {
                let mut h = 0u64;
                bfs.run_with(g, v, |_, d| {
                    if d > 0 {
                        h += SCALE / d as u64;
                    }
                });
                h as f64 / SCALE as f64
            },
        )
        .collect()
}

/// Estimates harmonic centrality by uniform random sampling (the harmonic
/// analogue of paper Algorithm 1).
pub fn harmonic_sampling(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
) -> Result<HarmonicEstimate, CentralityError> {
    harmonic_sampling_in(g, sample, seed, &ExecutionContext::new())
}

/// [`harmonic_sampling`] under an [`ExecutionContext`]: the same per-source
/// interruption contract as the farness estimators.
pub fn harmonic_sampling_in<R: Recorder>(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<HarmonicEstimate, CentralityError> {
    let admit = accumulate_run_bytes(g.num_nodes(), ctx.thread_count());
    timed(ctx.recorder(), "estimate", || {
        harmonic_query(g, admit, sample, seed, ctx.control(), ctx.recorder())
    })
}

/// The query stage shared by [`harmonic_sampling_in`] and
/// [`crate::engine::PreparedGraph::harmonic`].
pub(crate) fn harmonic_query<R: Recorder>(
    g: &CsrGraph,
    admit_bytes: u64,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    rec: &R,
) -> Result<HarmonicEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let k = sample.resolve(n);
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = draw_sources(n, k, &mut rng);

    let mut acc = vec![0u64; n];
    let atomic_acc = brics_graph::traversal::atomic_view(&mut acc);
    let guard = WorkerGuard::new(ctl);
    let per_source: Vec<Option<u64>> = sources
        .par_iter()
        .map_init(
            || Bfs::new(n),
            |bfs, &s| {
                guard.run_source(s, || {
                    let mut own = 0u64;
                    bfs.run_with(g, s, |v, d| {
                        if d > 0 {
                            let r = SCALE / d as u64;
                            own += r;
                            atomic_acc[v as usize].fetch_add(r, Ordering::Relaxed);
                        }
                    });
                    own
                })
            },
        )
        .collect();
    let outcome = guard.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    record_outcome(rec, outcome, "harmonic-sampling BFS sweep");

    let mut sampled = vec![false; n];
    for (&s, per) in sources.iter().zip(&per_source) {
        if let Some(own) = *per {
            sampled[s as usize] = true;
            acc[s as usize] = own;
        }
    }
    let k_done = per_source.iter().flatten().count();
    let factor = if k_done > 0 { (n as f64 - 1.0) / k_done as f64 } else { 1.0 };
    let values: Vec<f64> = acc.iter().map(|&x| x as f64 / SCALE as f64).collect();
    let scaled: Vec<f64> = values
        .iter()
        .zip(&sampled)
        .map(|(&v, &is_src)| if is_src { v } else { v * factor })
        .collect();
    Ok(HarmonicEstimate { values, scaled, sampled, outcome })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use brics_graph::generators::{complete_graph, gnm_random_connected, path_graph, star_graph};
    use brics_graph::GraphBuilder;

    const EPS: f64 = 1e-6;

    #[test]
    fn exact_on_small_graphs() {
        // Path 0-1-2: h(0) = 1 + 1/2; h(1) = 2.
        let h = exact_harmonic(&path_graph(3));
        assert!((h[0] - 1.5).abs() < EPS);
        assert!((h[1] - 2.0).abs() < EPS);
        // K4: everyone sees 3 vertices at distance 1.
        let h = exact_harmonic(&complete_graph(4));
        assert!(h.iter().all(|&x| (x - 3.0).abs() < EPS));
        // Star centre: n-1 at distance 1; leaves: 1 + (n-2)/2.
        let h = exact_harmonic(&star_graph(6));
        assert!((h[0] - 5.0).abs() < EPS);
        assert!((h[1] - (1.0 + 4.0 / 2.0)).abs() < EPS);
    }

    #[test]
    fn disconnected_contributes_zero() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let h = exact_harmonic(&g);
        assert!(h.iter().all(|&x| (x - 1.0).abs() < EPS));
    }

    #[test]
    fn full_sampling_matches_exact() {
        let g = gnm_random_connected(50, 80, 3);
        let est = harmonic_sampling(&g, SampleSize::Fraction(1.0), 1).unwrap();
        let exact = exact_harmonic(&g);
        for (e, x) in est.values.iter().zip(&exact) {
            assert!((e - x).abs() < EPS);
        }
    }

    #[test]
    fn partial_sums_bounded_and_sources_exact() {
        let g = gnm_random_connected(60, 90, 5);
        let est = harmonic_sampling(&g, SampleSize::Fraction(0.4), 2).unwrap();
        let exact = exact_harmonic(&g);
        for v in 0..60 {
            assert!(est.values[v] <= exact[v] + EPS);
            if est.sampled[v] {
                assert!((est.values[v] - exact[v]).abs() < EPS, "source {v}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = gnm_random_connected(40, 60, 7);
        let a = harmonic_sampling(&g, SampleSize::Count(10), 3).unwrap();
        let b = harmonic_sampling(&g, SampleSize::Count(10), 3).unwrap();
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn empty_rejected() {
        assert!(harmonic_sampling(&CsrGraph::empty(), SampleSize::Count(1), 0).is_err());
    }

    #[test]
    fn ctl_deadline_and_budget() {
        let g = gnm_random_connected(40, 60, 1);
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let est = harmonic_sampling_in(&g, SampleSize::Count(10), 0, &ctx).unwrap();
        assert_eq!(est.outcome, RunOutcome::Deadline);
        assert!(est.sampled.iter().all(|&s| !s));
        assert!(est.values.iter().all(|&v| v == 0.0));

        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_memory_budget_bytes(4));
        assert!(matches!(
            harmonic_sampling_in(&g, SampleSize::Count(10), 0, &ctx).unwrap_err(),
            CentralityError::BudgetExceeded { .. }
        ));
    }
}
