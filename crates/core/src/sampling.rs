//! Random-sampling baseline (paper Algorithm 1).
//!
//! Picks `k` sources uniformly at random, runs one BFS per source in
//! parallel, and accumulates `farness[u] += d(s, u)` — `O(n)` memory rather
//! than `O(n·k)`, the space optimisation §II-A describes. Sources receive
//! their exact farness (their BFS reaches everything); everyone else keeps
//! the partial sum over the `k` sources.

use crate::config::SampleSize;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::traversal::par_bfs_accumulate;
use brics_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use std::time::Instant;

/// Draws `k` distinct vertices uniformly at random.
pub(crate) fn draw_sources(n: usize, k: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut s: Vec<NodeId> = index_sample(rng, n, k.min(n))
        .into_iter()
        .map(|i| i as NodeId)
        .collect();
    s.sort_unstable();
    s
}

/// Estimates farness by uniform random sampling (paper Algorithm 1).
pub fn random_sampling(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let k = sample.resolve(n);
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = draw_sources(n, k, &mut rng);

    let mut acc = vec![0u64; n];
    let (per_source, _) = par_bfs_accumulate(g, &sources, &mut acc);
    if let Some(&(reached, _)) = per_source.iter().find(|&&(r, _)| r != n) {
        let _ = reached;
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }

    let mut sampled = vec![false; n];
    for (&s, &(_, sum)) in sources.iter().zip(&per_source) {
        sampled[s as usize] = true;
        // Exact farness for sources (overwrites the partial accumulation).
        acc[s as usize] = sum;
    }
    // Scaled view: expand partial sums by (n - 1) / k.
    let factor = if k > 0 { (n as f64 - 1.0) / k as f64 } else { 1.0 };
    let scaled: Vec<f64> = acc
        .iter()
        .zip(&sampled)
        .map(|(&v, &is_src)| if is_src { v as f64 } else { v as f64 * factor })
        .collect();
    let coverage: Vec<u32> =
        sampled.iter().map(|&s| if s { (n - 1) as u32 } else { k as u32 }).collect();
    Ok(FarnessEstimate::new(acc, scaled, sampled, coverage, k, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{cycle_graph, gnm_random_connected, path_graph};

    #[test]
    fn full_sampling_is_exact() {
        let g = gnm_random_connected(60, 90, 4);
        let est = random_sampling(&g, SampleSize::Fraction(1.0), 9).unwrap();
        let exact = exact_farness(&g).unwrap();
        assert_eq!(est.raw(), exact.as_slice());
        assert!(est.sampled_mask().iter().all(|&s| s));
    }

    #[test]
    fn sources_get_exact_values() {
        let g = path_graph(30);
        let est = random_sampling(&g, SampleSize::Count(5), 3).unwrap();
        let exact = exact_farness(&g).unwrap();
        for v in 0..30u32 {
            if est.is_sampled(v) {
                assert_eq!(est.raw()[v as usize], exact[v as usize], "source {v}");
            } else {
                assert!(est.raw()[v as usize] <= exact[v as usize], "partial sum bound {v}");
            }
        }
        assert_eq!(est.num_sources(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = cycle_graph(40);
        let a = random_sampling(&g, SampleSize::Count(8), 5).unwrap();
        let b = random_sampling(&g, SampleSize::Count(8), 5).unwrap();
        assert_eq!(a.raw(), b.raw());
        let c = random_sampling(&g, SampleSize::Count(8), 6).unwrap();
        assert_eq!(a.raw().len(), c.raw().len());
    }

    #[test]
    fn scaled_view_expands_partials() {
        let g = cycle_graph(9); // farness 20 everywhere
        let est = random_sampling(&g, SampleSize::Count(3), 1).unwrap();
        for v in 0..9u32 {
            if !est.is_sampled(v) {
                let expect = est.raw()[v as usize] as f64 * 8.0 / 3.0;
                assert!((est.scaled()[v as usize] - expect).abs() < 1e-9);
            } else {
                assert_eq!(est.scaled()[v as usize], est.raw()[v as usize] as f64);
            }
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = brics_graph::GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let r = random_sampling(&g, SampleSize::Fraction(1.0), 0);
        assert!(matches!(r, Err(CentralityError::Disconnected { components: 2 })));
    }

    #[test]
    fn draw_sources_distinct_sorted() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = draw_sources(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d, s);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
