//! Random-sampling baseline (paper Algorithm 1).
//!
//! Picks `k` sources uniformly at random, runs one BFS per source in
//! parallel, and accumulates `farness[u] += d(s, u)` — `O(n)` memory rather
//! than `O(n·k)`, the space optimisation §II-A describes. Sources receive
//! their exact farness (their BFS reaches everything); everyone else keeps
//! the partial sum over the `k` sources.

use crate::budget::accumulate_run_bytes;
use crate::config::SampleSize;
use crate::engine::{assemble_flat, ExecutionContext};
use crate::{CentralityError, FarnessEstimate};
use brics_graph::telemetry::{admit_memory_rec, record_outcome, record_panic, timed, Recorder};
use brics_graph::traversal::{par_bfs_accumulate_ctl_rec, KernelConfig};
use brics_graph::{CsrGraph, NodeId, RunControl};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use std::time::Instant;

/// Draws `k` distinct vertices uniformly at random.
pub(crate) fn draw_sources(n: usize, k: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut s: Vec<NodeId> = index_sample(rng, n, k.min(n))
        .into_iter()
        .map(|i| i as NodeId)
        .collect();
    s.sort_unstable();
    s
}

/// Estimates farness by uniform random sampling (paper Algorithm 1).
pub fn random_sampling(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    random_sampling_in(g, sample, seed, &ExecutionContext::new())
}

/// [`random_sampling`] under an [`ExecutionContext`] (limits, kernel
/// choice, telemetry).
///
/// The control is consulted before each BFS source. On deadline or
/// cancellation the returned estimate is *partial*: `num_sources`, the
/// scaling factor, and per-vertex `coverage` all reflect only the sources
/// that completed, so [`FarnessEstimate::lower_bounds`] stays sound. Every
/// kernel produces identical distances and the recorder only observes, so
/// the estimate is bit-identical across contexts with the same control.
pub fn random_sampling_in<R: Recorder>(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<FarnessEstimate, CentralityError> {
    let admit = accumulate_run_bytes(g.num_nodes(), ctx.thread_count());
    timed(ctx.recorder(), "estimate", || {
        sampling_query(g, sample, seed, admit, ctx.control(), ctx.kernel(), ctx.recorder())
    })
}

/// The query stage shared by [`random_sampling_in`] and
/// [`crate::engine::PreparedGraph::sample`]. Random sampling needs no
/// prepared structure — it runs directly on the (working) graph.
pub(crate) fn sampling_query<R: Recorder>(
    g: &CsrGraph,
    sample: SampleSize,
    seed: u64,
    admit_bytes: u64,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let k = sample.resolve(n);
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = draw_sources(n, k, &mut rng);

    let mut acc = vec![0u64; n];
    let run = timed(rec, "sampling.bfs", || {
        par_bfs_accumulate_ctl_rec(g, &sources, &mut acc, ctl, kcfg, rec)
    })
    .map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    record_outcome(rec, run.outcome, "random-sampling BFS sweep");
    if run.per_source.iter().flatten().any(|&(reached, _)| reached != n) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }
    // Only completed sources are marked sampled / get their exact farness;
    // skipped sources contributed nothing to `acc` (per-source granularity).
    // No reductions ran, so the structural-offset de-bias term is zero.
    Ok(assemble_flat(n, acc, &sources, &run.per_source, 0, start, run.outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{cycle_graph, gnm_random_connected, path_graph};

    fn ctl_ctx(ctl: RunControl) -> ExecutionContext<'static> {
        ExecutionContext::new().with_control(ctl)
    }

    #[test]
    fn full_sampling_is_exact() {
        let g = gnm_random_connected(60, 90, 4);
        let est = random_sampling(&g, SampleSize::Fraction(1.0), 9).unwrap();
        let exact = exact_farness(&g).unwrap();
        assert_eq!(est.raw(), exact.as_slice());
        assert!(est.sampled_mask().iter().all(|&s| s));
    }

    #[test]
    fn sources_get_exact_values() {
        let g = path_graph(30);
        let est = random_sampling(&g, SampleSize::Count(5), 3).unwrap();
        let exact = exact_farness(&g).unwrap();
        for v in 0..30u32 {
            if est.is_sampled(v) {
                assert_eq!(est.raw()[v as usize], exact[v as usize], "source {v}");
            } else {
                assert!(est.raw()[v as usize] <= exact[v as usize], "partial sum bound {v}");
            }
        }
        assert_eq!(est.num_sources(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = cycle_graph(40);
        let a = random_sampling(&g, SampleSize::Count(8), 5).unwrap();
        let b = random_sampling(&g, SampleSize::Count(8), 5).unwrap();
        assert_eq!(a.raw(), b.raw());
        let c = random_sampling(&g, SampleSize::Count(8), 6).unwrap();
        assert_eq!(a.raw().len(), c.raw().len());
    }

    #[test]
    fn scaled_view_expands_partials() {
        let g = cycle_graph(9); // farness 20 everywhere
        let est = random_sampling(&g, SampleSize::Count(3), 1).unwrap();
        for v in 0..9u32 {
            if !est.is_sampled(v) {
                let expect = est.raw()[v as usize] as f64 * 8.0 / 3.0;
                assert!((est.scaled()[v as usize] - expect).abs() < 1e-9);
            } else {
                assert_eq!(est.scaled()[v as usize], est.raw()[v as usize] as f64);
            }
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = brics_graph::GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let r = random_sampling(&g, SampleSize::Fraction(1.0), 0);
        assert!(matches!(r, Err(CentralityError::Disconnected { components: 2 })));
    }

    #[test]
    fn ctl_expired_deadline_yields_empty_partial() {
        let g = cycle_graph(30);
        let ctx = ctl_ctx(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let est = random_sampling_in(&g, SampleSize::Count(10), 7, &ctx).unwrap();
        assert!(est.is_partial());
        assert_eq!(est.outcome(), brics_graph::RunOutcome::Deadline);
        assert_eq!(est.num_sources(), 0);
        assert!(est.raw().iter().all(|&x| x == 0));
        assert!(est.coverage().iter().all(|&c| c == 0));
        // Zero coverage ⇒ lower bound is (n-1) per vertex — trivially sound.
        assert!(est.lower_bounds().iter().all(|&b| b == 29));
    }

    #[test]
    fn ctl_memory_budget_rejects_up_front() {
        let g = cycle_graph(1000);
        let ctx = ctl_ctx(RunControl::new().with_memory_budget_bytes(16));
        let err = random_sampling_in(&g, SampleSize::Count(4), 0, &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::BudgetExceeded { budget_bytes: 16, .. }));
    }

    #[test]
    fn ctl_injected_panic_becomes_internal_error() {
        let g = cycle_graph(30);
        // Seed 3 / Count(5): pick any vertex guaranteed to be a source by
        // injecting on every possible source in turn until one trips.
        let est = random_sampling(&g, SampleSize::Count(5), 3).unwrap();
        let victim = (0..30u32).find(|&v| est.is_sampled(v)).unwrap();
        let ctx = ctl_ctx(RunControl::new().with_injected_panic(victim));
        let err = random_sampling_in(&g, SampleSize::Count(5), 3, &ctx).unwrap_err();
        match err {
            CentralityError::Internal { detail } => {
                assert!(detail.contains("injected worker panic"), "got: {detail}")
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn ctl_unbounded_matches_plain() {
        let g = gnm_random_connected(40, 70, 2);
        let plain = random_sampling(&g, SampleSize::Count(6), 11).unwrap();
        let ctl = random_sampling_in(&g, SampleSize::Count(6), 11, &ExecutionContext::new())
            .unwrap();
        assert_eq!(plain.raw(), ctl.raw());
        assert_eq!(plain.num_sources(), ctl.num_sources());
        assert!(!ctl.is_partial());
    }

    #[test]
    fn draw_sources_distinct_sorted() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = draw_sources(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d, s);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
