//! Estimator configuration and the top-level front door.

use crate::cumulative::cumulative_estimate_in;
use crate::engine::ExecutionContext;
use crate::reduced::reduced_estimate_in;
use crate::sampling::random_sampling_in;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::telemetry::Recorder;
use brics_graph::CsrGraph;
use brics_reduce::ReductionConfig;
use serde::{Deserialize, Serialize};

// The kernel tunables live in the graph crate next to the kernels; they
// are re-exported here because estimator configuration is their public
// front door (`BricsEstimator::kernel`).
pub use brics_graph::traversal::{HybridParams, Kernel, KernelConfig};

/// How many BFS sources to use.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SampleSize {
    /// A fraction of the sampling population (the whole graph for random
    /// sampling; the reduced graph for the BRICS methods — the paper states
    /// its percentages against the reduced graph, §IV-C1).
    Fraction(f64),
    /// An absolute number of sources.
    Count(usize),
}

impl SampleSize {
    /// Resolves to a concrete count against a population of `n`, clamped to
    /// `1..=n` (0 only when `n == 0`).
    pub fn resolve(&self, n: usize) -> usize {
        let k = match *self {
            SampleSize::Fraction(f) => (f * n as f64).round() as usize,
            SampleSize::Count(c) => c,
        };
        k.clamp(usize::from(n > 0), n)
    }
}

/// The estimation methods of the paper's evaluation (§IV-C2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Plain uniform random sampling over the whole graph
    /// (paper Algorithm 1; the baseline).
    RandomSampling,
    /// Chain + redundant-node reductions, then sampling on the reduced
    /// graph — the paper's "C+R" configuration.
    CR,
    /// Identical + chain + redundant-node reductions, then sampling —
    /// the paper's "I+C+R" configuration.
    ICR,
    /// Full pipeline: I+C+R reductions, biconnected decomposition,
    /// block-local sampling and the Block-Cut-Tree combination —
    /// the paper's "Cumulative" method (Algorithms 4–6).
    Cumulative,
    /// Custom: choose reductions and whether to use the biconnected
    /// decomposition independently (for ablations beyond the paper's three).
    Custom {
        /// Which reductions to run.
        reductions: ReductionConfig,
        /// Whether to decompose into biconnected components.
        use_bcc: bool,
    },
}

impl Method {
    /// The reduction configuration this method implies.
    pub fn reductions(&self) -> ReductionConfig {
        match self {
            Method::RandomSampling => ReductionConfig::none(),
            Method::CR => ReductionConfig::cr(),
            Method::ICR => ReductionConfig::icr(),
            Method::Cumulative => ReductionConfig::all(),
            Method::Custom { reductions, .. } => *reductions,
        }
    }

    /// Whether this method uses the biconnected decomposition.
    pub fn uses_bcc(&self) -> bool {
        matches!(self, Method::Cumulative | Method::Custom { use_bcc: true, .. })
    }

    /// Name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Method::RandomSampling => "random",
            Method::CR => "C+R",
            Method::ICR => "I+C+R",
            Method::Cumulative => "cumulative",
            Method::Custom { .. } => "custom",
        }
    }
}

/// Builder-style front door for all estimation methods.
///
/// ```
/// use brics::{BricsEstimator, Method, SampleSize};
/// use brics_graph::generators::path_graph;
///
/// let g = path_graph(50);
/// let est = BricsEstimator::new(Method::RandomSampling)
///     .sample(SampleSize::Count(10))
///     .seed(3)
///     .run(&g)
///     .unwrap();
/// assert_eq!(est.num_sources(), 10);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BricsEstimator {
    /// Estimation method.
    pub method: Method,
    /// Number of BFS sources.
    pub sample: SampleSize,
    /// RNG seed for source selection (estimation is deterministic per seed
    /// up to the bit-identical farness sums, which are order-independent).
    pub seed: u64,
    /// BFS kernel choice and direction-switching tunables. Purely a
    /// performance knob: every kernel computes identical distances, so the
    /// estimate is bit-identical across configs.
    pub kernel: KernelConfig,
}

impl BricsEstimator {
    /// Creates an estimator with the paper's default 20 % sampling rate for
    /// the given method.
    pub fn new(method: Method) -> Self {
        Self {
            method,
            sample: SampleSize::Fraction(0.2),
            seed: 0,
            kernel: KernelConfig::default(),
        }
    }

    /// Sets the sample size.
    pub fn sample(mut self, sample: SampleSize) -> Self {
        self.sample = sample;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the BFS kernel configuration.
    pub fn kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs the configured estimation on `g`.
    ///
    /// `g` must be connected (see
    /// `brics_graph::connectivity::make_connected`).
    pub fn run(&self, g: &CsrGraph) -> Result<FarnessEstimate, CentralityError> {
        self.run_in(g, &ExecutionContext::new())
    }

    /// Runs the configured estimation under an [`ExecutionContext`]:
    /// execution limits (deadline, cancellation, memory budget), telemetry
    /// recorder and thread planning.
    ///
    /// The context is *not* part of the serializable configuration (it
    /// carries live state: an `Instant` deadline, a shared cancel flag, a
    /// recorder borrow), which is why it is a call-site argument rather
    /// than a builder field. On deadline/cancellation the estimate comes
    /// back partial — see [`FarnessEstimate::outcome`]. The estimator's own
    /// [`kernel`](Self::kernel) field overrides the context's kernel choice
    /// (the builder is the kernel's front door); everything else of the
    /// context applies as given. Recorders only observe, so the estimate is
    /// bit-identical to an unrecorded run with the same configuration.
    pub fn run_in<R: Recorder>(
        &self,
        g: &CsrGraph,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<FarnessEstimate, CentralityError> {
        if g.num_nodes() == 0 {
            return Err(CentralityError::EmptyGraph);
        }
        let ctx = ctx.clone().with_kernel(self.kernel);
        match self.method {
            Method::RandomSampling => random_sampling_in(g, self.sample, self.seed, &ctx),
            m if m.uses_bcc() => {
                cumulative_estimate_in(g, &m.reductions(), self.sample, self.seed, &ctx)
            }
            // The reduced-graph estimators traverse weighted graphs
            // (contracted chains), where Dial's bucket queue is the only
            // applicable kernel — the kernel config is deliberately unused.
            m => reduced_estimate_in(g, &m.reductions(), self.sample, self.seed, &ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_resolution() {
        assert_eq!(SampleSize::Fraction(0.3).resolve(100), 30);
        assert_eq!(SampleSize::Fraction(0.0).resolve(100), 1);
        assert_eq!(SampleSize::Fraction(1.5).resolve(100), 100);
        assert_eq!(SampleSize::Count(7).resolve(100), 7);
        assert_eq!(SampleSize::Count(0).resolve(100), 1);
        assert_eq!(SampleSize::Count(500).resolve(100), 100);
        assert_eq!(SampleSize::Count(5).resolve(0), 0);
    }

    #[test]
    fn method_properties() {
        assert!(!Method::RandomSampling.uses_bcc());
        assert!(Method::Cumulative.uses_bcc());
        assert!(!Method::CR.reductions().identical);
        assert!(Method::ICR.reductions().identical);
        assert_eq!(Method::Cumulative.name(), "cumulative");
        let custom = Method::Custom { reductions: ReductionConfig::chains_only(), use_bcc: true };
        assert!(custom.uses_bcc());
        assert!(custom.reductions().chains);
    }

    #[test]
    fn empty_graph_rejected() {
        let e = BricsEstimator::new(Method::RandomSampling).run(&CsrGraph::empty());
        assert!(matches!(e, Err(CentralityError::EmptyGraph)));
    }
}
